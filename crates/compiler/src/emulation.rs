//! Virtualization (Hyper4/HyperV-style) cost baseline.
//!
//! §6 of the paper contrasts Dejavu's code-level merging with data-plane
//! *hypervisors* — Hyper4 (CoNEXT'16) and HyperV (ICCCN'17) — which run a
//! general-purpose P4 program configured at runtime to emulate the behaviour
//! of the hosted programs. Emulation is flexible but expensive: "these
//! approaches require significantly more hardware resources (3-7×) compared
//! to the native programs".
//!
//! [`EmulationModel`] reproduces that cost structure so the related-work
//! comparison bench can regenerate the 3-7× gap: each native table becomes a
//! set of generic match stages (parse-emulation, match-emulation, action-
//! emulation), inflating table IDs, stages, crossbars and VLIW usage by the
//! published multipliers.

use crate::demand::program_demand;
use dejavu_asic::ResourceVector;
use dejavu_p4ir::Program;

/// Multipliers applied by hypervisor-style emulation, relative to native.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationModel {
    /// Each native table needs this many emulation tables (match-stage,
    /// action-stage, and control-transfer bookkeeping).
    pub table_multiplier: u32,
    /// Stage inflation: emulated tables cannot share stages as freely
    /// because the generic program serializes its dispatch logic.
    pub stage_multiplier: u32,
    /// Match keys widen (the generic program matches on program-id +
    /// virtual header windows as well as the original key).
    pub crossbar_multiplier: u32,
    /// Actions are interpreted by generic VLIW sequences.
    pub vliw_multiplier: u32,
    /// Generic match storage is wider than native storage.
    pub memory_multiplier: u32,
}

impl EmulationModel {
    /// Hyper4-like configuration (the aggressive end of the 3-7× range).
    pub fn hyper4() -> Self {
        EmulationModel {
            table_multiplier: 6,
            stage_multiplier: 4,
            crossbar_multiplier: 3,
            vliw_multiplier: 7,
            memory_multiplier: 4,
        }
    }

    /// HyperV-like configuration (the cheaper end of the range).
    pub fn hyperv() -> Self {
        EmulationModel {
            table_multiplier: 4,
            stage_multiplier: 3,
            crossbar_multiplier: 2,
            vliw_multiplier: 4,
            memory_multiplier: 3,
        }
    }

    /// Resource demand of emulating `program` instead of running it
    /// natively.
    pub fn emulated_demand(&self, program: &Program) -> ResourceVector {
        let native = program_demand(program);
        ResourceVector {
            table_ids: native.table_ids * self.table_multiplier,
            sram_blocks: native.sram_blocks * self.memory_multiplier,
            tcam_blocks: native.tcam_blocks * self.memory_multiplier,
            crossbar_bytes: native.crossbar_bytes * self.crossbar_multiplier,
            gateways: native.gateways * self.table_multiplier,
            vliw_slots: native.vliw_slots * self.vliw_multiplier,
            hash_bits: native.hash_bits * self.memory_multiplier,
        }
    }

    /// Stage span under emulation, from the native span.
    pub fn emulated_stage_span(&self, native_span: usize) -> usize {
        native_span * self.stage_multiplier as usize
    }

    /// Aggregate overhead ratio across resource classes (geometric mean of
    /// the nonzero per-class ratios), e.g. ≈ 3-7× per §6.
    pub fn overhead_ratio(&self, program: &Program) -> f64 {
        let native = program_demand(program);
        let emu = self.emulated_demand(program);
        let pairs = [
            (native.table_ids, emu.table_ids),
            (native.sram_blocks, emu.sram_blocks),
            (native.tcam_blocks, emu.tcam_blocks),
            (native.crossbar_bytes, emu.crossbar_bytes),
            (native.vliw_slots, emu.vliw_slots),
        ];
        let mut product = 1.0f64;
        let mut count = 0u32;
        for (n, e) in pairs {
            if n > 0 {
                product *= f64::from(e) / f64::from(n);
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            product.powf(1.0 / f64::from(count))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef};

    fn sample_program() -> Program {
        ProgramBuilder::new("p")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("nop").build())
            .table(
                TableBuilder::new("routes")
                    .key_lpm(fref("ipv4", "dst_addr"))
                    .action("fwd")
                    .default_action("nop")
                    .size(2048)
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("routes").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    #[test]
    fn emulation_costs_3_to_7x() {
        let p = sample_program();
        for model in [EmulationModel::hyper4(), EmulationModel::hyperv()] {
            let r = model.overhead_ratio(&p);
            assert!((3.0..=7.0).contains(&r), "overhead ratio {r} outside 3-7x");
        }
    }

    #[test]
    fn hyper4_costs_more_than_hyperv() {
        let p = sample_program();
        assert!(
            EmulationModel::hyper4().overhead_ratio(&p)
                > EmulationModel::hyperv().overhead_ratio(&p)
        );
    }

    #[test]
    fn emulated_demand_dominates_native() {
        let p = sample_program();
        let native = program_demand(&p);
        let emu = EmulationModel::hyper4().emulated_demand(&p);
        assert!(emu.table_ids > native.table_ids);
        assert!(emu.sram_blocks > native.sram_blocks);
        assert!(emu.crossbar_bytes > native.crossbar_bytes);
    }

    #[test]
    fn stage_span_inflates() {
        assert_eq!(EmulationModel::hyper4().emulated_stage_span(3), 12);
    }
}
