//! Per-table resource demand model.
//!
//! Converts a table's static shape into a [`ResourceVector`], using block
//! geometries modelled on public Tofino documentation:
//!
//! * SRAM block = 1024 entries × 128 bits,
//! * TCAM block = 512 entries × 44 bits,
//! * crossbar bytes = bytes of match key,
//! * VLIW slots = sum of the table's actions' instruction counts,
//! * hash bits: exact-match tables consume hash-distribution bits for their
//!   SRAM way selection; `Hash` externs consume additional bits,
//! * gateways are charged per enclosing conditional scope (each `If` /
//!   `ApplySelect` dispatch becomes one gateway co-located with the guarded
//!   table).
//!
//! The absolute numbers are a model, not silicon truth — what matters for
//! reproducing the paper is that (a) relative comparisons between programs
//! are meaningful, and (b) the Dejavu framework tables come out "bare
//! minimum" as §5 reports.

use dejavu_asic::ResourceVector;
use dejavu_p4ir::control::Stmt;
use dejavu_p4ir::{PrimitiveOp, Program, TableDef};
use std::collections::BTreeMap;

/// Geometry constants of the demand model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandModel {
    /// Entries per SRAM block row set.
    pub sram_entries_per_block: u32,
    /// Bits per SRAM block entry row.
    pub sram_bits_per_entry: u32,
    /// Entries per TCAM block.
    pub tcam_entries_per_block: u32,
    /// Key bits per TCAM block.
    pub tcam_bits_per_block: u32,
    /// Action-data overhead bits stored in SRAM per entry.
    pub action_data_bits: u32,
    /// Hash bits consumed by one exact-match way selection.
    pub hash_bits_exact: u32,
    /// Hash bits consumed by one `Hash` extern.
    pub hash_bits_extern: u32,
}

impl Default for DemandModel {
    fn default() -> Self {
        DemandModel {
            sram_entries_per_block: 1024,
            sram_bits_per_entry: 128,
            tcam_entries_per_block: 512,
            tcam_bits_per_block: 44,
            action_data_bits: 64,
            hash_bits_exact: 10,
            hash_bits_extern: 32,
        }
    }
}

impl DemandModel {
    /// Demand of one table within its program (the program supplies field
    /// widths and action bodies). `gateway_scopes` is the number of
    /// conditional scopes enclosing this table's application (0 when applied
    /// unconditionally).
    pub fn table_demand(
        &self,
        program: &Program,
        table: &TableDef,
        gateway_scopes: u32,
    ) -> ResourceVector {
        let key_bits = table.key_bits(&|fr| program.field_width(fr)).unwrap_or(0);
        let key_bytes = key_bits.div_ceil(8);

        // 64-bit arithmetic: declared sizes can be large enough to overflow
        // u32 when multiplied by entry widths.
        let sram_block_bits =
            u64::from(self.sram_entries_per_block) * u64::from(self.sram_bits_per_entry);
        let (sram, tcam) = if table.needs_tcam() {
            // Match storage in TCAM; action data still lives in SRAM.
            let width_blocks = u64::from(key_bits.div_ceil(self.tcam_bits_per_block).max(1));
            let depth_blocks = u64::from(table.size.div_ceil(self.tcam_entries_per_block).max(1));
            let sram = (u64::from(table.size) * u64::from(self.action_data_bits))
                .div_ceil(sram_block_bits)
                .max(1);
            (sram, width_blocks * depth_blocks)
        } else {
            let entry_bits = u64::from(key_bits + self.action_data_bits);
            let sram = (u64::from(table.size) * entry_bits)
                .div_ceil(sram_block_bits)
                .max(1);
            (sram, 0)
        };
        let clamp = |v: u64| u32::try_from(v).unwrap_or(u32::MAX);
        let (sram, tcam) = (clamp(sram), clamp(tcam));

        let mut vliw = 0u32;
        let mut hash_bits = 0u32;
        let mut register_sram = 0u64;
        let mut charged_regs = std::collections::BTreeSet::new();
        for a in &table.actions {
            if let Some(act) = program.actions.get(a) {
                vliw += act.vliw_slots();
                if act
                    .ops
                    .iter()
                    .any(|op| matches!(op, PrimitiveOp::Hash { .. }))
                {
                    hash_bits += self.hash_bits_extern;
                }
                // Register arrays live in SRAM next to the stage that
                // accesses them; charge each array once per table.
                for op in &act.ops {
                    let reg = match op {
                        PrimitiveOp::RegisterRead { register, .. }
                        | PrimitiveOp::RegisterWrite { register, .. } => Some(register),
                        _ => None,
                    };
                    if let Some(reg) = reg {
                        if charged_regs.insert(reg.clone()) {
                            if let Some(def) = program.registers.get(reg) {
                                register_sram += def.total_bits();
                            }
                        }
                    }
                }
            }
        }
        let sram =
            sram + u32::try_from(register_sram.div_ceil(sram_block_bits)).unwrap_or(u32::MAX);
        if !table.needs_tcam() {
            hash_bits += self.hash_bits_exact;
        }

        ResourceVector {
            table_ids: 1,
            sram_blocks: sram,
            tcam_blocks: tcam,
            crossbar_bytes: key_bytes,
            gateways: gateway_scopes,
            vliw_slots: vliw,
            hash_bits,
        }
    }
}

/// Number of conditional scopes enclosing each table application in the
/// program's entry control (used to charge gateways).
pub fn gateway_scopes(program: &Program) -> BTreeMap<String, u32> {
    let mut scopes = BTreeMap::new();
    fn walk(
        program: &Program,
        stmts: &[Stmt],
        depth_cond: u32,
        out: &mut BTreeMap<String, u32>,
        depth: usize,
    ) {
        if depth > 64 {
            return;
        }
        for stmt in stmts {
            match stmt {
                Stmt::Apply(t) => {
                    let e = out.entry(t.clone()).or_insert(depth_cond);
                    *e = (*e).max(depth_cond);
                }
                Stmt::ApplySelect {
                    table,
                    arms,
                    default,
                } => {
                    let e = out.entry(table.clone()).or_insert(depth_cond);
                    *e = (*e).max(depth_cond);
                    for (_, b) in arms {
                        walk(program, b, depth_cond + 1, out, depth);
                    }
                    walk(program, default, depth_cond + 1, out, depth);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(program, then_branch, depth_cond + 1, out, depth);
                    walk(program, else_branch, depth_cond + 1, out, depth);
                }
                Stmt::Do(_) => {}
                Stmt::Call(c) => {
                    if let Some(cb) = program.controls.get(c) {
                        walk(program, &cb.body, depth_cond, out, depth + 1);
                    }
                }
            }
        }
    }
    if let Some(entry) = program.entry_control() {
        walk(program, &entry.body, 0, &mut scopes, 0);
    }
    scopes
}

/// Demand of one table using the default model.
pub fn table_demand(program: &Program, table: &TableDef) -> ResourceVector {
    let scopes = gateway_scopes(program);
    DemandModel::default().table_demand(
        program,
        table,
        scopes.get(&table.name).copied().unwrap_or(0),
    )
}

/// Total demand of a program: sum over the tables its entry control applies.
pub fn program_demand(program: &Program) -> ResourceVector {
    let scopes = gateway_scopes(program);
    let model = DemandModel::default();
    let mut total = ResourceVector::ZERO;
    let mut seen = std::collections::BTreeSet::new();
    for name in program.tables_in_order() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(t) = program.tables.get(&name) {
            total += model.table_demand(program, t, scopes.get(&name).copied().unwrap_or(0));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::control::BoolExpr;
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef};

    fn program_with(table: TableDef) -> Program {
        ProgramBuilder::new("p")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("fwd")
                    .param("port", 16)
                    .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                    .build(),
            )
            .action(ActionBuilder::new("nop").build())
            .table(table)
            .control(ControlBuilder::new("ingress").apply("t").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    #[test]
    fn exact_table_uses_sram_not_tcam() {
        let t = TableBuilder::new("t")
            .key_exact(fref("ipv4", "dst_addr"))
            .action("fwd")
            .default_action("nop")
            .size(4096)
            .build();
        let p = program_with(t.clone());
        let d = table_demand(&p, p.tables.get("t").unwrap());
        assert_eq!(d.tcam_blocks, 0);
        assert!(d.sram_blocks >= 3); // 4096 × (32+64) bits ≥ 3 blocks
        assert_eq!(d.crossbar_bytes, 4);
        assert_eq!(d.table_ids, 1);
        assert!(d.hash_bits > 0);
    }

    #[test]
    fn lpm_table_uses_tcam() {
        let t = TableBuilder::new("t")
            .key_lpm(fref("ipv4", "dst_addr"))
            .action("fwd")
            .default_action("nop")
            .size(1024)
            .build();
        let p = program_with(t.clone());
        let d = table_demand(&p, p.tables.get("t").unwrap());
        assert!(d.tcam_blocks >= 2); // 1024/512 = 2 depth blocks × 1 width
        assert!(d.sram_blocks >= 1); // action data
    }

    #[test]
    fn bigger_tables_cost_more() {
        let small = TableBuilder::new("t")
            .key_exact(fref("ipv4", "dst_addr"))
            .action("fwd")
            .default_action("nop")
            .size(128)
            .build();
        let big = TableBuilder::new("t")
            .key_exact(fref("ipv4", "dst_addr"))
            .action("fwd")
            .default_action("nop")
            .size(65536)
            .build();
        let ps = program_with(small);
        let pb = program_with(big);
        let ds = table_demand(&ps, ps.tables.get("t").unwrap());
        let db = table_demand(&pb, pb.tables.get("t").unwrap());
        assert!(db.sram_blocks > ds.sram_blocks);
    }

    #[test]
    fn gateway_scopes_counted() {
        let t = TableBuilder::new("t")
            .key_exact(fref("ipv4", "dst_addr"))
            .action("fwd")
            .default_action("nop")
            .build();
        let mut p = program_with(t);
        // Wrap the apply in an If.
        p.controls.insert(
            "ingress".into(),
            dejavu_p4ir::ControlBlock::new(
                "ingress",
                vec![Stmt::If {
                    cond: BoolExpr::Valid("ipv4".into()),
                    then_branch: vec![Stmt::Apply("t".into())],
                    else_branch: vec![],
                }],
            ),
        );
        let scopes = gateway_scopes(&p);
        assert_eq!(scopes["t"], 1);
        let d = table_demand(&p, p.tables.get("t").unwrap());
        assert_eq!(d.gateways, 1);
    }

    #[test]
    fn program_demand_sums_unique_tables() {
        let t = TableBuilder::new("t")
            .key_exact(fref("ipv4", "dst_addr"))
            .action("fwd")
            .default_action("nop")
            .build();
        let p = program_with(t);
        let total = program_demand(&p);
        let single = table_demand(&p, p.tables.get("t").unwrap());
        assert_eq!(total, single);
    }
}
