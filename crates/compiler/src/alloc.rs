//! Stage allocation: placing a program's tables into MAU stages.
//!
//! Implements the compiler pass Dejavu relies on (§3.2): given a program and
//! a pipelet's stage count/capacities, assign each table to a stage such
//! that
//!
//! * match/action dependencies put dependent tables in strictly later
//!   stages (successor dependencies allow co-residence with predication),
//! * no stage's resource capacity is exceeded.
//!
//! The allocator is ASAP-greedy over the dependency levels — the same
//! strategy the NSDI'15 compiler paper uses as its baseline. It reports
//! stage-by-stage usage, which [`crate::report`] turns into Table-1-style
//! percentages.

use crate::demand::{gateway_scopes, DemandModel};
use dejavu_asic::{ResourceVector, StageResources, TofinoProfile};
use dejavu_p4ir::analyze::{self, AnalysisConfig};
use dejavu_p4ir::lint::{self, LintConfig};
use dejavu_p4ir::{DependencyGraph, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A table needs more resources than one whole stage offers.
    TableTooLarge {
        /// Offending table.
        table: String,
        /// Its demand.
        demand: Box<ResourceVector>,
    },
    /// The program needs more stages than the pipelet has.
    OutOfStages {
        /// Table that could not be placed.
        table: String,
        /// Stages available.
        stages: usize,
    },
    /// Program failed validation.
    InvalidProgram(String),
    /// The static verifier found error-level defects (`dejavu-lint`).
    LintRejected {
        /// One summary line per error-level diagnostic.
        diagnostics: Vec<String>,
    },
    /// The abstract interpreter found error-level defects (`dejavu-analyze`).
    AnalysisRejected {
        /// One summary line per error-level finding.
        diagnostics: Vec<String>,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TableTooLarge { table, demand } => {
                write!(
                    f,
                    "table {table} exceeds single-stage capacity (needs {demand})"
                )
            }
            CompileError::OutOfStages { table, stages } => {
                write!(f, "no stage left for table {table} within {stages} stages")
            }
            CompileError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
            CompileError::LintRejected { diagnostics } => {
                write!(
                    f,
                    "program rejected by dejavu-lint ({} error(s))",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            CompileError::AnalysisRejected { diagnostics } => {
                write!(
                    f,
                    "program rejected by dejavu-analyze ({} error(s))",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The result of compiling one program onto one pipelet.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Stage index of each placed table (first chunk, for split tables).
    pub stage_of: BTreeMap<String, usize>,
    /// Stage index of each table's last chunk (equals `stage_of` for
    /// unsplit tables); dependents are floored past this.
    pub last_stage_of: BTreeMap<String, usize>,
    /// Per-stage usage after placement.
    pub stages: Vec<StageResources>,
    /// Demand charged per table.
    pub demand_of: BTreeMap<String, ResourceVector>,
}

impl Allocation {
    /// Number of stages with any usage.
    pub fn stages_used(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.used != ResourceVector::ZERO)
            .count()
    }

    /// Highest stage index used, plus one (the program's stage span).
    pub fn stage_span(&self) -> usize {
        self.stage_of.values().map(|s| s + 1).max().unwrap_or(0)
    }

    /// Total resources used across stages.
    pub fn total_used(&self) -> ResourceVector {
        self.stages
            .iter()
            .fold(ResourceVector::ZERO, |acc, s| acc + s.used)
    }
}

/// Allocates programs onto pipelets of a given profile.
#[derive(Debug, Clone)]
pub struct StageAllocator {
    profile: TofinoProfile,
    model: DemandModel,
    lint_config: LintConfig,
    analysis_config: AnalysisConfig,
}

impl StageAllocator {
    /// Allocator for a switch profile with the default demand model.
    pub fn new(profile: TofinoProfile) -> Self {
        StageAllocator {
            profile,
            model: DemandModel::default(),
            lint_config: LintConfig::new(),
            analysis_config: AnalysisConfig::new(),
        }
    }

    /// The demand model in use.
    pub fn model(&self) -> &DemandModel {
        &self.model
    }

    /// Replaces the lint configuration programs are vetted under before
    /// allocation. The framework layers (dejavu-core) use this to encode
    /// their documented invariants (e.g. the consume-once flag tables).
    pub fn with_lint_config(mut self, config: LintConfig) -> Self {
        self.lint_config = config;
        self
    }

    /// The lint configuration in use.
    pub fn lint_config(&self) -> &LintConfig {
        &self.lint_config
    }

    /// Replaces the abstract-interpretation configuration programs are
    /// vetted under before allocation (severity overrides, allows, and
    /// installed-entry sets for `DJV203` feasibility checks).
    pub fn with_analysis_config(mut self, config: AnalysisConfig) -> Self {
        self.analysis_config = config;
        self
    }

    /// The analysis configuration in use.
    pub fn analysis_config(&self) -> &AnalysisConfig {
        &self.analysis_config
    }

    /// Compiles a program onto one pipelet (fresh stages).
    pub fn compile(&self, program: &Program) -> Result<Allocation, CompileError> {
        let stages =
            vec![StageResources::new(self.profile.stage_capacity); self.profile.stages_per_pipelet];
        self.compile_onto(program, stages)
    }

    /// Compiles a program onto a pipelet that already has `stages` usage
    /// (for co-residency checks: can NF B share the pipelet NF A occupies?).
    pub fn compile_onto(
        &self,
        program: &Program,
        mut stages: Vec<StageResources>,
    ) -> Result<Allocation, CompileError> {
        program
            .validate()
            .map_err(|e| CompileError::InvalidProgram(e.to_string()))?;
        // The static-verifier gate: error-level findings (invalid header
        // accesses, read-before-write metadata, dependency cycles, ...)
        // never reach stage allocation — they would compile onto the ASIC
        // and misbehave silently at line rate.
        let lint = lint::check_with_config(program, &self.lint_config);
        if lint.has_errors() {
            return Err(CompileError::LintRejected {
                diagnostics: lint.error_summaries(),
            });
        }
        // The abstract-interpretation gate: value-range and stateful-safety
        // errors (unmatchable installed entries, register hazards surfaced
        // per-program) are defects the lint's purely syntactic checks
        // cannot see.
        let analysis = analyze::check_with_config(program, &self.analysis_config);
        if analysis.has_errors() {
            return Err(CompileError::AnalysisRejected {
                diagnostics: analysis.error_summaries(),
            });
        }
        let graph = DependencyGraph::build(program);
        let levels = graph.stage_levels();
        let scopes = gateway_scopes(program);

        // Place tables in apply order; each table goes to the earliest stage
        // that satisfies (a) its dependency floor relative to already-placed
        // predecessors and (b) resource fit.
        let mut stage_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut demand_of: BTreeMap<String, ResourceVector> = BTreeMap::new();
        // Tables sorted by dependency level then apply order keeps the ASAP
        // schedule feasible.
        let mut order: Vec<&String> = graph.order.iter().collect();
        order.sort_by_key(|t| {
            (
                levels.get(*t).copied().unwrap_or(0),
                position(&graph.order, t),
            )
        });

        let mut last_stage_of: BTreeMap<String, usize> = BTreeMap::new();
        for table_name in order {
            let table = program.tables.get(table_name).ok_or_else(|| {
                CompileError::InvalidProgram(format!("unknown table {table_name}"))
            })?;
            let scope = scopes.get(table_name).copied().unwrap_or(0);
            let demand = self.model.table_demand(program, table, scope);

            // Large tables split across stages by depth, the way production
            // compilers spread match memory: chunk the declared capacity
            // until one chunk's demand fits a fresh stage.
            let chunks = self.split_into_chunks(program, table, scope, &demand)?;

            // Dependency floor: one past the *last* chunk stage of every
            // match/action predecessor; at least the stage of every
            // successor predecessor.
            let mut floor = 0usize;
            for e in &graph.edges {
                if &e.to == table_name {
                    if let Some(&ps) = last_stage_of.get(&e.from) {
                        floor = floor.max(ps + e.kind.min_stage_gap() as usize);
                    }
                }
            }

            let mut first_stage = None;
            let mut cursor = floor;
            let mut total = ResourceVector::ZERO;
            for chunk in &chunks {
                let mut placed = None;
                for (i, stage) in stages.iter_mut().enumerate().skip(cursor) {
                    if stage.fits(chunk) {
                        stage.charge(chunk);
                        placed = Some(i);
                        break;
                    }
                }
                let Some(stage_idx) = placed else {
                    return Err(CompileError::OutOfStages {
                        table: table_name.clone(),
                        stages: stages.len(),
                    });
                };
                if first_stage.is_none() {
                    first_stage = Some(stage_idx);
                }
                cursor = stage_idx; // later chunks share or follow this stage
                last_stage_of.insert(table_name.clone(), stage_idx);
                total += *chunk;
            }
            stage_of.insert(table_name.clone(), first_stage.expect("at least one chunk"));
            demand_of.insert(table_name.clone(), total);
        }
        Ok(Allocation {
            stage_of,
            last_stage_of,
            stages,
            demand_of,
        })
    }

    /// Splits a table's demand into per-stage chunks. A table whose full
    /// demand fits one fresh stage yields a single chunk; otherwise the
    /// declared capacity is halved until a chunk fits, and enough chunks are
    /// emitted to cover the full capacity. A table that cannot fit even at
    /// one entry is truly too large.
    fn split_into_chunks(
        &self,
        program: &Program,
        table: &dejavu_p4ir::TableDef,
        scope: u32,
        full_demand: &ResourceVector,
    ) -> Result<Vec<ResourceVector>, CompileError> {
        if full_demand.within(&self.profile.stage_capacity) {
            return Ok(vec![*full_demand]);
        }
        let mut chunk_size = table.size;
        loop {
            chunk_size /= 2;
            if chunk_size == 0 {
                return Err(CompileError::TableTooLarge {
                    table: table.name.clone(),
                    demand: Box::new(*full_demand),
                });
            }
            let mut chunk_table = table.clone();
            chunk_table.size = chunk_size;
            let chunk = self.model.table_demand(program, &chunk_table, scope);
            if chunk.within(&self.profile.stage_capacity) {
                let n = table.size.div_ceil(chunk_size) as usize;
                if n > self.profile.stages_per_pipelet {
                    // More chunks than stages can never fit.
                    return Err(CompileError::OutOfStages {
                        table: table.name.clone(),
                        stages: self.profile.stages_per_pipelet,
                    });
                }
                return Ok(vec![chunk; n]);
            }
        }
    }

    /// Convenience: does the program fit one pipelet at all?
    pub fn fits(&self, program: &Program) -> bool {
        self.compile(program).is_ok()
    }

    /// Convenience: can `second` be co-located on the pipelet already
    /// hosting `first` (parallel composition feasibility, §3.2)?
    pub fn fits_together(&self, first: &Program, second: &Program) -> bool {
        match self.compile(first) {
            Ok(alloc) => self.compile_onto(second, alloc.stages).is_ok(),
            Err(_) => false,
        }
    }
}

fn position(order: &[String], name: &str) -> usize {
    order.iter().position(|t| t == name).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef};

    /// Chain of `n` tables where table i+1 matches on the field written by
    /// table i — forcing n distinct stages.
    fn chained_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new("chain")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(ActionBuilder::new("nop").build());
        let mut control = ControlBuilder::new("ingress");
        for i in 0..n {
            b = b
                .meta_field(format!("f{i}"), 16)
                .action(
                    ActionBuilder::new(format!("w{i}"))
                        .set(FieldRef::meta(format!("f{i}")), Expr::val(1, 16))
                        .build(),
                )
                .table(
                    TableBuilder::new(format!("t{i}"))
                        .key_exact(if i == 0 {
                            fref("ipv4", "dst_addr")
                        } else {
                            FieldRef::meta(format!("f{}", i - 1))
                        })
                        .action(format!("w{i}"))
                        .default_action(format!("w{i}"))
                        .size(64)
                        .build(),
                );
            control = control.apply(&format!("t{i}"));
        }
        b.control(control.build()).entry("ingress").build().unwrap()
    }

    /// `n` fully independent small tables.
    fn independent_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new("indep")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            );
        let mut control = ControlBuilder::new("ingress");
        for i in 0..n {
            b = b
                .meta_field(format!("f{i}"), 8)
                .action(
                    ActionBuilder::new(format!("w{i}"))
                        .set(FieldRef::meta(format!("f{i}")), Expr::val(1, 8))
                        .build(),
                )
                .table(
                    TableBuilder::new(format!("t{i}"))
                        .key_exact(fref("ethernet", "ether_type"))
                        .action(format!("w{i}"))
                        .default_action(format!("w{i}"))
                        .size(64)
                        .build(),
                );
            control = control.apply(&format!("t{i}"));
        }
        b.control(control.build()).entry("ingress").build().unwrap()
    }

    /// A program whose table matches on a header the parser never extracts
    /// — structurally valid, semantically broken (DJV001).
    fn unparsed_header_program() -> Program {
        ProgramBuilder::new("broken")
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(ActionBuilder::new("nop").build())
            .table(
                TableBuilder::new("routes")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("nop")
                    .default_action("nop")
                    .build(),
            )
            .control(ControlBuilder::new("ingress").apply("routes").build())
            .entry("ingress")
            .build()
            .unwrap()
    }

    #[test]
    fn lint_errors_block_allocation() {
        let program = unparsed_header_program();
        assert!(
            program.validate().is_ok(),
            "fixture must pass structural validation"
        );
        let err = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .compile(&program)
            .unwrap_err();
        match err {
            CompileError::LintRejected { diagnostics } => {
                assert!(
                    diagnostics.iter().any(|d| d.contains("DJV001")),
                    "expected a DJV001 summary, got {diagnostics:?}"
                );
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
    }

    #[test]
    fn lint_config_can_waive_a_finding() {
        let program = unparsed_header_program();
        let cfg = LintConfig::new().set_severity(
            dejavu_p4ir::LintCode::InvalidHeaderAccess,
            dejavu_p4ir::Severity::Allow,
        );
        StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .with_lint_config(cfg)
            .compile(&program)
            .expect("waived finding must not block allocation");
    }

    /// A clean program whose installed entries (supplied via the analysis
    /// config) can never match: ingress guards the table behind
    /// `ether_type == 0x800`, yet the entry matches 0x86DD (DJV203).
    fn guarded_routes_program() -> Program {
        ProgramBuilder::new("guarded")
            .header(well_known::ethernet())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(ActionBuilder::new("nop").build())
            .table(
                TableBuilder::new("routes")
                    .key_exact(fref("ethernet", "ether_type"))
                    .action("nop")
                    .default_action("nop")
                    .build(),
            )
            .control(
                ControlBuilder::new("ingress")
                    .stmt(dejavu_p4ir::Stmt::If {
                        cond: dejavu_p4ir::BoolExpr::Cmp(
                            dejavu_p4ir::Expr::field("ethernet", "ether_type"),
                            dejavu_p4ir::CmpOp::Eq,
                            dejavu_p4ir::Expr::val(0x800, 16),
                        ),
                        then_branch: vec![dejavu_p4ir::Stmt::Apply("routes".into())],
                        else_branch: vec![],
                    })
                    .build(),
            )
            .entry("ingress")
            .build()
            .unwrap()
    }

    #[test]
    fn analysis_errors_block_allocation() {
        use dejavu_p4ir::table::KeyMatch;
        let program = guarded_routes_program();
        let cfg = AnalysisConfig::new().with_entries(
            "routes",
            vec![vec![KeyMatch::Exact(dejavu_p4ir::Value::new(0x86DD, 16))]],
        );
        let err = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .with_analysis_config(cfg)
            .compile(&program)
            .unwrap_err();
        match err {
            CompileError::AnalysisRejected { diagnostics } => {
                assert!(
                    diagnostics.iter().any(|d| d.contains("DJV203")),
                    "expected a DJV203 summary, got {diagnostics:?}"
                );
            }
            other => panic!("expected AnalysisRejected, got {other:?}"),
        }
    }

    #[test]
    fn analysis_config_can_waive_a_finding() {
        use dejavu_p4ir::table::KeyMatch;
        let program = guarded_routes_program();
        let cfg = AnalysisConfig::new()
            .with_entries(
                "routes",
                vec![vec![KeyMatch::Exact(dejavu_p4ir::Value::new(0x86DD, 16))]],
            )
            .set_severity(
                dejavu_p4ir::AnalysisCode::UnmatchableEntry,
                dejavu_p4ir::Severity::Allow,
            );
        StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .with_analysis_config(cfg)
            .compile(&program)
            .expect("waived finding must not block allocation");
    }

    #[test]
    fn chained_tables_occupy_distinct_stages() {
        let alloc = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .compile(&chained_program(5))
            .unwrap();
        assert_eq!(alloc.stage_span(), 5);
        for i in 0..5 {
            assert_eq!(alloc.stage_of[&format!("t{i}")], i);
        }
    }

    #[test]
    fn independent_tables_share_stages() {
        let alloc = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .compile(&independent_program(8))
            .unwrap();
        // All eight fit in stage 0 (16 table IDs per stage).
        assert_eq!(alloc.stage_span(), 1);
        assert_eq!(alloc.stages_used(), 1);
    }

    #[test]
    fn out_of_stages_detected() {
        let profile = TofinoProfile::tiny(); // 4 stages
        let err = StageAllocator::new(profile)
            .compile(&chained_program(5))
            .unwrap_err();
        assert!(matches!(err, CompileError::OutOfStages { .. }));
    }

    #[test]
    fn too_many_independent_tables_spill_to_next_stage() {
        // tiny profile has 4 table IDs per stage; 6 independent tables must
        // spill into stage 1.
        let alloc = StageAllocator::new(TofinoProfile::tiny())
            .compile(&independent_program(6))
            .unwrap();
        assert_eq!(alloc.stage_span(), 2);
    }

    #[test]
    fn giant_table_rejected() {
        // 100M entries split into more chunks than the pipelet has stages.
        let mut p = independent_program(1);
        p.tables.get_mut("t0").unwrap().size = 100_000_000;
        let err = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .compile(&p)
            .unwrap_err();
        assert!(
            matches!(err, CompileError::OutOfStages { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn large_table_splits_across_stages() {
        // An LPM table too deep for one stage's TCAM splits by depth: it
        // compiles, spans several stages, and dependents land after its
        // last chunk.
        let mut p = independent_program(1);
        {
            let t = p.tables.get_mut("t0").unwrap();
            t.keys[0].kind = dejavu_p4ir::MatchKind::Lpm;
            t.size = 512 * 30; // 30 depth blocks > 24 per stage
        }
        let alloc = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .compile(&p)
            .unwrap();
        let first = alloc.stage_of["t0"];
        let last = alloc.last_stage_of["t0"];
        assert!(last >= first, "chunks go forward");
        assert!(alloc.total_used().tcam_blocks >= 30);
        // The whole thing still fits the pipelet.
        assert!(alloc.stage_span() <= 12);
    }

    #[test]
    fn fits_together_respects_shared_capacity() {
        let alloc = StageAllocator::new(TofinoProfile::tiny());
        let a = independent_program(2);
        let b = independent_program(2);
        assert!(alloc.fits_together(&a, &b));
        // Ten + ten tables cannot share a 4-stage × 4-id pipelet.
        let big_a = independent_program(10);
        let big_b = independent_program(10);
        assert!(!alloc.fits_together(&big_a, &big_b));
    }

    #[test]
    fn total_used_matches_demands() {
        let p = independent_program(3);
        let alloc = StageAllocator::new(TofinoProfile::wedge_100b_32x())
            .compile(&p)
            .unwrap();
        let sum = alloc
            .demand_of
            .values()
            .fold(dejavu_asic::ResourceVector::ZERO, |acc, d| acc + *d);
        assert_eq!(alloc.total_used(), sum);
    }
}
