//! # dejavu-compiler — stage allocation and resource reporting
//!
//! This crate plays the role the proprietary P4 compiler plays in the Dejavu
//! paper: it is the oracle that answers *"how many MAU stages / SRAM blocks
//! / TCAM blocks / crossbar bytes does this program need, and does it fit a
//! pipelet?"* (§3.2: "This information is usually available from the P4
//! compiler, which typically reports the exact amount of resource usage").
//!
//! It consists of:
//!
//! * [`demand`] — a per-table resource cost model (SRAM/TCAM sizing from
//!   declared capacity and key widths, crossbar bytes from match keys, VLIW
//!   slots from action bodies, gateways from control-flow nesting),
//! * [`alloc`] — an ASAP stage allocator that respects match/action/
//!   successor dependencies (Jose et al., NSDI'15) and per-stage capacity,
//! * [`report`] — Table-1-style usage reports (percent of pipeline totals),
//! * [`emulation`] — the Hyper4/HyperV-style *virtualization* cost model
//!   used as the related-work baseline (§6: such approaches "require
//!   significantly more hardware resources (3-7×) compared to the native
//!   programs").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod demand;
pub mod emulation;
pub mod report;

pub use alloc::{Allocation, CompileError, StageAllocator};
pub use demand::{program_demand, table_demand, DemandModel};
pub use emulation::EmulationModel;
pub use report::ResourceReport;
