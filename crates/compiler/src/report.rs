//! Table-1-style resource reports.
//!
//! The paper's Table 1 reports Dejavu's framework overhead as percentages of
//! the pipeline totals across seven resource classes: Stages, Table IDs,
//! Gateways, Crossbars, VLIWs, SRAM, TCAM. [`ResourceReport`] renders the
//! same row for any allocation.

use crate::alloc::Allocation;
use dejavu_asic::{ResourceVector, TofinoProfile};
use std::fmt;

/// Percent-of-pipeline usage across the paper's Table 1 columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// Percent of MAU stages occupied (a stage counts when the allocation
    /// claims any dedicated slot in it).
    pub stages_pct: f64,
    /// Percent of logical table IDs.
    pub table_ids_pct: f64,
    /// Percent of gateways.
    pub gateways_pct: f64,
    /// Percent of crossbar bytes.
    pub crossbars_pct: f64,
    /// Percent of VLIW slots.
    pub vliws_pct: f64,
    /// Percent of SRAM blocks.
    pub sram_pct: f64,
    /// Percent of TCAM blocks.
    pub tcam_pct: f64,
}

impl ResourceReport {
    /// Builds a report from an allocation against a pipeline's totals
    /// (ingress + egress pipelet of one pipeline).
    pub fn from_allocation(alloc: &Allocation, profile: &TofinoProfile) -> Self {
        Self::from_usage(alloc.stage_span(), alloc.total_used(), profile)
    }

    /// Builds a report from a raw stage span + usage vector.
    pub fn from_usage(stage_span: usize, used: ResourceVector, profile: &TofinoProfile) -> Self {
        let total_stages = profile.stages_per_pipelet * 2; // per pipeline
        let totals = profile.pipeline_capacity();
        let f = used.fraction_of(&totals);
        ResourceReport {
            stages_pct: 100.0 * stage_span as f64 / total_stages as f64,
            table_ids_pct: 100.0 * f.table_ids,
            gateways_pct: 100.0 * f.gateways,
            crossbars_pct: 100.0 * f.crossbar_bytes,
            vliws_pct: 100.0 * f.vliw_slots,
            sram_pct: 100.0 * f.sram_blocks,
            tcam_pct: 100.0 * f.tcam_blocks,
        }
    }

    /// Renders the paper's Table 1 header.
    pub fn header() -> &'static str {
        "Stages  TableIDs  Gateways  Crossbars  VLIWs   SRAM    TCAM"
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:5.1}%  {:7.1}%  {:7.1}%  {:8.1}%  {:5.1}%  {:5.1}%  {:5.1}%",
            self.stages_pct,
            self.table_ids_pct,
            self.gateways_pct,
            self.crossbars_pct,
            self.vliws_pct,
            self.sram_pct,
            self.tcam_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_usage_percentages() {
        let profile = TofinoProfile::wedge_100b_32x();
        // 5 of 24 stages ≈ 20.8% — the paper's headline number.
        let used = ResourceVector {
            table_ids: 16, // of 384 → 4.2%
            gateways: 8,   // of 384 → 2.08%
            ..ResourceVector::ZERO
        };
        let r = ResourceReport::from_usage(5, used, &profile);
        assert!((r.stages_pct - 20.8).abs() < 0.1, "stages {}", r.stages_pct);
        assert!(
            (r.table_ids_pct - 4.2).abs() < 0.1,
            "ids {}",
            r.table_ids_pct
        );
        assert!((r.gateways_pct - 2.1).abs() < 0.1, "gw {}", r.gateways_pct);
        assert_eq!(r.tcam_pct, 0.0);
    }

    #[test]
    fn display_formats() {
        let profile = TofinoProfile::wedge_100b_32x();
        let r = ResourceReport::from_usage(5, ResourceVector::ZERO, &profile);
        let s = r.to_string();
        assert!(s.contains('%'));
        assert!(ResourceReport::header().contains("SRAM"));
    }
}
