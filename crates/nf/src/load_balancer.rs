//! The L4 load balancer — the paper's Fig. 4, line for line.
//!
//! ```text
//! control LB_control(inout all_header_t hdr){
//!   bit<32> sessionHash;
//!   Hash<bit<32>>(HashAlgorithm_t.CRC32) hasher;
//!   action computeFiveTupleHash(){ sessionHash = hasher.get({...5-tuple...}); }
//!   action modify_dstIp(bit<32> dip){ hdr.ipv4.dst_addr = dip; }
//!   action toCpu(){ hdr.sfc.toCpuFlag = true; }
//!   table lb_session{ key = {sessionHash:exact;}
//!                     actions = {modify_dstIp; toCpu;}
//!                     const default_action = toCpu(); }
//!   apply{ computeFiveTupleHash(); lb_session.apply(); }
//! }
//! ```
//!
//! On a session-table hit the destination VIP is rewritten to the selected
//! backend; on a miss the packet goes to the control plane, which installs
//! the session and reinjects (§3.1). [`session_entry_for`] computes the
//! same CRC32 the data plane computes, so the control plane can install
//! entries from punted packets.

use dejavu_core::analyze::LearnContract;
use dejavu_core::control_plane::{LearnPolicy, LearnResponse};
use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::action::{run_hash, HashAlgorithm};
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, FieldRef, Value};

/// The session table name.
pub const SESSION_TABLE: &str = "lb_session";
/// Name of the NF-local hash metadata field.
pub const SESSION_HASH_META: &str = "session_hash";
/// Affinity mode: the pinned-sessions table name.
pub const AFFINITY_TABLE: &str = "lb_affinity";
/// Affinity mode: NF-local scratch field holding the picked backend.
pub const AFFINITY_BACKEND_META: &str = "affinity_backend";
/// Affinity mode: the digest stream pinning new sessions.
pub const AFFINITY_STREAM: &str = "affinity";
/// Affinity mode: the backend-pool register array name.
pub const BACKEND_POOL_REGISTER: &str = "backends";
/// Affinity mode: number of cells in the backend pool (power of two — the
/// session hash is masked to index it).
pub const BACKEND_POOL_SIZE: u32 = 16;

/// The 5-tuple hashed by the load balancer, in hash input order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiveTuple {
    /// IPv4 source.
    pub src_addr: u32,
    /// IPv4 destination (the VIP on first sight).
    pub dst_addr: u32,
    /// IP protocol.
    pub protocol: u8,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
}

impl FiveTuple {
    /// The CRC32 session hash — bit-identical to the data plane's
    /// `computeFiveTupleHash`.
    pub fn session_hash(&self) -> u32 {
        run_hash(
            HashAlgorithm::Crc32,
            &[
                Value::new(u128::from(self.src_addr), 32),
                Value::new(u128::from(self.dst_addr), 32),
                Value::new(u128::from(self.protocol), 8),
                Value::new(u128::from(self.src_port), 16),
                Value::new(u128::from(self.dst_port), 16),
            ],
        ) as u32
    }
}

/// Builds the load balancer NF.
pub fn load_balancer() -> NfModule {
    let program = ProgramBuilder::new("lb")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .meta_field(SESSION_HASH_META, 32)
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("compute_five_tuple_hash")
                .hash(
                    FieldRef::meta(SESSION_HASH_META),
                    HashAlgorithm::Crc32,
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("ipv4", "dst_addr"),
                        Expr::field("ipv4", "protocol"),
                        Expr::field("tcp", "src_port"),
                        Expr::field("tcp", "dst_port"),
                    ],
                )
                .build(),
        )
        .action(
            ActionBuilder::new("modify_dst_ip")
                .param("dip", 32)
                .set(fref("ipv4", "dst_addr"), Expr::Param("dip".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("to_cpu")
                .set(sfc_field("to_cpu_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(SESSION_TABLE)
                .key_exact(FieldRef::meta(SESSION_HASH_META))
                .action("modify_dst_ip")
                .default_action("to_cpu")
                .size(65536)
                .build(),
        )
        .control(
            ControlBuilder::new("lb_ctrl")
                .invoke("compute_five_tuple_hash")
                .apply(SESSION_TABLE)
                .build(),
        )
        .entry("lb_ctrl")
        .build()
        .expect("lb program is well-formed");
    NfModule::new(program).expect("lb conforms to the NF API")
}

/// Builds the connection-affinity load balancer NF.
///
/// Where [`load_balancer`] punts every unknown session to the CPU, this
/// variant keeps forwarding in the data plane: on an `lb_affinity` miss the
/// default `pick_backend` action reads a backend from the
/// [`BACKEND_POOL_REGISTER`] array (indexed by the low bits of the session
/// hash), rewrites the destination, and digests `(hash, backend)` to
/// [`AFFINITY_STREAM`]. The learning loop ([`affinity_learn_policy`]) pins
/// the pair into `lb_affinity`, so the connection stays on its first-picked
/// backend even if the pool is later re-weighted — connection affinity
/// without a punt. Pair with an idle timeout to unpin idle sessions.
pub fn affinity_lb() -> NfModule {
    let program = ProgramBuilder::new("lb")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .meta_field(SESSION_HASH_META, 32)
        .meta_field(AFFINITY_BACKEND_META, 32)
        .register(BACKEND_POOL_REGISTER, 32, BACKEND_POOL_SIZE)
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("compute_five_tuple_hash")
                .hash(
                    FieldRef::meta(SESSION_HASH_META),
                    HashAlgorithm::Crc32,
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("ipv4", "dst_addr"),
                        Expr::field("ipv4", "protocol"),
                        Expr::field("tcp", "src_port"),
                        Expr::field("tcp", "dst_port"),
                    ],
                )
                .build(),
        )
        .action(
            ActionBuilder::new("modify_dst_ip")
                .param("dip", 32)
                .set(fref("ipv4", "dst_addr"), Expr::Param("dip".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("pick_backend")
                .reg_read(
                    FieldRef::meta(AFFINITY_BACKEND_META),
                    BACKEND_POOL_REGISTER,
                    Expr::And(
                        Box::new(Expr::meta(SESSION_HASH_META)),
                        Box::new(Expr::val(u128::from(BACKEND_POOL_SIZE - 1), 32)),
                    ),
                )
                .set(fref("ipv4", "dst_addr"), Expr::meta(AFFINITY_BACKEND_META))
                .digest(
                    AFFINITY_STREAM,
                    vec![
                        Expr::meta(SESSION_HASH_META),
                        Expr::meta(AFFINITY_BACKEND_META),
                    ],
                )
                .build(),
        )
        .table(
            TableBuilder::new(AFFINITY_TABLE)
                .key_exact(FieldRef::meta(SESSION_HASH_META))
                .action("modify_dst_ip")
                .default_action("pick_backend")
                .size(65536)
                .build(),
        )
        .control(
            ControlBuilder::new("lb_ctrl")
                .invoke("compute_five_tuple_hash")
                .apply(AFFINITY_TABLE)
                .build(),
        )
        .entry("lb_ctrl")
        .build()
        .expect("affinity lb program is well-formed");
    NfModule::new(program).expect("affinity lb conforms to the NF API")
}

/// Pins a session hash to a backend (goes in [`AFFINITY_TABLE`]).
pub fn affinity_entry(session_hash: u32, backend_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Exact(Value::new(u128::from(session_hash), 32))],
        action: "modify_dst_ip".into(),
        action_args: vec![Value::new(u128::from(backend_ip), 32)],
        priority: 0,
    }
}

/// The learning policy for [`AFFINITY_STREAM`]: each digest
/// `(hash, backend)` pins the session onto the backend the data plane
/// picked. Register it with
/// `ControlPlane::register_learn_policy("lb", AFFINITY_STREAM, ...)`.
pub fn affinity_learn_policy() -> Box<dyn LearnPolicy> {
    Box::new(|_pipeline: usize, values: &[Value]| {
        let mut resp = LearnResponse::default();
        if let [hash, backend] = values {
            resp.install.push((
                "lb".to_string(),
                AFFINITY_TABLE.to_string(),
                affinity_entry(hash.raw() as u32, backend.raw() as u32),
            ));
        }
        resp
    })
}

/// The declared learn contract matching [`affinity_learn_policy`]: the
/// `(hash, backend)` digest installs `hash` as the [`AFFINITY_TABLE`] key
/// and binds `backend` to `modify_dst_ip(dip)`. Verified against
/// [`affinity_lb`] by `dejavu_core::analyze::check_learn_contracts`.
pub fn affinity_learn_contract() -> LearnContract {
    LearnContract {
        nf: "lb".into(),
        stream: AFFINITY_STREAM.into(),
        target_table: AFFINITY_TABLE.into(),
        target_action: "modify_dst_ip".into(),
        key_map: vec![0],
        arg_map: vec![1],
    }
}

/// Builds a session entry mapping a 5-tuple's hash to a backend IP.
pub fn session_entry_for(tuple: &FiveTuple, backend_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Exact(Value::new(
            u128::from(tuple.session_hash()),
            32,
        ))],
        action: "modify_dst_ip".into(),
        action_args: vec![Value::new(u128::from(backend_ip), 32)],
        priority: 0,
    }
}

/// Extracts the 5-tuple from raw wire bytes (raw or SFC-encapsulated
/// eth/ipv4/tcp framing) — the parsing step the control plane performs on a
/// punted packet before installing a session.
pub fn five_tuple_of(bytes: &[u8]) -> Option<FiveTuple> {
    if bytes.len() < 14 {
        return None;
    }
    let ether_type = u16::from_be_bytes([bytes[12], bytes[13]]);
    let ip_off = match ether_type {
        0x0800 => 14,
        t if t == dejavu_core::sfc::SFC_ETHERTYPE => 34,
        _ => return None,
    };
    if bytes.len() < ip_off + 24 {
        return None;
    }
    let b = &bytes[ip_off..];
    Some(FiveTuple {
        src_addr: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
        dst_addr: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
        protocol: b[9],
        src_port: u16::from_be_bytes([b[20], b[21]]),
        dst_port: u16::from_be_bytes([b[22], b[23]]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_addr: 0x0a000001,
            dst_addr: 0xcb007150, // 203.0.113.80 (VIP)
            protocol: 6,
            src_port: 12345,
            dst_port: 80,
        }
    }

    fn tcp_packet(t: &FiveTuple) -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[22] = 64;
        p[23] = t.protocol;
        p[26..30].copy_from_slice(&t.src_addr.to_be_bytes());
        p[30..34].copy_from_slice(&t.dst_addr.to_be_bytes());
        p[34..36].copy_from_slice(&t.src_port.to_be_bytes());
        p[36..38].copy_from_slice(&t.dst_port.to_be_bytes());
        p
    }

    #[test]
    fn control_plane_hash_matches_data_plane() {
        let nf = load_balancer();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(&tuple()), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(meta[SESSION_HASH_META].raw() as u32, tuple().session_hash());
    }

    #[test]
    fn hit_rewrites_miss_punts() {
        let nf = load_balancer();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        // Miss: sfc.to_cpu_flag requested (via header when present).
        let mut pp =
            ParsedPacket::parse(&tcp_packet(&tuple()), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&sfc_field("to_cpu_flag")).unwrap().raw(), 1);
        // Install the session; the same flow now hits and rewrites.
        tables
            .install(
                program.tables.get(SESSION_TABLE).unwrap(),
                session_entry_for(&tuple(), 0x0a000063),
            )
            .unwrap();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(&tuple()), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0x0a000063);
    }

    #[test]
    fn affinity_miss_picks_from_pool_and_digests() {
        let nf = affinity_lb();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let pool = program.registers.get(BACKEND_POOL_REGISTER).unwrap();
        for i in 0..BACKEND_POOL_SIZE {
            tables.register_write(pool, i, u128::from(0x0a00_0060 + i));
        }
        let t = tuple();
        let slot = t.session_hash() & (BACKEND_POOL_SIZE - 1);
        let expected = u128::from(0x0a00_0060 + slot);
        let mut pp =
            ParsedPacket::parse(&tcp_packet(&t), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        // Destination rewritten to the pool pick — no punt.
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), expected);
        // Digest pins (hash, backend).
        let digests = tables.take_digests();
        assert_eq!(digests.len(), 1);
        assert_eq!(digests[0].name, AFFINITY_STREAM);
        let vals: Vec<u128> = digests[0].values.iter().map(|v| v.raw()).collect();
        assert_eq!(vals, vec![u128::from(t.session_hash()), expected]);
    }

    #[test]
    fn pinned_session_survives_pool_rewrite() {
        let nf = affinity_lb();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let t = tuple();
        tables
            .install(
                program.tables.get(AFFINITY_TABLE).unwrap(),
                affinity_entry(t.session_hash(), 0x0a000063),
            )
            .unwrap();
        // Re-point the whole pool elsewhere; the pinned session must not move.
        let pool = program.registers.get(BACKEND_POOL_REGISTER).unwrap();
        for i in 0..BACKEND_POOL_SIZE {
            tables.register_write(pool, i, 0x0a00_00ff);
        }
        let mut pp =
            ParsedPacket::parse(&tcp_packet(&t), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0x0a000063);
        // Hit path digests nothing.
        assert!(tables.take_digests().is_empty());
    }

    #[test]
    fn affinity_learn_policy_pins_pair() {
        let mut policy = affinity_learn_policy();
        let resp = policy.on_digest(
            0,
            &[Value::new(0xdead_beef, 32), Value::new(0x0a000063, 32)],
        );
        assert_eq!(resp.install.len(), 1);
        let (nf, table, entry) = &resp.install[0];
        assert_eq!(nf, "lb");
        assert_eq!(table, AFFINITY_TABLE);
        assert_eq!(entry, &affinity_entry(0xdead_beef, 0x0a000063));
        assert!(policy.on_digest(0, &[]).install.is_empty());
    }

    #[test]
    fn five_tuple_extraction_raw_and_encapsulated() {
        let t = tuple();
        let raw = tcp_packet(&t);
        assert_eq!(five_tuple_of(&raw), Some(t));
        // Encapsulated: splice a 20-byte SFC header after ethernet.
        let mut enc = Vec::new();
        enc.extend_from_slice(&raw[..12]);
        enc.extend_from_slice(&dejavu_core::sfc::SFC_ETHERTYPE.to_be_bytes());
        enc.extend_from_slice(&dejavu_core::SfcHeader::for_path(1).to_bytes());
        enc.extend_from_slice(&raw[14..]);
        assert_eq!(five_tuple_of(&enc), Some(t));
        // Garbage.
        assert_eq!(five_tuple_of(&[0u8; 10]), None);
    }

    #[test]
    fn distinct_tuples_distinct_hashes() {
        let a = tuple();
        let mut b = tuple();
        b.src_port = 12346;
        assert_ne!(a.session_hash(), b.session_hash());
    }
}
