//! The packet-filtering firewall.
//!
//! Two modes:
//!
//! * [`firewall`] — a stateless 5-tuple ACL. Entries match (source prefix,
//!   destination prefix, protocol, destination port range); the verdict is
//!   `permit` (continue along the chain) or `deny` — which, per the Dejavu
//!   API, requests the drop through `sfc.drop_flag` rather than touching
//!   platform metadata. The framework's `check_sfcFlags` stage translates
//!   the flag after the NF returns.
//! * [`conntrack_firewall`] — a connection-tracking mode: outbound traffic
//!   from trusted prefixes is permitted and digests its connection identity
//!   to [`FW_CONN_STREAM`]; the learning loop ([`conntrack_learn_policy`])
//!   installs the reverse pair into the `fw_conn` table, so only return
//!   traffic of established connections gets in — everything else is
//!   default-denied. Pair with an idle timeout to expire quiet connections.

use dejavu_core::analyze::LearnContract;
use dejavu_core::control_plane::{LearnPolicy, LearnResponse};
use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::control::{BoolExpr, Stmt};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The firewall's ACL table name.
pub const ACL_TABLE: &str = "acl";
/// Conntrack mode: the outbound (trusted-prefix) table name.
pub const FW_OUT_TABLE: &str = "fw_out";
/// Conntrack mode: the learned established-connections table name.
pub const FW_CONN_TABLE: &str = "fw_conn";
/// Conntrack mode: the digest stream carrying new outbound connections.
pub const FW_CONN_STREAM: &str = "conn";
/// Conntrack mode: NF-local direction flag (1 = outbound from trusted).
pub const FW_DIR_META: &str = "fw_dir";

/// Builds the firewall NF.
pub fn firewall() -> NfModule {
    let program = ProgramBuilder::new("firewall")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(ActionBuilder::new("permit").build())
        .action(
            ActionBuilder::new("deny")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(ACL_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .key_lpm(fref("ipv4", "dst_addr"))
                .key_ternary(fref("ipv4", "protocol"))
                .key_range(fref("tcp", "dst_port"))
                .action("deny")
                .default_action("permit")
                .size(8192)
                .build(),
        )
        .control(ControlBuilder::new("fw_ctrl").apply(ACL_TABLE).build())
        .entry("fw_ctrl")
        .build()
        .expect("firewall program is well-formed");
    NfModule::new(program).expect("firewall conforms to the NF API")
}

/// Builds the connection-tracking firewall NF.
///
/// * `fw_out` (LPM on `ipv4.src_addr`): trusted inside prefixes map to
///   `allow_out`, which marks the packet outbound ([`FW_DIR_META`] = 1) and
///   digests `(remote, inside)` — the *reversed* address pair — to
///   [`FW_CONN_STREAM`]. Default leaves the mark at 0.
/// * `fw_conn` (exact on `ipv4.src_addr` + `ipv4.dst_addr`): applied only
///   when the packet is not outbound. Learned entries `permit`; the default
///   `deny` sets `sfc.drop_flag` — a default-deny inbound posture.
pub fn conntrack_firewall() -> NfModule {
    let program = ProgramBuilder::new("firewall")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .meta_field(FW_DIR_META, 8)
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("allow_out")
                .set(dejavu_p4ir::FieldRef::meta(FW_DIR_META), Expr::val(1, 8))
                .digest(
                    FW_CONN_STREAM,
                    vec![
                        Expr::field("ipv4", "dst_addr"),
                        Expr::field("ipv4", "src_addr"),
                    ],
                )
                .build(),
        )
        .action(ActionBuilder::new("stay_inbound").build())
        .action(ActionBuilder::new("permit").build())
        .action(
            ActionBuilder::new("deny")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(FW_OUT_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .action("allow_out")
                .default_action("stay_inbound")
                .size(1024)
                .build(),
        )
        .table(
            TableBuilder::new(FW_CONN_TABLE)
                .key_exact(fref("ipv4", "src_addr"))
                .key_exact(fref("ipv4", "dst_addr"))
                .action("permit")
                .default_action("deny")
                .size(65536)
                .build(),
        )
        .control(
            ControlBuilder::new("fw_ctrl")
                .apply(FW_OUT_TABLE)
                .stmt(Stmt::If {
                    cond: BoolExpr::meta_eq(FW_DIR_META, 0, 8),
                    then_branch: vec![Stmt::Apply(FW_CONN_TABLE.into())],
                    else_branch: vec![],
                })
                .build(),
        )
        .entry("fw_ctrl")
        .build()
        .expect("conntrack firewall program is well-formed");
    NfModule::new(program).expect("conntrack firewall conforms to the NF API")
}

/// Conntrack mode: traffic sourced under `inside_prefix` is trusted
/// outbound (goes in [`FW_OUT_TABLE`]).
pub fn outbound_entry(inside_prefix: (u32, u16)) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(inside_prefix.0), 32),
            inside_prefix.1,
        )],
        action: "allow_out".into(),
        action_args: vec![],
        priority: 0,
    }
}

/// Conntrack mode: the learned established-connection entry — return
/// traffic from `remote` to `inside` is permitted (goes in
/// [`FW_CONN_TABLE`]).
pub fn conn_entry(remote: u32, inside: u32) -> TableEntry {
    TableEntry {
        matches: vec![
            KeyMatch::Exact(Value::new(u128::from(remote), 32)),
            KeyMatch::Exact(Value::new(u128::from(inside), 32)),
        ],
        action: "permit".into(),
        action_args: vec![],
        priority: 0,
    }
}

/// The learning policy for [`FW_CONN_STREAM`]: each digest
/// `(remote, inside)` becomes a [`FW_CONN_TABLE`] entry permitting the
/// return direction. Register it with
/// `ControlPlane::register_learn_policy("firewall", FW_CONN_STREAM, ...)`.
pub fn conntrack_learn_policy() -> Box<dyn LearnPolicy> {
    Box::new(|_pipeline: usize, values: &[Value]| {
        let mut resp = LearnResponse::default();
        if let [remote, inside] = values {
            resp.install.push((
                "firewall".to_string(),
                FW_CONN_TABLE.to_string(),
                conn_entry(remote.raw() as u32, inside.raw() as u32),
            ));
        }
        resp
    })
}

/// The declared learn contract matching [`conntrack_learn_policy`]: the
/// `(remote, inside)` digest is installed verbatim as the
/// [`FW_CONN_TABLE`] key (the table's key order is `(src, dst)` of the
/// *return* direction, which is exactly `(remote, inside)`); `permit`
/// takes no arguments. Verified against [`conntrack_firewall`] by
/// `dejavu_core::analyze::check_learn_contracts`.
pub fn conntrack_learn_contract() -> LearnContract {
    LearnContract {
        nf: "firewall".into(),
        stream: FW_CONN_STREAM.into(),
        target_table: FW_CONN_TABLE.into(),
        target_action: "permit".into(),
        key_map: vec![0, 1],
        arg_map: vec![],
    }
}

/// A deny rule: drop traffic from `src_prefix` to `dst_prefix` with the
/// given protocol (`None` = any) and destination-port range.
pub fn deny_entry(
    src_prefix: (u32, u16),
    dst_prefix: (u32, u16),
    protocol: Option<u8>,
    port_range: (u16, u16),
    priority: i32,
) -> TableEntry {
    TableEntry {
        matches: vec![
            KeyMatch::Lpm(Value::new(u128::from(src_prefix.0), 32), src_prefix.1),
            KeyMatch::Lpm(Value::new(u128::from(dst_prefix.0), 32), dst_prefix.1),
            match protocol {
                Some(p) => KeyMatch::Ternary(Value::new(u128::from(p), 8), Value::new(0xff, 8)),
                None => KeyMatch::Any,
            },
            KeyMatch::Range(
                Value::new(u128::from(port_range.0), 16),
                Value::new(u128::from(port_range.1), 16),
            ),
        ],
        action: "deny".into(),
        action_args: vec![],
        priority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    fn tcp_packet(dst_port: u16) -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[22] = 64;
        p[23] = 6;
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p[30..34].copy_from_slice(&[192, 168, 1, 1]);
        p[36..38].copy_from_slice(&dst_port.to_be_bytes());
        p
    }

    fn run(entry: Option<TableEntry>, pkt: &[u8]) -> ParsedPacket {
        let nf = firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        if let Some(e) = entry {
            tables
                .install(program.tables.get(ACL_TABLE).unwrap(), e)
                .unwrap();
        }
        let mut pp = ParsedPacket::parse(pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        pp
    }

    #[test]
    fn default_permits() {
        let pp = run(None, &tcp_packet(80));
        // No SFC header on the raw packet → flag write is a no-op; the
        // important part is that nothing marked it for drop.
        assert!(!pp.is_valid("sfc"));
    }

    #[test]
    fn deny_rule_sets_sfc_drop_flag() {
        // Build an SFC-encapsulated packet so the flag has somewhere to go.
        let nf = firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(ACL_TABLE).unwrap(),
                deny_entry((0x0a000000, 8), (0, 0), Some(6), (0, 1023), 10),
            )
            .unwrap();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(80), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&sfc_field("drop_flag")).unwrap().raw(), 1);
        // Platform metadata untouched by the NF itself.
        assert!(!meta.contains_key("drop_flag"));
    }

    fn conn_packet(src: u32, dst: u32) -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[23] = 6;
        p[26..30].copy_from_slice(&src.to_be_bytes());
        p[30..34].copy_from_slice(&dst.to_be_bytes());
        p
    }

    #[test]
    fn conntrack_outbound_digests_and_skips_conn_table() {
        let nf = conntrack_firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(FW_OUT_TABLE).unwrap(),
                outbound_entry((0x0a000000, 8)),
            )
            .unwrap();
        let mut pp = ParsedPacket::parse(
            &conn_packet(0x0a000001, 0x08080808),
            &program.parser,
            interp.headers(),
        )
        .unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        // Outbound: not dropped, digest carries (remote, inside).
        assert_eq!(pp.get(&sfc_field("drop_flag")).unwrap().raw(), 0);
        let digests = tables.take_digests();
        assert_eq!(digests.len(), 1);
        assert_eq!(digests[0].name, FW_CONN_STREAM);
        let vals: Vec<u128> = digests[0].values.iter().map(|v| v.raw()).collect();
        assert_eq!(vals, vec![0x08080808, 0x0a000001]);
    }

    #[test]
    fn conntrack_inbound_default_deny_until_learned() {
        let nf = conntrack_firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(FW_OUT_TABLE).unwrap(),
                outbound_entry((0x0a000000, 8)),
            )
            .unwrap();
        // Unsolicited inbound: denied.
        let mut pp = ParsedPacket::parse(
            &conn_packet(0x08080808, 0x0a000001),
            &program.parser,
            interp.headers(),
        )
        .unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&sfc_field("drop_flag")).unwrap().raw(), 1);
        // Learn the connection (as the control plane would from the digest).
        tables
            .install(
                program.tables.get(FW_CONN_TABLE).unwrap(),
                conn_entry(0x08080808, 0x0a000001),
            )
            .unwrap();
        let mut pp = ParsedPacket::parse(
            &conn_packet(0x08080808, 0x0a000001),
            &program.parser,
            interp.headers(),
        )
        .unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&sfc_field("drop_flag")).unwrap().raw(), 0);
    }

    #[test]
    fn conntrack_learn_policy_builds_conn_entry() {
        let mut policy = conntrack_learn_policy();
        let resp = policy.on_digest(0, &[Value::new(0x08080808, 32), Value::new(0x0a000001, 32)]);
        assert_eq!(resp.install.len(), 1);
        let (nf, table, entry) = &resp.install[0];
        assert_eq!(nf, "firewall");
        assert_eq!(table, FW_CONN_TABLE);
        assert_eq!(entry, &conn_entry(0x08080808, 0x0a000001));
        assert!(policy.on_digest(0, &[Value::new(1, 32)]).install.is_empty());
    }

    #[test]
    fn port_range_respected() {
        let nf = firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(ACL_TABLE).unwrap(),
                deny_entry((0, 0), (0, 0), None, (1000, 2000), 1),
            )
            .unwrap();
        for (port, denied) in [(999u16, false), (1000, true), (2000, true), (2001, false)] {
            let mut pp =
                ParsedPacket::parse(&tcp_packet(port), &program.parser, interp.headers()).unwrap();
            pp.add_header(&sfc_header_type(), Some("ipv4"));
            let mut meta = BTreeMap::new();
            interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
            assert_eq!(
                pp.get(&sfc_field("drop_flag")).unwrap().raw() == 1,
                denied,
                "port {port}"
            );
        }
    }
}
