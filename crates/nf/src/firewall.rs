//! The packet-filtering firewall.
//!
//! A stateless 5-tuple ACL. Entries match (source prefix, destination
//! prefix, protocol, destination port range); the verdict is `permit`
//! (continue along the chain) or `deny` — which, per the Dejavu API,
//! requests the drop through `sfc.drop_flag` rather than touching platform
//! metadata. The framework's `check_sfcFlags` stage translates the flag
//! after the NF returns.

use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The firewall's ACL table name.
pub const ACL_TABLE: &str = "acl";

/// Builds the firewall NF.
pub fn firewall() -> NfModule {
    let program = ProgramBuilder::new("firewall")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(ActionBuilder::new("permit").build())
        .action(
            ActionBuilder::new("deny")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(ACL_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .key_lpm(fref("ipv4", "dst_addr"))
                .key_ternary(fref("ipv4", "protocol"))
                .key_range(fref("tcp", "dst_port"))
                .action("deny")
                .default_action("permit")
                .size(8192)
                .build(),
        )
        .control(ControlBuilder::new("fw_ctrl").apply(ACL_TABLE).build())
        .entry("fw_ctrl")
        .build()
        .expect("firewall program is well-formed");
    NfModule::new(program).expect("firewall conforms to the NF API")
}

/// A deny rule: drop traffic from `src_prefix` to `dst_prefix` with the
/// given protocol (`None` = any) and destination-port range.
pub fn deny_entry(
    src_prefix: (u32, u16),
    dst_prefix: (u32, u16),
    protocol: Option<u8>,
    port_range: (u16, u16),
    priority: i32,
) -> TableEntry {
    TableEntry {
        matches: vec![
            KeyMatch::Lpm(Value::new(u128::from(src_prefix.0), 32), src_prefix.1),
            KeyMatch::Lpm(Value::new(u128::from(dst_prefix.0), 32), dst_prefix.1),
            match protocol {
                Some(p) => KeyMatch::Ternary(Value::new(u128::from(p), 8), Value::new(0xff, 8)),
                None => KeyMatch::Any,
            },
            KeyMatch::Range(
                Value::new(u128::from(port_range.0), 16),
                Value::new(u128::from(port_range.1), 16),
            ),
        ],
        action: "deny".into(),
        action_args: vec![],
        priority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    fn tcp_packet(dst_port: u16) -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[22] = 64;
        p[23] = 6;
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p[30..34].copy_from_slice(&[192, 168, 1, 1]);
        p[36..38].copy_from_slice(&dst_port.to_be_bytes());
        p
    }

    fn run(entry: Option<TableEntry>, pkt: &[u8]) -> ParsedPacket {
        let nf = firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        if let Some(e) = entry {
            tables
                .install(program.tables.get(ACL_TABLE).unwrap(), e)
                .unwrap();
        }
        let mut pp = ParsedPacket::parse(pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        pp
    }

    #[test]
    fn default_permits() {
        let pp = run(None, &tcp_packet(80));
        // No SFC header on the raw packet → flag write is a no-op; the
        // important part is that nothing marked it for drop.
        assert!(!pp.is_valid("sfc"));
    }

    #[test]
    fn deny_rule_sets_sfc_drop_flag() {
        // Build an SFC-encapsulated packet so the flag has somewhere to go.
        let nf = firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(ACL_TABLE).unwrap(),
                deny_entry((0x0a000000, 8), (0, 0), Some(6), (0, 1023), 10),
            )
            .unwrap();
        let mut pp =
            ParsedPacket::parse(&tcp_packet(80), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&sfc_field("drop_flag")).unwrap().raw(), 1);
        // Platform metadata untouched by the NF itself.
        assert!(!meta.contains_key("drop_flag"));
    }

    #[test]
    fn port_range_respected() {
        let nf = firewall();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(ACL_TABLE).unwrap(),
                deny_entry((0, 0), (0, 0), None, (1000, 2000), 1),
            )
            .unwrap();
        for (port, denied) in [(999u16, false), (1000, true), (2000, true), (2001, false)] {
            let mut pp =
                ParsedPacket::parse(&tcp_packet(port), &program.parser, interp.headers()).unwrap();
            pp.add_header(&sfc_header_type(), Some("ipv4"));
            let mut meta = BTreeMap::new();
            interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
            assert_eq!(
                pp.get(&sfc_field("drop_flag")).unwrap().raw() == 1,
                denied,
                "port {port}"
            );
        }
    }
}
