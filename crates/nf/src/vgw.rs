//! The virtualization gateway.
//!
//! Maps tenant traffic to its virtual network: a destination-prefix lookup
//! yields the virtual network identifier (VNI), which the gateway records
//! in the SFC context (key [`dejavu_core::sfc::ctx_keys::VNI`]) so
//! downstream NFs and the eventual off-chain VTEP can act on it; the
//! gateway can also rewrite the destination to the tenant's internal
//! address space (a one-to-one static mapping — the common edge-cloud
//! "elastic IP" translation).

use dejavu_core::sfc::{ctx_keys, sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The VNI-mapping table name.
pub const VNI_TABLE: &str = "vni_map";

/// Builds the virtualization gateway NF.
pub fn vgw() -> NfModule {
    let program = ProgramBuilder::new("vgw")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("set_vni")
                .param("vni", 16)
                .set(
                    sfc_field("ctx_key1"),
                    Expr::val(u128::from(ctx_keys::VNI), 8),
                )
                .set(sfc_field("ctx_val1"), Expr::Param("vni".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("set_vni_and_translate")
                .param("vni", 16)
                .param("internal_ip", 32)
                .set(
                    sfc_field("ctx_key1"),
                    Expr::val(u128::from(ctx_keys::VNI), 8),
                )
                .set(sfc_field("ctx_val1"), Expr::Param("vni".into()))
                .set(fref("ipv4", "dst_addr"), Expr::Param("internal_ip".into()))
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new(VNI_TABLE)
                .key_lpm(fref("ipv4", "dst_addr"))
                .action("set_vni")
                .action("set_vni_and_translate")
                .default_action("pass")
                .size(16384)
                .build(),
        )
        .control(ControlBuilder::new("vgw_ctrl").apply(VNI_TABLE).build())
        .entry("vgw_ctrl")
        .build()
        .expect("vgw program is well-formed");
    NfModule::new(program).expect("vgw conforms to the NF API")
}

/// Entry: destinations under `dst_prefix` belong to `vni`.
pub fn vni_entry(dst_prefix: (u32, u16), vni: u16) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(dst_prefix.0), 32),
            dst_prefix.1,
        )],
        action: "set_vni".into(),
        action_args: vec![Value::new(u128::from(vni), 16)],
        priority: 0,
    }
}

/// Entry: destinations under `dst_prefix` belong to `vni` and translate to
/// `internal_ip`.
pub fn vni_translate_entry(dst_prefix: (u32, u16), vni: u16, internal_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(dst_prefix.0), 32),
            dst_prefix.1,
        )],
        action: "set_vni_and_translate".into(),
        action_args: vec![
            Value::new(u128::from(vni), 16),
            Value::new(u128::from(internal_ip), 32),
        ],
        priority: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use dejavu_core::sfc::SfcHeader;
    use std::collections::BTreeMap;

    fn packet() -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[23] = 6;
        p[30..34].copy_from_slice(&[198, 51, 100, 7]);
        p
    }

    fn run_with(entry: TableEntry) -> ParsedPacket {
        let nf = vgw();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(program.tables.get(VNI_TABLE).unwrap(), entry)
            .unwrap();
        let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        pp
    }

    #[test]
    fn vni_recorded_in_sfc_context() {
        let pp = run_with(vni_entry((0xc6336400, 24), 77));
        let sfc = SfcHeader::read(&pp).unwrap();
        assert_eq!(sfc.context_get(ctx_keys::VNI), Some(77));
        // Destination untouched.
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0xc6336407);
    }

    #[test]
    fn translation_rewrites_destination() {
        let pp = run_with(vni_translate_entry((0xc6336400, 24), 77, 0x0a640001));
        let sfc = SfcHeader::read(&pp).unwrap();
        assert_eq!(sfc.context_get(ctx_keys::VNI), Some(77));
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0x0a640001);
    }

    #[test]
    fn default_passes() {
        let nf = vgw();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let before = pp.clone();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp, before);
    }
}
