//! VXLAN gateway (extension NF): real tunnel decapsulation.
//!
//! Inbound tenant traffic arrives VXLAN-encapsulated
//! (`eth / ipv4 / udp:4789 / vxlan / inner-eth / inner-ipv4 / …`). The
//! gateway matches the VNI, records it in the SFC context, and strips the
//! outer headers so downstream NFs see the inner packet.
//!
//! This NF exists partly as a parser-merge stress test: its parser walks
//! *two* instances of `ethernet`/`ipv4` at different offsets — exactly the
//! situation the paper's `(header_type, offset)` vertex identity exists to
//! disambiguate ("the same header types appearing in different packet
//! locations are represented by different vertices").

use dejavu_core::sfc::{ctx_keys, sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The VNI termination table.
pub const VNI_TERM_TABLE: &str = "vni_term";

/// Outer-header sizes: eth(14) + ipv4(20) + udp(8) + vxlan(8) = 50 bytes of
/// encapsulation before the inner Ethernet.
pub const OUTER_BYTES: u32 = 50;

/// Builds the VXLAN gateway NF.
///
/// Parser: outer eth@0 → outer ipv4@14 → udp@34 (dst 4789) → vxlan@42 →
/// inner eth@50 → inner ipv4@64. Non-VXLAN traffic is accepted untouched at
/// the UDP level.
pub fn vxlan_gateway() -> NfModule {
    let program = ProgramBuilder::new("vxlan_gw")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(well_known::vxlan())
        .header(sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .node("tcp", "tcp", 34)
                .node("udp", "udp", 34)
                .node("vxlan", "vxlan", 42)
                // Inner headers: same types, different offsets — distinct
                // parser vertices per the paper's tuple identity.
                .node("inner_eth", "ethernet", 50)
                .node("inner_ip", "ipv4", 64)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .select("ip", "protocol", 8, vec![(6, "tcp"), (17, "udp")])
                .accept("tcp")
                .select("udp", "dst_port", 16, vec![(4789, "vxlan")])
                .goto("vxlan", "inner_eth")
                .select("inner_eth", "ether_type", 16, vec![(0x0800, "inner_ip")])
                .accept("inner_ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("terminate")
                .param("tenant", 16)
                // Record the VNI (low 16 bits) + tenant in the SFC context.
                .set(
                    sfc_field("ctx_key1"),
                    Expr::val(u128::from(ctx_keys::VNI), 8),
                )
                .set(
                    sfc_field("ctx_val1"),
                    Expr::And(
                        Box::new(Expr::field("vxlan", "vni")),
                        Box::new(Expr::val(0xFFFF, 24)),
                    ),
                )
                .set(
                    sfc_field("ctx_key2"),
                    Expr::val(u128::from(ctx_keys::TENANT_ID), 8),
                )
                .set(sfc_field("ctx_val2"), Expr::Param("tenant".into()))
                // Strip the tunnel: the outer IPv4/UDP/VXLAN go (first
                // instances), plus the *inner* Ethernet (occurrence 1 once
                // the outers are gone) — the gateway keeps its own outer
                // MAC framing, so the wire stays a valid eth/[sfc]/ipv4
                // frame and the SFC header survives the decap.
                .remove_header("ipv4")
                .remove_header("udp")
                .remove_header("vxlan")
                .remove_header_nth("ethernet", 1)
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new(VNI_TERM_TABLE)
                .key_exact(fref("vxlan", "vni"))
                .action("terminate")
                .default_action("pass")
                .size(16384)
                .build(),
        )
        .control(
            ControlBuilder::new("vxlan_ctrl")
                .stmt(dejavu_p4ir::Stmt::If {
                    cond: dejavu_p4ir::BoolExpr::Valid("vxlan".into()),
                    then_branch: vec![dejavu_p4ir::Stmt::Apply(VNI_TERM_TABLE.into())],
                    else_branch: vec![],
                })
                .build(),
        )
        .entry("vxlan_ctrl")
        .build()
        .expect("vxlan gateway program is well-formed");
    NfModule::new(program).expect("vxlan gateway conforms to the NF API")
}

/// Entry: terminate `vni` for `tenant`.
pub fn terminate_entry(vni: u32, tenant: u16) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Exact(Value::new(u128::from(vni), 24))],
        action: "terminate".into(),
        action_args: vec![Value::new(u128::from(tenant), 16)],
        priority: 0,
    }
}

/// Builds a VXLAN-encapsulated packet: outer eth/ipv4/udp(4789)/vxlan
/// around `inner` (which must start with an Ethernet header).
pub fn encapsulate(inner: &[u8], vni: u32, outer_src: u32, outer_dst: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(OUTER_BYTES as usize + inner.len());
    // Outer Ethernet.
    p.extend_from_slice(&[0x02, 0, 0, 0, 0, 0xA0]);
    p.extend_from_slice(&[0x02, 0, 0, 0, 0, 0xA1]);
    p.extend_from_slice(&0x0800u16.to_be_bytes());
    // Outer IPv4 (proto UDP).
    let total = 20 + 8 + 8 + inner.len();
    p.push(0x45);
    p.push(0);
    p.extend_from_slice(&(total as u16).to_be_bytes());
    p.extend_from_slice(&[0, 0, 0, 0]);
    p.push(64);
    p.push(17);
    p.extend_from_slice(&[0, 0]);
    p.extend_from_slice(&outer_src.to_be_bytes());
    p.extend_from_slice(&outer_dst.to_be_bytes());
    // UDP to 4789.
    p.extend_from_slice(&54321u16.to_be_bytes());
    p.extend_from_slice(&4789u16.to_be_bytes());
    p.extend_from_slice(&((8 + 8 + inner.len()) as u16).to_be_bytes());
    p.extend_from_slice(&[0, 0]);
    // VXLAN (I flag set, VNI).
    p.push(0x08);
    p.extend_from_slice(&[0, 0, 0]);
    p.extend_from_slice(&vni.to_be_bytes()[1..]);
    p.push(0);
    p.extend_from_slice(inner);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use dejavu_core::sfc::SfcHeader;
    use std::collections::BTreeMap;

    fn inner_packet() -> Vec<u8> {
        let mut p = vec![0u8; 34];
        p[12] = 0x08; // inner eth → ipv4
        p[14] = 0x45;
        p[23] = 6;
        p[26..30].copy_from_slice(&[192, 168, 7, 7]);
        p[30..34].copy_from_slice(&[192, 168, 7, 8]);
        p
    }

    #[test]
    fn parser_walks_both_header_instances() {
        let nf = vxlan_gateway();
        let program = nf.program();
        let pkt = encapsulate(&inner_packet(), 700, 0x0a000001, 0x0a000002);
        let path = program.parser.parse(&program.header_map(), &pkt).unwrap();
        let names: Vec<(String, u32)> = path;
        assert_eq!(
            names,
            vec![
                ("ethernet".to_string(), 0),
                ("ipv4".to_string(), 14),
                ("udp".to_string(), 34),
                ("vxlan".to_string(), 42),
                ("ethernet".to_string(), 50),
                ("ipv4".to_string(), 64),
            ]
        );
    }

    #[test]
    fn decap_strips_outer_stack_and_records_vni() {
        let nf = vxlan_gateway();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(VNI_TERM_TABLE).unwrap(),
                terminate_entry(700, 42),
            )
            .unwrap();
        let pkt = encapsulate(&inner_packet(), 700, 0x0a000001, 0x0a000002);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        // Pre-insert an SFC header after the *outer* eth (as the classifier
        // would have); decap must keep it.
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        let sfc = SfcHeader::read(&pp).unwrap();
        assert_eq!(sfc.context_get(ctx_keys::VNI), Some(700));
        assert_eq!(sfc.context_get(ctx_keys::TENANT_ID), Some(42));
        // Wire-valid result: outer Ethernet framing kept, tunnel gone,
        // inner IPv4 exposed right after the SFC header.
        let types: Vec<&str> = pp.headers.iter().map(|h| h.header_type.as_str()).collect();
        assert_eq!(types, vec!["ethernet", "sfc", "ipv4"]);
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0xc0a80707);
    }

    #[test]
    fn unknown_vni_passes_encapsulated() {
        let nf = vxlan_gateway();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let pkt = encapsulate(&inner_packet(), 999, 1, 2);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let before = pp.headers.len();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.headers.len(), before, "no decap without a VNI entry");
    }

    #[test]
    fn non_vxlan_traffic_untouched() {
        let nf = vxlan_gateway();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        // A plain TCP packet.
        let pkt = dejavu_traffic_free_tcp();
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let before = pp.clone();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp, before);
    }

    /// Local TCP packet builder (nf crate has no dev-dep on dejavu-traffic).
    fn dejavu_traffic_free_tcp() -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[23] = 6;
        p
    }

    #[test]
    fn merges_with_the_standard_suite() {
        // The two-instance parser merges cleanly with the five production
        // NFs' parsers — the tuple-identity stress test.
        let suite = crate::edge_cloud_suite();
        let mut nfs: Vec<&NfModule> = suite.iter().collect();
        let gw = vxlan_gateway();
        nfs.push(&gw);
        let merged = dejavu_core::merge::merge_programs("with_vxlan", &nfs).unwrap();
        // Vertices exist for both ethernet instances (offsets 0 and 50) and
        // their SFC-shifted twins (offset 70 inner eth).
        assert!(merged.global_ids.get("ethernet", 0).is_some());
        assert!(merged.global_ids.get("ethernet", 50).is_some());
        assert!(merged.global_ids.get("ethernet", 70).is_some());
        assert!(merged.global_ids.get("ipv4", 14).is_some());
        assert!(merged.global_ids.get("ipv4", 34).is_some()); // sfc-shifted outer
        assert!(merged.global_ids.get("vxlan", 42).is_some());
    }
}
