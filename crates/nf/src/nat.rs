//! Source NAT (extension NF).
//!
//! Stateless 1:1 source translation: traffic from an internal prefix gets
//! its source address (and optionally source port) rewritten to a public
//! address. Used by the ablation benches to grow chains beyond the paper's
//! five NFs.

use dejavu_core::sfc::sfc_header_type;
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The NAT table name.
pub const NAT_TABLE: &str = "snat";

/// Builds the source-NAT NF.
pub fn nat() -> NfModule {
    let program = ProgramBuilder::new("nat")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("rewrite_src")
                .param("public_ip", 32)
                .set(fref("ipv4", "src_addr"), Expr::Param("public_ip".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("rewrite_src_and_port")
                .param("public_ip", 32)
                .param("public_port", 16)
                .set(fref("ipv4", "src_addr"), Expr::Param("public_ip".into()))
                .set(fref("tcp", "src_port"), Expr::Param("public_port".into()))
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new(NAT_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .action("rewrite_src")
                .action("rewrite_src_and_port")
                .default_action("pass")
                .size(8192)
                .build(),
        )
        .control(ControlBuilder::new("nat_ctrl").apply(NAT_TABLE).build())
        .entry("nat_ctrl")
        .build()
        .expect("nat program is well-formed");
    NfModule::new(program).expect("nat conforms to the NF API")
}

/// Entry: sources under `src_prefix` are rewritten to `public_ip`.
pub fn snat_entry(src_prefix: (u32, u16), public_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(src_prefix.0), 32),
            src_prefix.1,
        )],
        action: "rewrite_src".into(),
        action_args: vec![Value::new(u128::from(public_ip), 32)],
        priority: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    #[test]
    fn source_rewritten() {
        let nf = nat();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(NAT_TABLE).unwrap(),
                snat_entry((0x0a000000, 8), 0xc0a80001),
            )
            .unwrap();
        let mut pkt = vec![0u8; 54];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[26..30].copy_from_slice(&[10, 9, 9, 9]);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0xc0a80001);
    }

    #[test]
    fn non_matching_source_passes() {
        let nf = nat();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(NAT_TABLE).unwrap(),
                snat_entry((0x0a000000, 8), 0xc0a80001),
            )
            .unwrap();
        let mut pkt = vec![0u8; 54];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[26..30].copy_from_slice(&[172, 16, 0, 1]);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0xac100001);
    }
}
