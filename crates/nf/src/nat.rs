//! Source NAT (extension NF) — dynamic flow learning with a static fallback.
//!
//! The primary mode is **dynamic NAT** ([`dynamic_nat`]): the first outbound
//! packet of a flow hits `nat_out`, which emits a [`NAT_FLOW_STREAM`] digest
//! carrying the flow identity *before* rewriting the source address. The
//! control-plane learning loop ([`nat_learn_policy`]) turns each digest into
//! a `nat_in` entry, so return traffic is translated back to the private
//! address entirely in the data plane — no punt, no reinjection. Pair the
//! learned tables with an idle timeout (`Deployment::set_idle_timeout`) to
//! expire quiet flows.
//!
//! The original **static mode** ([`nat`]) remains as a fallback: stateless
//! 1:1 source translation via LPM entries in the `snat` table, with no
//! learned state. It is still what the ablation benches use to grow chains
//! beyond the paper's five NFs.

use dejavu_core::analyze::LearnContract;
use dejavu_core::control_plane::{LearnPolicy, LearnResponse};
use dejavu_core::sfc::sfc_header_type;
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The static-mode NAT table name.
pub const NAT_TABLE: &str = "snat";
/// Dynamic mode: the outbound (learn + rewrite) table name.
pub const NAT_OUT_TABLE: &str = "nat_out";
/// Dynamic mode: the learned return-path table name.
pub const NAT_IN_TABLE: &str = "nat_in";
/// Dynamic mode: the digest stream carrying newly seen outbound flows.
pub const NAT_FLOW_STREAM: &str = "nat_flow";

/// Builds the static (fallback) source-NAT NF: LPM on the source prefix,
/// stateless rewrite, nothing learned.
pub fn nat() -> NfModule {
    let program = ProgramBuilder::new("nat")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("rewrite_src")
                .param("public_ip", 32)
                .set(fref("ipv4", "src_addr"), Expr::Param("public_ip".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("rewrite_src_and_port")
                .param("public_ip", 32)
                .param("public_port", 16)
                .set(fref("ipv4", "src_addr"), Expr::Param("public_ip".into()))
                .set(fref("tcp", "src_port"), Expr::Param("public_port".into()))
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new(NAT_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .action("rewrite_src")
                .action("rewrite_src_and_port")
                .default_action("pass")
                .size(8192)
                .build(),
        )
        .control(ControlBuilder::new("nat_ctrl").apply(NAT_TABLE).build())
        .entry("nat_ctrl")
        .build()
        .expect("nat program is well-formed");
    NfModule::new(program).expect("nat conforms to the NF API")
}

/// Builds the dynamic source-NAT NF.
///
/// * `nat_out` (LPM on `ipv4.src_addr`): internal prefixes map to
///   `learn_and_rewrite(public_ip)`, which digests
///   `(orig_src, tcp.src_port, public_ip)` to [`NAT_FLOW_STREAM`] and then
///   rewrites the source to the public address.
/// * `nat_in` (exact on `ipv4.dst_addr` + `tcp.dst_port`): learned return
///   mappings restore the private destination via `restore_dst(private_ip)`.
///
/// `nat_in` is applied before `nat_out` so the outbound rewrite can never
/// shadow a return-path lookup. The digest fires on *every* outbound packet
/// of a matching prefix; the learning loop deduplicates installs, so steady
/// state costs one queue slot per packet and zero table churn.
pub fn dynamic_nat() -> NfModule {
    let program = ProgramBuilder::new("nat")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("learn_and_rewrite")
                .param("public_ip", 32)
                .digest(
                    NAT_FLOW_STREAM,
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("tcp", "src_port"),
                        Expr::Param("public_ip".into()),
                    ],
                )
                .set(fref("ipv4", "src_addr"), Expr::Param("public_ip".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("restore_dst")
                .param("private_ip", 32)
                .set(fref("ipv4", "dst_addr"), Expr::Param("private_ip".into()))
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new(NAT_IN_TABLE)
                .key_exact(fref("ipv4", "dst_addr"))
                .key_exact(fref("tcp", "dst_port"))
                .action("restore_dst")
                .default_action("pass")
                .size(65536)
                .build(),
        )
        .table(
            TableBuilder::new(NAT_OUT_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .action("learn_and_rewrite")
                .default_action("pass")
                .size(8192)
                .build(),
        )
        .control(
            ControlBuilder::new("nat_ctrl")
                .apply(NAT_IN_TABLE)
                .apply(NAT_OUT_TABLE)
                .build(),
        )
        .entry("nat_ctrl")
        .build()
        .expect("dynamic nat program is well-formed");
    NfModule::new(program).expect("dynamic nat conforms to the NF API")
}

/// Static mode: sources under `src_prefix` are rewritten to `public_ip`.
pub fn snat_entry(src_prefix: (u32, u16), public_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(src_prefix.0), 32),
            src_prefix.1,
        )],
        action: "rewrite_src".into(),
        action_args: vec![Value::new(u128::from(public_ip), 32)],
        priority: 0,
    }
}

/// Dynamic mode: sources under `src_prefix` are learned and rewritten to
/// `public_ip` (goes in [`NAT_OUT_TABLE`]).
pub fn nat_out_entry(src_prefix: (u32, u16), public_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(src_prefix.0), 32),
            src_prefix.1,
        )],
        action: "learn_and_rewrite".into(),
        action_args: vec![Value::new(u128::from(public_ip), 32)],
        priority: 0,
    }
}

/// Dynamic mode: the learned return-path entry — traffic to
/// `(public_ip, port)` gets its destination restored to `private_ip` (goes
/// in [`NAT_IN_TABLE`]).
pub fn nat_return_entry(public_ip: u32, port: u16, private_ip: u32) -> TableEntry {
    TableEntry {
        matches: vec![
            KeyMatch::Exact(Value::new(u128::from(public_ip), 32)),
            KeyMatch::Exact(Value::new(u128::from(port), 16)),
        ],
        action: "restore_dst".into(),
        action_args: vec![Value::new(u128::from(private_ip), 32)],
        priority: 0,
    }
}

/// The learning policy for [`NAT_FLOW_STREAM`]: each digest
/// `(orig_src, src_port, public_ip)` becomes a [`NAT_IN_TABLE`] entry
/// mapping `(public_ip, src_port)` back to the private source. Register it
/// with `ControlPlane::register_learn_policy("nat", NAT_FLOW_STREAM, ...)`.
pub fn nat_learn_policy() -> Box<dyn LearnPolicy> {
    Box::new(|_pipeline: usize, values: &[Value]| {
        let mut resp = LearnResponse::default();
        if let [orig_src, src_port, public_ip] = values {
            resp.install.push((
                "nat".to_string(),
                NAT_IN_TABLE.to_string(),
                nat_return_entry(
                    public_ip.raw() as u32,
                    src_port.raw() as u16,
                    orig_src.raw() as u32,
                ),
            ));
        }
        resp
    })
}

/// The declared learn contract matching [`nat_learn_policy`]: the
/// `(orig_src, src_port, public_ip)` digest installs `(public_ip,
/// src_port)` as the [`NAT_IN_TABLE`] key and binds `orig_src` to
/// `restore_dst(private_ip)`. Verified against [`dynamic_nat`] by
/// `dejavu_core::analyze::check_learn_contracts`.
pub fn nat_learn_contract() -> LearnContract {
    LearnContract {
        nf: "nat".into(),
        stream: NAT_FLOW_STREAM.into(),
        target_table: NAT_IN_TABLE.into(),
        target_action: "restore_dst".into(),
        key_map: vec![2, 1],
        arg_map: vec![0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    #[test]
    fn source_rewritten() {
        let nf = nat();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(NAT_TABLE).unwrap(),
                snat_entry((0x0a000000, 8), 0xc0a80001),
            )
            .unwrap();
        let mut pkt = vec![0u8; 54];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[26..30].copy_from_slice(&[10, 9, 9, 9]);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0xc0a80001);
    }

    #[test]
    fn non_matching_source_passes() {
        let nf = nat();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(NAT_TABLE).unwrap(),
                snat_entry((0x0a000000, 8), 0xc0a80001),
            )
            .unwrap();
        let mut pkt = vec![0u8; 54];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[26..30].copy_from_slice(&[172, 16, 0, 1]);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0xac100001);
    }

    fn tcp_packet(src: u32, dst: u32, sport: u16, dport: u16) -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[23] = 6;
        p[26..30].copy_from_slice(&src.to_be_bytes());
        p[30..34].copy_from_slice(&dst.to_be_bytes());
        p[34..36].copy_from_slice(&sport.to_be_bytes());
        p[36..38].copy_from_slice(&dport.to_be_bytes());
        p
    }

    #[test]
    fn outbound_digests_then_rewrites() {
        let nf = dynamic_nat();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(NAT_OUT_TABLE).unwrap(),
                nat_out_entry((0x0a000000, 8), 0xc0a80001),
            )
            .unwrap();
        let pkt = tcp_packet(0x0a000005, 0x08080808, 40000, 443);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        // Source rewritten to the public address.
        assert_eq!(pp.get(&fref("ipv4", "src_addr")).unwrap().raw(), 0xc0a80001);
        // Digest carries the *original* source, the port, and the public IP.
        let digests = tables.take_digests();
        assert_eq!(digests.len(), 1);
        assert_eq!(digests[0].name, NAT_FLOW_STREAM);
        let vals: Vec<u128> = digests[0].values.iter().map(|v| v.raw()).collect();
        assert_eq!(vals, vec![0x0a000005, 40000, 0xc0a80001]);
    }

    #[test]
    fn learned_return_path_translates_back() {
        let nf = dynamic_nat();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(NAT_IN_TABLE).unwrap(),
                nat_return_entry(0xc0a80001, 40000, 0x0a000005),
            )
            .unwrap();
        // Return traffic: server → (public_ip, orig src_port).
        let pkt = tcp_packet(0x08080808, 0xc0a80001, 443, 40000);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(pp.get(&fref("ipv4", "dst_addr")).unwrap().raw(), 0x0a000005);
        // No digest on the return path (nat_out missed).
        assert!(tables.take_digests().is_empty());
    }

    #[test]
    fn learn_policy_builds_return_entry() {
        let mut policy = nat_learn_policy();
        let resp = policy.on_digest(
            0,
            &[
                Value::new(0x0a000005, 32),
                Value::new(40000, 16),
                Value::new(0xc0a80001, 32),
            ],
        );
        assert_eq!(resp.install.len(), 1);
        let (nf, table, entry) = &resp.install[0];
        assert_eq!(nf, "nat");
        assert_eq!(table, NAT_IN_TABLE);
        assert_eq!(entry, &nat_return_entry(0xc0a80001, 40000, 0x0a000005));
        // Malformed digests install nothing.
        assert!(policy.on_digest(0, &[]).install.is_empty());
    }
}
