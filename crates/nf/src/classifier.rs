//! The traffic classifier — the chain entry point (framework-supplied).
//!
//! "It [the SFC header] is added by the Classifier module" (§3). The
//! classifier matches incoming raw traffic against tenant policy (source
//! prefix, destination prefix, protocol) and, on a hit, inserts the SFC
//! header between Ethernet and IP, records the physical ingress port and a
//! tenant ID in the header, assigns the service path, and sets the service
//! index to 1 (hop 0 — the classifier itself — is done). Unclassified
//! traffic goes to the control plane.
//!
//! The classifier is privileged ([`dejavu_core::NfModule::new_privileged`]):
//! it reads `meta.ingress_port` to populate `sfc.in_port`, which ordinary
//! NFs may not.

use dejavu_core::sfc::{ctx_keys, sfc_field, sfc_header_type, SFC_ETHERTYPE, SFC_PORT_UNSET};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, FieldRef, Value};

/// The classifier's table name (NF-local; the control plane translates).
pub const CLASSIFY_TABLE: &str = "classify";

/// Builds the classifier NF.
pub fn classifier() -> NfModule {
    let program = ProgramBuilder::new("classifier")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("set_path")
                .param("path_id", 16)
                .param("tenant", 16)
                .add_header("sfc", Some("ipv4"))
                .set(
                    fref("ethernet", "ether_type"),
                    Expr::val(u128::from(SFC_ETHERTYPE), 16),
                )
                .set(sfc_field("path_id"), Expr::Param("path_id".into()))
                .set(sfc_field("service_index"), Expr::val(1, 8))
                // Platform port IDs fit the 13-bit SFC mirror field; the
                // mask makes the narrowing explicit.
                .set(
                    sfc_field("in_port"),
                    Expr::And(
                        Box::new(Expr::meta("ingress_port")),
                        Box::new(Expr::val(0x1FFF, 16)),
                    ),
                )
                .set(
                    sfc_field("out_port"),
                    Expr::val(u128::from(SFC_PORT_UNSET), 13),
                )
                .set(
                    sfc_field("ctx_key0"),
                    Expr::val(u128::from(ctx_keys::TENANT_ID), 8),
                )
                .set(sfc_field("ctx_val0"), Expr::Param("tenant".into()))
                .set(
                    sfc_field("next_protocol"),
                    Expr::val(u128::from(dejavu_core::sfc::NEXT_PROTO_IPV4), 8),
                )
                .build(),
        )
        .action(
            // Unclassified traffic: punt (privileged direct flag write — no
            // SFC header exists yet to carry the request).
            ActionBuilder::new("punt")
                .set(FieldRef::meta("to_cpu_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(CLASSIFY_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .key_lpm(fref("ipv4", "dst_addr"))
                .key_ternary(fref("ipv4", "protocol"))
                .action("set_path")
                .default_action("punt")
                .size(4096)
                .build(),
        )
        .control(
            ControlBuilder::new("classifier_ctrl")
                .apply(CLASSIFY_TABLE)
                .build(),
        )
        .entry("classifier_ctrl")
        .build()
        .expect("classifier program is well-formed");
    NfModule::new_privileged(program).expect("classifier conforms to the privileged API")
}

/// Builds a classification entry: traffic from `src_prefix` to `dst_prefix`
/// (any protocol) joins `path_id` as `tenant`.
pub fn classify_entry(
    src_prefix: (u32, u16),
    dst_prefix: (u32, u16),
    path_id: u16,
    tenant: u16,
) -> TableEntry {
    TableEntry {
        matches: vec![
            KeyMatch::Lpm(Value::new(u128::from(src_prefix.0), 32), src_prefix.1),
            KeyMatch::Lpm(Value::new(u128::from(dst_prefix.0), 32), dst_prefix.1),
            KeyMatch::Any,
        ],
        action: "set_path".into(),
        action_args: vec![
            Value::new(u128::from(path_id), 16),
            Value::new(u128::from(tenant), 16),
        ],
        priority: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use dejavu_core::sfc::SfcHeader;
    use std::collections::BTreeMap;

    fn tcp_packet() -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[22] = 64;
        p[23] = 6;
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p[30..34].copy_from_slice(&[203, 0, 113, 80]);
        p
    }

    #[test]
    fn classifies_and_encapsulates() {
        let nf = classifier();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(CLASSIFY_TABLE).unwrap(),
                classify_entry((0x0a000000, 8), (0, 0), 7, 42),
            )
            .unwrap();
        let mut pp = ParsedPacket::parse(&tcp_packet(), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        meta.insert("ingress_port".to_string(), Value::new(5, 16));
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        let sfc = SfcHeader::read(&pp).expect("sfc header inserted");
        assert_eq!(sfc.path_id, 7);
        assert_eq!(sfc.service_index, 1);
        assert_eq!(sfc.in_port, 5);
        assert_eq!(sfc.out_port, SFC_PORT_UNSET);
        assert_eq!(sfc.context_get(ctx_keys::TENANT_ID), Some(42));
        // EtherType switched to the SFC value.
        assert_eq!(
            pp.get(&fref("ethernet", "ether_type")).unwrap().raw(),
            u128::from(SFC_ETHERTYPE)
        );
        // Wire grows by exactly the 20-byte header.
        assert_eq!(pp.deparse(interp.headers()).unwrap().len(), 54 + 20);
    }

    #[test]
    fn unclassified_traffic_punts() {
        let nf = classifier();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let mut pp = ParsedPacket::parse(&tcp_packet(), &program.parser, interp.headers()).unwrap();
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(meta["to_cpu_flag"].raw(), 1);
        assert!(!pp.is_valid("sfc"));
    }
}
