//! The IP router — the chain exit point.
//!
//! Longest-prefix routes decide the physical output port and next-hop MAC.
//! Per the Dejavu API the router never touches `meta.egress_spec` directly:
//! it writes the port into `sfc.out_port`, and the framework's branching
//! table forwards to it once the chain completes ("If the outPort of a
//! packet is already set, the branching table will directly forward the
//! packet to the port"). TTL is decremented and MACs rewritten as a real
//! router would. Unroutable packets are dropped via `sfc.drop_flag`.

use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The routing table name.
pub const ROUTES_TABLE: &str = "routes";

/// Builds the router NF.
pub fn router() -> NfModule {
    let program = ProgramBuilder::new("router")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("route")
                .param("port", 13)
                .param("dmac", 48)
                .param("smac", 48)
                .set(sfc_field("out_port"), Expr::Param("port".into()))
                .set(fref("ethernet", "dst_mac"), Expr::Param("dmac".into()))
                .set(fref("ethernet", "src_mac"), Expr::Param("smac".into()))
                .set(
                    fref("ipv4", "ttl"),
                    Expr::Sub(
                        Box::new(Expr::field("ipv4", "ttl")),
                        Box::new(Expr::val(1, 8)),
                    ),
                )
                .update_checksum("ipv4")
                .build(),
        )
        .action(
            ActionBuilder::new("unroutable")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(ROUTES_TABLE)
                .key_lpm(fref("ipv4", "dst_addr"))
                .action("route")
                .default_action("unroutable")
                .size(32768)
                .build(),
        )
        .control(
            ControlBuilder::new("router_ctrl")
                .apply(ROUTES_TABLE)
                .build(),
        )
        .entry("router_ctrl")
        .build()
        .expect("router program is well-formed");
    NfModule::new(program).expect("router conforms to the NF API")
}

/// Entry: route `dst_prefix` out `port` with the given next-hop MACs.
pub fn route_entry(dst_prefix: (u32, u16), port: u16, dmac: u64, smac: u64) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(dst_prefix.0), 32),
            dst_prefix.1,
        )],
        action: "route".into(),
        action_args: vec![
            Value::new(u128::from(port), 13),
            Value::new(u128::from(dmac), 48),
            Value::new(u128::from(smac), 48),
        ],
        priority: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use dejavu_core::sfc::SfcHeader;
    use std::collections::BTreeMap;

    fn packet() -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[14] = 0x45;
        p[22] = 64;
        p[23] = 6;
        p[30..34].copy_from_slice(&[10, 1, 2, 3]);
        p
    }

    fn run(entry: Option<TableEntry>) -> ParsedPacket {
        let nf = router();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        if let Some(e) = entry {
            tables
                .install(program.tables.get(ROUTES_TABLE).unwrap(), e)
                .unwrap();
        }
        let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        pp
    }

    #[test]
    fn route_sets_out_port_macs_ttl() {
        let pp = run(Some(route_entry(
            (0x0a000000, 8),
            17,
            0xaabbccddeeff,
            0x102030405060,
        )));
        let sfc = SfcHeader::read(&pp).unwrap();
        assert_eq!(sfc.out_port, 17);
        assert!(!sfc.drop_flag);
        assert_eq!(
            pp.get(&fref("ethernet", "dst_mac")).unwrap().raw(),
            0xaabbccddeeff
        );
        assert_eq!(
            pp.get(&fref("ethernet", "src_mac")).unwrap().raw(),
            0x102030405060
        );
        assert_eq!(pp.get(&fref("ipv4", "ttl")).unwrap().raw(), 63);
        // The checksum extern left a valid header behind.
        let bytes = pp
            .deparse(Interpreter::new(router().program()).headers())
            .unwrap();
        let ip_off = 34; // eth(14) + sfc(20)
        let ip = &bytes[ip_off..ip_off + 20];
        assert_eq!(dejavu_asic::interp::ones_complement_checksum(ip), 0);
    }

    #[test]
    fn unroutable_drops() {
        let pp = run(None);
        let sfc = SfcHeader::read(&pp).unwrap();
        assert!(sfc.drop_flag);
    }

    #[test]
    fn longest_prefix_wins() {
        let nf = router();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        let def = program.tables.get(ROUTES_TABLE).unwrap();
        tables
            .install(def, route_entry((0x0a000000, 8), 1, 0, 0))
            .unwrap();
        tables
            .install(def, route_entry((0x0a010000, 16), 2, 0, 0))
            .unwrap();
        let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        pp.set(&fref("ipv4", "dst_addr"), Value::new(0x0a010203, 32));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        assert_eq!(SfcHeader::read(&pp).unwrap().out_port, 2);
    }
}
