//! The null NF: framework-overhead measurement probe.
//!
//! An NF whose control block does nothing. Deploying N null NFs isolates
//! the Dejavu framework's own resource consumption — exactly what the
//! paper's Table 1 reports ("due to the simple logic and bare-minimum
//! table sizes, we observe negligible overheads for other types of
//! resources").

use dejavu_core::sfc::sfc_header_type;
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::well_known;

/// Builds a do-nothing NF with the given name.
pub fn null_nf(name: &str) -> NfModule {
    let program = ProgramBuilder::new(name)
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(ActionBuilder::new("noop").build())
        .control(ControlBuilder::new("null_ctrl").invoke("noop").build())
        .entry("null_ctrl")
        .build()
        .expect("null NF is well-formed");
    NfModule::new(program).expect("null NF conforms to the NF API")
}

#[cfg(test)]
mod tests {
    #[test]
    fn null_nf_builds_with_any_name() {
        for name in ["A", "B", "probe_1"] {
            let nf = super::null_nf(name);
            assert_eq!(nf.name(), name);
            assert!(nf.program().tables.is_empty());
        }
    }
}
