//! Mirror tap (extension NF).
//!
//! Flags matched flows for mirroring via `sfc.mirror_flag` — the SFC header
//! carries the request to the framework's flag-translation stage, which
//! sets the platform mirror metadata. Used for the "debugging info along a
//! service path" scenario the paper's context header motivates.

use dejavu_core::sfc::{ctx_keys, sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, Value};

/// The tap-selection table name.
pub const TAP_TABLE: &str = "tap_select";

/// Builds the mirror-tap NF.
pub fn mirror_tap() -> NfModule {
    let program = ProgramBuilder::new("mirror_tap")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("tap")
                .param("debug_tag", 16)
                .set(sfc_field("mirror_flag"), Expr::val(1, 1))
                .set(
                    sfc_field("ctx_key2"),
                    Expr::val(u128::from(ctx_keys::DEBUG), 8),
                )
                .set(sfc_field("ctx_val2"), Expr::Param("debug_tag".into()))
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new(TAP_TABLE)
                .key_ternary(fref("ipv4", "src_addr"))
                .key_ternary(fref("ipv4", "dst_addr"))
                .action("tap")
                .default_action("pass")
                .size(1024)
                .build(),
        )
        .control(ControlBuilder::new("tap_ctrl").apply(TAP_TABLE).build())
        .entry("tap_ctrl")
        .build()
        .expect("mirror_tap program is well-formed");
    NfModule::new(program).expect("mirror_tap conforms to the NF API")
}

/// Entry: mirror traffic between the two hosts, tagging it `debug_tag`.
pub fn tap_entry(src: u32, dst: u32, debug_tag: u16) -> TableEntry {
    TableEntry {
        matches: vec![
            KeyMatch::Ternary(Value::new(u128::from(src), 32), Value::new(0xffff_ffff, 32)),
            KeyMatch::Ternary(Value::new(u128::from(dst), 32), Value::new(0xffff_ffff, 32)),
        ],
        action: "tap".into(),
        action_args: vec![Value::new(u128::from(debug_tag), 16)],
        priority: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use dejavu_core::sfc::SfcHeader;
    use std::collections::BTreeMap;

    #[test]
    fn tap_flags_and_tags() {
        let nf = mirror_tap();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(TAP_TABLE).unwrap(),
                tap_entry(0x0a000001, 0x0a000002, 0xbeef),
            )
            .unwrap();
        let mut pkt = vec![0u8; 54];
        pkt[12] = 0x08;
        pkt[23] = 6;
        pkt[26..30].copy_from_slice(&[10, 0, 0, 1]);
        pkt[30..34].copy_from_slice(&[10, 0, 0, 2]);
        let mut pp = ParsedPacket::parse(&pkt, &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
        let sfc = SfcHeader::read(&pp).unwrap();
        assert!(sfc.mirror_flag);
        assert_eq!(sfc.context_get(ctx_keys::DEBUG), Some(0xbeef));
    }
}
