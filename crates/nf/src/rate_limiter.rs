//! Rate limiter (extension NF, stateful).
//!
//! A per-class packet budget enforced with a stateful register array — the
//! kind of NF that motivates the paper's note that "optimizations that can
//! best leverage the on-chip hardware resource to implement more advanced
//! NFs … are still active research directions". Each class (selected by
//! source prefix) owns a counter cell; a packet increments its class's cell
//! and is dropped once the count exceeds the configured budget. The control
//! plane resets the cells every epoch (`Switch::register_store`), turning
//! the counter into a classic fixed-window rate limit.

use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::control::{BoolExpr, CmpOp, Stmt};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, FieldRef, Value};

/// The class-selection table name.
pub const CLASSES_TABLE: &str = "limit_classes";
/// The counter register name.
pub const BUCKET_REGISTER: &str = "bucket";
/// Number of rate classes.
pub const NUM_CLASSES: u32 = 1024;

/// Builds the rate-limiter NF.
pub fn rate_limiter() -> NfModule {
    let program = ProgramBuilder::new("rate_limiter")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .meta_field("rl_count", 32)
        .meta_field("rl_limit", 32)
        .meta_field("rl_enforced", 1)
        .register(BUCKET_REGISTER, 32, NUM_CLASSES)
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("enforce")
                .param("class_idx", 32)
                .param("limit", 32)
                // Read-modify-write the class counter.
                .reg_read(
                    FieldRef::meta("rl_count"),
                    BUCKET_REGISTER,
                    Expr::Param("class_idx".into()),
                )
                .reg_write(
                    BUCKET_REGISTER,
                    Expr::Param("class_idx".into()),
                    Expr::Add(Box::new(Expr::meta("rl_count")), Box::new(Expr::val(1, 32))),
                )
                .set(FieldRef::meta("rl_limit"), Expr::Param("limit".into()))
                .set(FieldRef::meta("rl_enforced"), Expr::val(1, 1))
                .build(),
        )
        .action(ActionBuilder::new("no_limit").build())
        .action(
            ActionBuilder::new("over_limit")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(CLASSES_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .action("enforce")
                .default_action("no_limit")
                .size(NUM_CLASSES)
                .build(),
        )
        .control(
            ControlBuilder::new("rl_ctrl")
                .apply(CLASSES_TABLE)
                .stmt(Stmt::If {
                    cond: BoolExpr::And(
                        Box::new(BoolExpr::meta_eq("rl_enforced", 1, 1)),
                        Box::new(BoolExpr::Cmp(
                            Expr::meta("rl_count"),
                            CmpOp::Ge,
                            Expr::meta("rl_limit"),
                        )),
                    ),
                    then_branch: vec![Stmt::Do("over_limit".into())],
                    else_branch: vec![],
                })
                .build(),
        )
        .entry("rl_ctrl")
        .build()
        .expect("rate limiter program is well-formed");
    NfModule::new(program).expect("rate limiter conforms to the NF API")
}

/// Entry: sources under `src_prefix` map to counter cell `class_idx` with a
/// per-epoch budget of `limit` packets.
pub fn class_entry(src_prefix: (u32, u16), class_idx: u32, limit: u32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Lpm(
            Value::new(u128::from(src_prefix.0), 32),
            src_prefix.1,
        )],
        action: "enforce".into(),
        action_args: vec![
            Value::new(u128::from(class_idx), 32),
            Value::new(u128::from(limit), 32),
        ],
        priority: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    fn packet() -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[23] = 6;
        p[26..30].copy_from_slice(&[10, 0, 0, 1]);
        p
    }

    #[test]
    fn drops_after_budget_exhausted() {
        let nf = rate_limiter();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(CLASSES_TABLE).unwrap(),
                class_entry((0x0a000000, 8), 7, 3),
            )
            .unwrap();
        // Budget 3: packets 1-3 pass (count before increment = 0,1,2),
        // packet 4 onward dropped (count 3 ≥ limit 3).
        for i in 0..6 {
            let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
            pp.add_header(&sfc_header_type(), Some("ipv4"));
            let mut meta = BTreeMap::new();
            interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
            let dropped = pp.get(&sfc_field("drop_flag")).unwrap().raw() == 1;
            assert_eq!(dropped, i >= 3, "packet {i}");
        }
        // The counter kept counting past the budget.
        let def = program.registers.get(BUCKET_REGISTER).unwrap();
        assert_eq!(tables.register_read(def, 7), 6);
    }

    #[test]
    fn unlimited_class_passes() {
        let nf = rate_limiter();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        for _ in 0..10 {
            let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
            pp.add_header(&sfc_header_type(), Some("ipv4"));
            let mut meta = BTreeMap::new();
            interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
            assert_eq!(pp.get(&sfc_field("drop_flag")).unwrap().raw(), 0);
        }
    }

    #[test]
    fn control_plane_reset_restores_budget() {
        let nf = rate_limiter();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(CLASSES_TABLE).unwrap(),
                class_entry((0x0a000000, 8), 1, 1),
            )
            .unwrap();
        let run_one = |tables: &mut TableState| {
            let mut pp = ParsedPacket::parse(&packet(), &program.parser, interp.headers()).unwrap();
            pp.add_header(&sfc_header_type(), Some("ipv4"));
            let mut meta = BTreeMap::new();
            interp.execute(&mut pp, &mut meta, tables).unwrap();
            pp.get(&sfc_field("drop_flag")).unwrap().raw() == 1
        };
        assert!(!run_one(&mut tables)); // first packet passes
        assert!(run_one(&mut tables)); // second dropped
                                       // Epoch reset, as the control plane would do.
        let def = program.registers.get(BUCKET_REGISTER).unwrap();
        tables.register_write(def, 1, 0);
        assert!(!run_one(&mut tables)); // budget restored
    }
}
