//! # dejavu-nf — the network function library
//!
//! The five NFs of the paper's production edge-cloud example (Fig. 2),
//! written against Dejavu's one-argument control-block API
//! (`dejavu_core::NfModule`), plus extension NFs used by the ablation
//! studies:
//!
//! | NF | Module | Paper role |
//! |---|---|---|
//! | Traffic classifier | [`classifier`] | assigns a service path, inserts the SFC header (framework-supplied) |
//! | Packet-filtering firewall | [`firewall`] | 5-tuple ACL, drops via `sfc.drop_flag`; conntrack mode learns established connections via digests |
//! | Virtualization gateway | [`vgw`] | tenant/VNI mapping into SFC context |
//! | L4 load balancer | [`load_balancer`] | Fig. 4 verbatim: CRC32 5-tuple hash, session table, to-CPU on miss; affinity mode pins sessions via digests instead of punting |
//! | IP router | [`router`] | LPM routes, MAC rewrite, TTL, sets `sfc.out_port` |
//! | Source NAT | [`nat`] | extension: dynamic flow-learning NAT (digest → learned return path), static 1:1 fallback |
//! | Mirror tap | [`mirror_tap`] | extension: sets `sfc.mirror_flag` on matched flows |
//! | Rate limiter | [`rate_limiter`] | extension: stateful per-class packet budgets (registers) |
//! | SYN guard | [`syn_guard`] | extension: stateful SYN-flood shield (register sketch) |
//! | VXLAN gateway | [`vxlan_gateway`] | extension: real tunnel decap (two-instance parser) |
//!
//! Every constructor returns a validated [`dejavu_core::NfModule`];
//! entry-builder helpers produce the control-plane table entries each NF
//! understands.
//!
//! One deviation from the paper's prose, recorded in DESIGN.md: the paper
//! says the SFC header "is added by the Classifier module and removed by
//! the Router module". Our Router (like the real one) decides the output
//! port, but the physical removal happens in the framework's `dv_decap`
//! stage on the exit egress pipe — removal in the ingress pipe would blind
//! the branching table that still needs `sfc.path_id`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod firewall;
pub mod load_balancer;
pub mod mirror_tap;
pub mod nat;
pub mod null;
pub mod rate_limiter;
pub mod router;
pub mod syn_guard;
pub mod vgw;
pub mod vxlan_gateway;

pub use null::null_nf;

/// Builds the paper's full Fig. 2 NF suite, keyed by the chain-set names
/// used in `ChainSet::edge_cloud_example()`.
pub fn edge_cloud_suite() -> Vec<dejavu_core::NfModule> {
    vec![
        classifier::classifier(),
        firewall::firewall(),
        vgw::vgw(),
        load_balancer::load_balancer(),
        router::router(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn suite_matches_edge_cloud_chain_names() {
        let suite = super::edge_cloud_suite();
        let names: Vec<&str> = suite.iter().map(|nf| nf.name()).collect();
        assert_eq!(names, vec!["classifier", "firewall", "vgw", "lb", "router"]);
        let chain_names = dejavu_core::ChainSet::edge_cloud_example().all_nfs();
        assert_eq!(names, chain_names);
    }
}
