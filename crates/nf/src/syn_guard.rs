//! SYN guard (extension NF, stateful): a minimal in-network DDoS shield.
//!
//! Counts TCP SYNs per source-address hash in a register sketch; once a
//! bucket exceeds the configured threshold, further SYNs from sources
//! hashing there are dropped until the control plane sweeps the sketch.
//! This is the in-network security pattern the paper cites (Morrison et
//! al., HotCloud'18) as an NF class programmable ASICs enable.

use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_p4ir::action::HashAlgorithm;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::control::{BoolExpr, CmpOp, Stmt};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::well_known;
use dejavu_p4ir::{fref, Expr, FieldRef, Value};

/// The threshold-configuration table name.
pub const CONFIG_TABLE: &str = "guard_config";
/// The SYN-count sketch register.
pub const SKETCH_REGISTER: &str = "syn_sketch";
/// Sketch buckets.
pub const SKETCH_SIZE: u32 = 4096;
/// TCP SYN flag bit.
const TCP_SYN: u128 = 0x02;

/// Builds the SYN-guard NF.
pub fn syn_guard() -> NfModule {
    let program = ProgramBuilder::new("syn_guard")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .meta_field("sg_idx", 32)
        .meta_field("sg_count", 32)
        .meta_field("sg_threshold", 32)
        .meta_field("sg_armed", 1)
        .register(SKETCH_REGISTER, 32, SKETCH_SIZE)
        .parser(well_known::eth_ip_l4_parser())
        .action(
            ActionBuilder::new("arm")
                .param("threshold", 32)
                .set(
                    FieldRef::meta("sg_threshold"),
                    Expr::Param("threshold".into()),
                )
                .set(FieldRef::meta("sg_armed"), Expr::val(1, 1))
                .build(),
        )
        .action(ActionBuilder::new("disarmed").build())
        .action(
            ActionBuilder::new("count_syn")
                .hash(
                    FieldRef::meta("sg_idx"),
                    HashAlgorithm::Crc32,
                    vec![Expr::field("ipv4", "src_addr")],
                )
                .reg_read(
                    FieldRef::meta("sg_count"),
                    SKETCH_REGISTER,
                    Expr::meta("sg_idx"),
                )
                .reg_write(
                    SKETCH_REGISTER,
                    Expr::meta("sg_idx"),
                    Expr::Add(Box::new(Expr::meta("sg_count")), Box::new(Expr::val(1, 32))),
                )
                .build(),
        )
        .action(
            ActionBuilder::new("shield")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(CONFIG_TABLE)
                .key_ternary(fref("ipv4", "dst_addr"))
                .action("arm")
                .default_action("disarmed")
                .size(64)
                .build(),
        )
        .control(
            ControlBuilder::new("sg_ctrl")
                .apply(CONFIG_TABLE)
                .stmt(Stmt::If {
                    // Armed, TCP, SYN set?
                    cond: BoolExpr::And(
                        Box::new(BoolExpr::meta_eq("sg_armed", 1, 1)),
                        Box::new(BoolExpr::And(
                            Box::new(BoolExpr::Valid("tcp".into())),
                            Box::new(BoolExpr::Cmp(
                                Expr::And(
                                    Box::new(Expr::field("tcp", "flags")),
                                    Box::new(Expr::val(TCP_SYN, 8)),
                                ),
                                CmpOp::Ne,
                                Expr::val(0, 8),
                            )),
                        )),
                    ),
                    then_branch: vec![
                        Stmt::Do("count_syn".into()),
                        Stmt::If {
                            cond: BoolExpr::Cmp(
                                Expr::meta("sg_count"),
                                CmpOp::Ge,
                                Expr::meta("sg_threshold"),
                            ),
                            then_branch: vec![Stmt::Do("shield".into())],
                            else_branch: vec![],
                        },
                    ],
                    else_branch: vec![],
                })
                .build(),
        )
        .entry("sg_ctrl")
        .build()
        .expect("syn guard program is well-formed");
    NfModule::new(program).expect("syn guard conforms to the NF API")
}

/// Entry: arm the guard for destinations matching `dst/mask` with the given
/// SYN threshold. Higher `priority` wins among overlapping ternary rules.
pub fn arm_entry_prio(dst: u32, mask: u32, threshold: u32, priority: i32) -> TableEntry {
    TableEntry {
        matches: vec![KeyMatch::Ternary(
            Value::new(u128::from(dst), 32),
            Value::new(u128::from(mask), 32),
        )],
        action: "arm".into(),
        action_args: vec![Value::new(u128::from(threshold), 32)],
        priority,
    }
}

/// [`arm_entry_prio`] at priority 0.
pub fn arm_entry(dst: u32, mask: u32, threshold: u32) -> TableEntry {
    arm_entry_prio(dst, mask, threshold, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_asic::{Interpreter, ParsedPacket, TableState};
    use std::collections::BTreeMap;

    fn syn_packet(src: u32) -> Vec<u8> {
        let mut p = vec![0u8; 54];
        p[12] = 0x08;
        p[23] = 6;
        p[26..30].copy_from_slice(&src.to_be_bytes());
        p[30..34].copy_from_slice(&[198, 51, 100, 80]);
        p[47] = 0x02; // SYN
        p
    }

    fn run(tables: &mut TableState, pkt: &[u8]) -> bool {
        let nf = syn_guard();
        let program = nf.program();
        let interp = Interpreter::new(program);
        let mut pp = ParsedPacket::parse(pkt, &program.parser, interp.headers()).unwrap();
        pp.add_header(&sfc_header_type(), Some("ipv4"));
        let mut meta = BTreeMap::new();
        interp.execute(&mut pp, &mut meta, tables).unwrap();
        pp.get(&sfc_field("drop_flag")).unwrap().raw() == 1
    }

    fn armed_tables(threshold: u32) -> TableState {
        let nf = syn_guard();
        let program = nf.program();
        let mut tables = TableState::new();
        tables
            .install(
                program.tables.get(CONFIG_TABLE).unwrap(),
                arm_entry(0xc6336450, 0xffffffff, threshold),
            )
            .unwrap();
        tables
    }

    #[test]
    fn floods_are_shielded_after_threshold() {
        let mut tables = armed_tables(3);
        for i in 0..6 {
            let dropped = run(&mut tables, &syn_packet(0x0a000001));
            assert_eq!(dropped, i >= 3, "syn {i}");
        }
    }

    #[test]
    fn non_syn_traffic_unaffected() {
        let mut tables = armed_tables(1);
        let mut pkt = syn_packet(0x0a000001);
        pkt[47] = 0x10; // ACK only
        for _ in 0..5 {
            assert!(!run(&mut tables, &pkt));
        }
    }

    #[test]
    fn disarmed_destinations_pass() {
        let nf = syn_guard();
        let program = nf.program();
        let mut tables = TableState::new();
        // Arm a different destination.
        tables
            .install(
                program.tables.get(CONFIG_TABLE).unwrap(),
                arm_entry(0x01020304, 0xffffffff, 1),
            )
            .unwrap();
        for _ in 0..5 {
            assert!(!run(&mut tables, &syn_packet(0x0a000001)));
        }
    }

    #[test]
    fn distinct_sources_use_distinct_buckets() {
        let mut tables = armed_tables(2);
        // Two sources, threshold 2 each: neither trips with one SYN each,
        // then each trips independently on its own third.
        assert!(!run(&mut tables, &syn_packet(1)));
        assert!(!run(&mut tables, &syn_packet(2)));
        assert!(!run(&mut tables, &syn_packet(1)));
        assert!(!run(&mut tables, &syn_packet(2)));
        assert!(run(&mut tables, &syn_packet(1)));
        assert!(run(&mut tables, &syn_packet(2)));
    }
}
