//! Offline stand-in for `serde_json`, paired with the `serde` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::json::Value;

/// Serialization error. The shim's data model is total (every `Serialize`
/// impl produces a `Value`), so this is never actually constructed; it
/// exists to keep `Result`-shaped call sites source-compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json().render(&mut out, 0, false);
    Ok(out)
}

/// Renders `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json().render(&mut out, 0, true);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_rendering_shape() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("2.5"));
        assert!(s.contains("4.0"), "floats keep a decimal point: {s}");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
    }
}
