//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `Throughput`, and `BenchmarkId` with the
//! call signatures the workspace's micro-benchmarks use. Measurement is a
//! simple warm-up + timed-loop mean (no outlier analysis, no plots); the
//! point is that `cargo bench` runs and prints comparable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state (sampling knobs).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&cfg, &id.to_string(), None, f);
        self
    }
}

/// Work-per-iteration annotation for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&self.criterion.clone(), &label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&self.criterion.clone(), &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An identity function the optimizer must assume reads its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F>(cfg: &Criterion, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: grow the iteration count until the warm-up window is spent.
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_up_start.elapsed() >= cfg.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    }

    // Measurement: `sample_size` samples splitting the measurement window.
    let per_sample = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if b.elapsed.as_secs_f64() < per_sample / 2.0 {
            iters = iters.saturating_mul(2).min(1 << 30);
        }
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 * 1e3 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "{label}: median {:.1} ns/iter over {} samples{rate}",
        median,
        samples_ns.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
