//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to draw one value from an RNG. Unlike real
//! proptest there is no shrinking tree — `sample` returns the value
//! directly — but the combinator surface (`any`, ranges, tuples,
//! `prop_map`, `Just`, `Union`, `vec`) matches what the workspace uses.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, u128, usize, bool, f64, f32);

macro_rules! impl_arbitrary_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<$u>() as $t
            }
        }
    )*};
}
impl_arbitrary_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut StdRng) -> ($($t,)+) {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

// Ranges are strategies, e.g. `0u16..(1 << 13)` or `1.0f64..400.0`.
impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($t:ident, $idx:tt)),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!((A, 0));
impl_strategy_tuple!((A, 0), (B, 1));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_strategy_tuple!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);

/// Element count for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `collection::vec(element, size)` — vectors of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = rng_for("ranges_and_tuples_compose");
        let s = (0u16..10, any::<bool>(), 1.0f64..2.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..100 {
            let (a, _, c) = s.sample(&mut rng);
            assert!(a < 10);
            assert!((1.0..2.0).contains(&c));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = rng_for("union_draws_every_arm");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[usize::from(u.sample(&mut rng))] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = rng_for("vec_sizes_respected");
        let s = vec(any::<u8>(), 3..6);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((3..6).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 4usize);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }
}
