//! Test-runner plumbing: configuration, case errors, and the per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Runner configuration. Only `cases` is honoured; other knobs from real
/// proptest are absent because the workspace never sets them.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed test case (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Real proptest distinguishes rejections from failures; the shim
    /// treats both as failures.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic RNG derived from the test name, so every run explores the
/// same case sequence (reproducible failures without persistence files).
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
