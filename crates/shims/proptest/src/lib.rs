//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! subset of proptest the workspace uses: `proptest!` test blocks with an
//! optional `#![proptest_config(..)]`, `any::<T>()`, range strategies,
//! tuple strategies with `prop_map`, `collection::vec`, `Just`,
//! `prop_oneof!`, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its message but not a minimal
//!   counterexample;
//! * no persistence — `*.proptest-regressions` files are ignored;
//! * cases are generated from a fixed per-test seed, so runs are
//!   deterministic and reproducible by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// Everything the workspace's `use proptest::prelude::*;` expects.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod arbitrary {
    pub use crate::strategy::Arbitrary;
}

/// Declares property tests. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a regular `#[test]` that draws `config.cases` random inputs and
/// runs the body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                let ( $( $arg, )* ) = (
                    $( $crate::strategy::Strategy::sample(&$strat, &mut rng), )*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fails the current property-test case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
