//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and the `Rng` methods
//! `gen`, `gen_bool`, `gen_ratio`, and `gen_range` over integer and float
//! ranges. The generator is SplitMix64 — statistically solid for
//! simulation and property-test seeding, deterministic across platforms,
//! and emphatically not cryptographic (neither is the API it replaces).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators. Mirrors `rand::SeedableRng` for the one
/// constructor the workspace calls.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniformly distributed "full-width" sample, standing in for
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut rngs::StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, usize);

impl Standard for u64 {
    fn sample_standard(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u128 {
    fn sample_standard(rng: &mut rngs::StdRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range a value can be drawn from uniformly, standing in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator core.
    fn next_u64(&mut self) -> u64;

    /// Draws a full-width uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::sample_standard(self.as_std_rng())
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample_single(self.as_std_rng())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample_standard(self.as_std_rng()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: AsStdRng,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.as_std_rng().below(u128::from(denominator)) < u64::from(numerator)
    }
}

/// Internal helper so `Rng`'s provided methods can hand concrete state to
/// the distribution traits without `Rng` being generic over itself.
pub trait AsStdRng {
    /// The underlying concrete generator state.
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// Concrete generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Uniform draw in `[0, span)`; `span` must be nonzero and fit u64.
        pub(crate) fn below(&mut self, span: u128) -> u64 {
            debug_assert!(span > 0);
            if span > u128::from(u64::MAX) {
                return self.next_u64();
            }
            let span = span as u64;
            // Rejection sampling to avoid modulo bias.
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u16..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0..4);
            assert!((0..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_ratio_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_ratio(5, 5)));
        assert!((0..100).all(|_| !rng.gen_ratio(0, 5)));
    }

    #[test]
    fn full_width_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u32 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let _: bool = rng.gen();
    }
}
