//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the one shape the workspace uses:
//! non-generic structs with named fields. The macro is written against raw
//! `proc_macro::TokenStream` (no `syn`/`quote` available offline): it scans
//! for `struct <Name> { ... }`, extracts the field names, and emits an
//! `impl serde::Serialize` that builds a `serde::json::Value::Object` in
//! declaration order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a non-generic named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    let mut saw_struct = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => saw_struct = true,
            TokenTree::Ident(id) if saw_struct && name.is_none() => name = Some(id.to_string()),
            TokenTree::Group(g)
                if name.is_some() && body.is_none() && g.delimiter() == Delimiter::Brace =>
            {
                body = Some(g.stream());
            }
            _ => {}
        }
    }
    let name = name.expect("#[derive(Serialize)] expects a struct");
    let body = body.expect("#[derive(Serialize)] shim supports named-field structs only");

    let mut entries = String::new();
    for field in field_names(body) {
        entries.push_str(&format!(
            "({:?}.to_string(), ::serde::Serialize::to_json(&self.{})),",
            field, field
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Walks a brace-group body `vis? name: Type, ...` and returns the field
/// names. Commas inside angle brackets (`BTreeMap<String, f64>`) are not
/// separators; commas inside parens/brackets arrive pre-grouped by the
/// tokenizer and never show up here.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    let mut angle_depth = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                ':' if !in_type => {
                    if let Some(f) = last_ident.take() {
                        fields.push(f);
                    }
                    in_type = true;
                }
                '<' if in_type => angle_depth += 1,
                '>' if in_type => angle_depth -= 1,
                ',' if in_type && angle_depth == 0 => in_type = false,
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}
