//! Offline stand-in for `serde`.
//!
//! The workspace only ever serializes plain result structs to JSON via
//! `serde_json::to_string_pretty`, so instead of the full serde data model
//! this shim defines one trait — [`Serialize`], "convert yourself into a
//! [`json::Value`]" — plus impls for the primitive/container types the
//! bench records use, and re-exports the `#[derive(Serialize)]` macro from
//! the companion `serde_derive` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::Serialize;

/// The shim's minimal JSON data model.
pub mod json {
    /// An owned JSON document. Object keys keep insertion (declaration)
    /// order so rendered reports are stable.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Signed integer number.
        Int(i64),
        /// Unsigned integer number.
        UInt(u64),
        /// Floating-point number.
        Float(f64),
        /// JSON string.
        Str(String),
        /// JSON array.
        Array(Vec<Value>),
        /// JSON object, in insertion order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Renders with `indent` two-space levels of leading context.
        pub fn render(&self, out: &mut String, indent: usize, pretty: bool) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Int(i) => out.push_str(&i.to_string()),
                Value::UInt(u) => out.push_str(&u.to_string()),
                Value::Float(f) => {
                    if f.is_finite() {
                        // Always keep a decimal point so round-trips stay floats.
                        let s = f.to_string();
                        out.push_str(&s);
                        if !s.contains(['.', 'e', 'E']) {
                            out.push_str(".0");
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => escape_into(s, out),
                Value::Array(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent + 1, pretty);
                        item.render(out, indent + 1, pretty);
                    }
                    newline_indent(out, indent, pretty);
                    out.push(']');
                }
                Value::Object(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent + 1, pretty);
                        escape_into(k, out);
                        out.push(':');
                        if pretty {
                            out.push(' ');
                        }
                        v.render(out, indent + 1, pretty);
                    }
                    newline_indent(out, indent, pretty);
                    out.push('}');
                }
            }
        }
    }

    fn newline_indent(out: &mut String, indent: usize, pretty: bool) {
        if pretty {
            out.push('\n');
            for _ in 0..indent {
                out.push_str("  ");
            }
        }
    }

    fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Types that can render themselves as JSON.
pub trait Serialize {
    /// Converts `self` into the shim's JSON data model.
    fn to_json(&self) -> json::Value;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(i64::from(*self))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn to_json(&self) -> json::Value {
        json::Value::UInt(*self)
    }
}

impl Serialize for usize {
    fn to_json(&self) -> json::Value {
        json::Value::UInt(*self as u64)
    }
}

impl Serialize for isize {
    fn to_json(&self) -> json::Value {
        json::Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($t:ident, $idx:tt)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_ser_tuple!((A, 0));
impl_ser_tuple!((A, 0), (B, 1));
impl_ser_tuple!((A, 0), (B, 1), (C, 2));
impl_ser_tuple!((A, 0), (B, 1), (C, 2), (D, 3));

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_and_containers() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            count: usize,
            ratio: f64,
            tags: Vec<u32>,
        }
        let v = Row {
            name: "x".into(),
            count: 3,
            ratio: 0.5,
            tags: vec![1, 2],
        }
        .to_json();
        match v {
            json::Value::Object(fields) => {
                assert_eq!(fields.len(), 4);
                assert_eq!(fields[0].0, "name");
                assert_eq!(
                    fields[3].1,
                    json::Value::Array(vec![json::Value::Int(1), json::Value::Int(2),])
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
