//! Traffic-shift detection: when does the observed traffic stop looking
//! like the matrix the current placement assumed?
//!
//! The detector consumes successive per-switch [`MetricsSnapshot`]s (one
//! scrape per cluster member, as returned by
//! `ClusterHandle::scrape_metrics`). For each observation window it:
//!
//! 1. diffs against the previous window's snapshots, extracting the
//!    per-switch `packets_injected` **deltas** — new work that arrived at
//!    each member during the window;
//! 2. normalizes the deltas into per-switch *shares* and computes the L1
//!    distance to the shares the current placement + assumed matrix
//!    predict ([`FleetProblem::expected_switch_shares`](crate::orchestrator::FleetProblem::expected_switch_shares));
//! 3. applies hysteresis: only after `hysteresis` consecutive windows
//!    above `drift_threshold` — and outside the post-replan `cooldown` —
//!    does it recommend a replan.
//!
//! Hysteresis plus cooldown is the anti-flapping contract: a one-window
//! burst, or the transient skew caused by a migration itself, never
//! triggers a replan.

use dejavu_asic::MetricsSnapshot;

/// Tuning knobs for shift detection.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// L1 distance between observed and expected per-switch shares above
    /// which a window counts as drifted. Shares sum to 1, so the distance
    /// ranges over [0, 2].
    pub drift_threshold: f64,
    /// Consecutive drifted windows required before recommending a replan.
    pub hysteresis: u32,
    /// Minimum packets in a window for it to be judged at all; smaller
    /// windows are noise and reset nothing.
    pub min_packets: u64,
    /// Windows to stay quiet after a replan (the migration transient
    /// itself skews shares).
    pub cooldown: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            drift_threshold: 0.25,
            hysteresis: 2,
            min_packets: 8,
            cooldown: 1,
        }
    }
}

/// What the detector concluded about one observation window.
#[derive(Debug, Clone, PartialEq)]
pub enum ShiftDecision {
    /// Not enough history (first window) or not enough packets to judge.
    Warming,
    /// Observed shares track the assumed matrix.
    Quiet {
        /// L1 distance this window.
        drift: f64,
    },
    /// Drifted, but hysteresis or cooldown suppressed the replan.
    Suppressed {
        /// L1 distance this window.
        drift: f64,
    },
    /// Sustained drift: re-planning is recommended.
    Replan {
        /// L1 distance this window.
        drift: f64,
    },
}

/// Stateful shift detector. Feed it one `Vec<MetricsSnapshot>` (one entry
/// per cluster member, in switch order) per observation window.
#[derive(Debug, Clone)]
pub struct ShiftDetector {
    config: DetectorConfig,
    expected: Vec<f64>,
    previous: Option<Vec<u64>>,
    streak: u32,
    cooldown_left: u32,
    last_observed: Vec<f64>,
}

impl ShiftDetector {
    /// A detector expecting the given per-switch traffic shares
    /// (normalized; from [`FleetProblem::expected_switch_shares`](crate::orchestrator::FleetProblem::expected_switch_shares)).
    pub fn new(config: DetectorConfig, expected_shares: Vec<f64>) -> Self {
        ShiftDetector {
            config,
            expected: expected_shares,
            previous: None,
            streak: 0,
            cooldown_left: 0,
            last_observed: Vec::new(),
        }
    }

    /// The per-switch shares observed in the most recent judged window
    /// (empty until the first full window). Input for traffic-matrix
    /// re-inference when a replan fires.
    pub fn observed_shares(&self) -> &[f64] {
        &self.last_observed
    }

    /// Re-baselines the detector after a migration: new expected shares,
    /// cleared streak, cooldown armed. The packet counters are *kept* —
    /// the next window diffs against the latest scrape, not against zero.
    pub fn rebase(&mut self, expected_shares: Vec<f64>) {
        self.expected = expected_shares;
        self.streak = 0;
        self.cooldown_left = self.config.cooldown;
    }

    /// Judges one observation window.
    pub fn observe(&mut self, per_switch: &[MetricsSnapshot]) -> ShiftDecision {
        let counts: Vec<u64> = per_switch
            .iter()
            .map(|s| s.counter("packets_injected"))
            .collect();
        let Some(prev) = self.previous.replace(counts.clone()) else {
            return ShiftDecision::Warming;
        };
        let deltas: Vec<u64> = counts
            .iter()
            .zip(prev.iter())
            .map(|(now, before)| now.saturating_sub(*before))
            .collect();
        let total: u64 = deltas.iter().sum();
        if total < self.config.min_packets {
            return ShiftDecision::Warming;
        }
        let observed: Vec<f64> = deltas.iter().map(|d| *d as f64 / total as f64).collect();
        let drift: f64 = observed
            .iter()
            .zip(self.expected.iter().chain(std::iter::repeat(&0.0)))
            .map(|(o, e)| (o - e).abs())
            .sum();
        self.last_observed = observed;
        if drift <= self.config.drift_threshold {
            self.streak = 0;
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            return ShiftDecision::Quiet { drift };
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return ShiftDecision::Suppressed { drift };
        }
        self.streak += 1;
        if self.streak < self.config.hysteresis {
            ShiftDecision::Suppressed { drift }
        } else {
            self.streak = 0;
            ShiftDecision::Replan { drift }
        }
    }
}
