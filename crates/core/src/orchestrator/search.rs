//! Pluggable placement search strategies over the fleet objective.
//!
//! Every strategy implements [`PlacementSearch`]: given a
//! [`FleetProblem`], return the best feasible [`ClusterPlacement`] it can
//! find plus its score. Three implementations cover the accuracy/scale
//! spectrum:
//!
//! * [`ExhaustiveSearch`] — the oracle. Enumerates every assignment of
//!   chain NFs to (switch, pipelet) slots; exact but capped (the space is
//!   `slots^nfs`), so only usable on small instances and as ground truth
//!   for the metaheuristics.
//! * [`AnnealingSearch`] — simulated annealing (cf. the SFC placement
//!   survey, arXiv:1910.02613): start from the greedy-spill seed, propose
//!   single-NF reassignments or pipelet-content swaps, accept uphill moves
//!   with Metropolis probability under a geometric cooling schedule.
//! * [`SwarmSearch`] — discrete particle swarm (cf. arXiv:2105.05248):
//!   a population of assignment vectors; each particle stochastically
//!   adopts coordinates from its personal best and the global best, plus
//!   mutation. Particle 0 starts at the greedy seed so the swarm never
//!   does worse than greedy.
//!
//! All randomized strategies take an explicit `u64` seed and use
//! [`StdRng`], so a given (problem, seed) pair reproduces bit-identical
//! results — the orchestrator's decisions are replayable.

use super::fleet::{FleetProblem, FleetScore};
use crate::multiswitch::ClusterPlacement;
use crate::placement::PlacementError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best feasible placement found.
    pub placement: ClusterPlacement,
    /// Its fleet score.
    pub score: FleetScore,
    /// How many candidate placements were scored (search effort).
    pub evaluated: u64,
}

/// A placement search strategy over the fleet objective.
pub trait PlacementSearch {
    /// Human-readable strategy name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Runs the search; errors if the instance admits no feasible
    /// placement the strategy can find (or, for exhaustive, if the space
    /// exceeds its cap).
    fn search(&self, problem: &FleetProblem) -> Result<SearchOutcome, PlacementError>;
}

/// Exact enumeration of every NF→slot assignment. Oracle for small
/// instances; errors with [`PlacementError::SearchTooLarge`] beyond
/// `cap` candidates.
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    /// Maximum number of candidate assignments to enumerate.
    pub cap: u128,
}

impl Default for ExhaustiveSearch {
    fn default() -> Self {
        ExhaustiveSearch { cap: 5_000_000 }
    }
}

impl PlacementSearch for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(&self, problem: &FleetProblem) -> Result<SearchOutcome, PlacementError> {
        let nfs = problem.nfs();
        let n_slots = problem.slots().len();
        let candidates = (n_slots as u128)
            .checked_pow(nfs.len() as u32)
            .unwrap_or(u128::MAX);
        if candidates > self.cap {
            return Err(PlacementError::SearchTooLarge {
                candidates,
                cap: self.cap,
            });
        }
        let mut assignment = vec![0usize; nfs.len()];
        let mut best: Option<(ClusterPlacement, FleetScore)> = None;
        let mut evaluated = 0u64;
        loop {
            let placement = problem.placement_of(&assignment);
            if problem.feasible(&placement) {
                evaluated += 1;
                let score = problem.score(&placement)?;
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| score.weighted < b.weighted)
                {
                    best = Some((placement, score));
                }
            }
            // Odometer increment over the slot radix.
            let mut i = 0;
            loop {
                if i == assignment.len() {
                    let (placement, score) = best.ok_or_else(|| {
                        PlacementError::Infeasible(
                            "no feasible assignment in exhaustive space".to_string(),
                        )
                    })?;
                    return Ok(SearchOutcome {
                        placement,
                        score,
                        evaluated,
                    });
                }
                assignment[i] += 1;
                if assignment[i] < n_slots {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }
}

/// Simulated annealing from the greedy-spill seed.
#[derive(Debug, Clone)]
pub struct AnnealingSearch {
    /// RNG seed — same seed, same problem → same answer.
    pub seed: u64,
    /// Number of proposal steps.
    pub iterations: u32,
    /// Starting temperature (objective units).
    pub start_temp: f64,
    /// Final temperature; cooling is geometric between the two.
    pub end_temp: f64,
}

impl AnnealingSearch {
    /// A search with the default schedule.
    pub fn new(seed: u64, iterations: u32) -> Self {
        AnnealingSearch {
            seed,
            iterations,
            start_temp: 4.0,
            end_temp: 0.05,
        }
    }
}

impl PlacementSearch for AnnealingSearch {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn search(&self, problem: &FleetProblem) -> Result<SearchOutcome, PlacementError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let slots = problem.slots();
        let seed_placement = problem.seed_placement()?;
        let mut current = problem
            .assignment_of(&seed_placement)
            .ok_or_else(|| PlacementError::Infeasible("greedy seed left NFs unplaced".into()))?;
        let mut current_score = problem.score(&seed_placement)?;
        let mut best = current.clone();
        let mut best_score = current_score;
        let mut evaluated = 1u64;
        let cooling = if self.iterations > 1 {
            (self.end_temp / self.start_temp).powf(1.0 / f64::from(self.iterations - 1))
        } else {
            1.0
        };
        let mut temp = self.start_temp;
        for _ in 0..self.iterations {
            let mut candidate = current.clone();
            if candidate.len() >= 2 && rng.gen_bool(0.3) {
                // Swap the slots of two NFs (preserves per-slot load shape).
                let a = rng.gen_range(0..candidate.len());
                let b = rng.gen_range(0..candidate.len());
                candidate.swap(a, b);
            } else {
                // Reassign one NF to a fresh slot.
                let i = rng.gen_range(0..candidate.len());
                candidate[i] = rng.gen_range(0..slots.len());
            }
            let placement = problem.placement_of(&candidate);
            if !problem.feasible(&placement) {
                temp *= cooling;
                continue;
            }
            evaluated += 1;
            let score = problem.score(&placement)?;
            let delta = score.weighted - current_score.weighted;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                current = candidate;
                current_score = score;
                if score.weighted < best_score.weighted {
                    best = current.clone();
                    best_score = score;
                }
            }
            temp *= cooling;
        }
        Ok(SearchOutcome {
            placement: problem.placement_of(&best),
            score: best_score,
            evaluated,
        })
    }
}

/// Discrete particle swarm over assignment vectors.
#[derive(Debug, Clone)]
pub struct SwarmSearch {
    /// RNG seed — same seed, same problem → same answer.
    pub seed: u64,
    /// Population size.
    pub particles: u32,
    /// Update rounds.
    pub iterations: u32,
    /// Per-coordinate probability of adopting the personal best.
    pub p_personal: f64,
    /// Per-coordinate probability of adopting the global best.
    pub p_global: f64,
    /// Per-coordinate probability of a random mutation.
    pub p_mutate: f64,
}

impl SwarmSearch {
    /// A swarm with the default adoption/mutation rates.
    pub fn new(seed: u64, particles: u32, iterations: u32) -> Self {
        SwarmSearch {
            seed,
            particles,
            iterations,
            p_personal: 0.25,
            p_global: 0.35,
            p_mutate: 0.08,
        }
    }
}

impl PlacementSearch for SwarmSearch {
    fn name(&self) -> &'static str {
        "swarm"
    }

    fn search(&self, problem: &FleetProblem) -> Result<SearchOutcome, PlacementError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let slots = problem.slots();
        let seed_placement = problem.seed_placement()?;
        let seed_assignment = problem
            .assignment_of(&seed_placement)
            .ok_or_else(|| PlacementError::Infeasible("greedy seed left NFs unplaced".into()))?;
        let seed_score = problem.score(&seed_placement)?;
        let mut evaluated = 1u64;

        // Particle state: position, personal best (assignment, score).
        let n = seed_assignment.len();
        let mut positions: Vec<Vec<usize>> = Vec::new();
        let mut pbest: Vec<(Vec<usize>, Option<FleetScore>)> = Vec::new();
        for p in 0..self.particles.max(1) {
            let pos = if p == 0 {
                seed_assignment.clone()
            } else {
                // Random restarts around the space; infeasible starts are
                // fine — they inherit the seed as personal best.
                (0..n).map(|_| rng.gen_range(0..slots.len())).collect()
            };
            let placement = problem.placement_of(&pos);
            let score = if problem.feasible(&placement) {
                evaluated += 1;
                Some(problem.score(&placement)?)
            } else {
                None
            };
            pbest.push(match score {
                Some(s) => (pos.clone(), Some(s)),
                None => (seed_assignment.clone(), Some(seed_score)),
            });
            positions.push(pos);
        }
        let mut gbest = seed_assignment.clone();
        let mut gbest_score = seed_score;
        for (pos, score) in &pbest {
            if let Some(s) = score {
                if s.weighted < gbest_score.weighted {
                    gbest = pos.clone();
                    gbest_score = *s;
                }
            }
        }

        for _ in 0..self.iterations {
            for p in 0..positions.len() {
                for i in 0..n {
                    if rng.gen_bool(self.p_personal) {
                        positions[p][i] = pbest[p].0[i];
                    }
                    if rng.gen_bool(self.p_global) {
                        positions[p][i] = gbest[i];
                    }
                    if rng.gen_bool(self.p_mutate) {
                        positions[p][i] = rng.gen_range(0..slots.len());
                    }
                }
                let placement = problem.placement_of(&positions[p]);
                if !problem.feasible(&placement) {
                    continue;
                }
                evaluated += 1;
                let score = problem.score(&placement)?;
                let improves_personal = match pbest[p].1 {
                    Some(s) => score.weighted < s.weighted,
                    None => true,
                };
                if improves_personal {
                    pbest[p] = (positions[p].clone(), Some(score));
                }
                if score.weighted < gbest_score.weighted {
                    gbest = positions[p].clone();
                    gbest_score = score;
                }
            }
        }
        Ok(SearchOutcome {
            placement: problem.placement_of(&gbest),
            score: gbest_score,
            evaluated,
        })
    }
}
