//! Hitless migration driver: execute a placement change against a live
//! cluster without losing a single learned flow.
//!
//! The driver sequences the `ClusterHandle` migration verbs into the
//! state machine documented in DESIGN.md:
//!
//! ```text
//! BUILD → PAUSE → FLUSH → SNAPSHOT → SWAP → RESYNC → RESTORE → REMAP → RESUME
//! ```
//!
//! * **BUILD** — compile the new placement into fresh `(Switch,
//!   Deployment)` members *before* touching traffic; a placement that
//!   fails to deploy aborts the migration with the old cluster intact.
//! * **PAUSE** — `pause_ingress`: park new injections and quiesce until
//!   every in-flight packet has delivered or nacked. Packets injected
//!   during the window are queued, never rejected.
//! * **FLUSH** — `process_digests`: run the `DrainDigests` barrier so
//!   every learn digest emitted by pre-pause traffic has been turned into
//!   an installed entry before state is captured.
//! * **SNAPSHOT** — `snapshot_state`: checkpoint every pipelet's dynamic
//!   state, then split it **per NF** by the `<nf>__` merged-name prefix so
//!   each NF's tables can land wherever the new placement puts them.
//! * **SWAP** — `swap_member` on every member: adopt the new switches.
//!   Their dynamic state is empty and their clocks are zero.
//! * **RESYNC** — `advance_time` over empty tables to the maximum
//!   snapshotted clock. Restoring *before* resyncing would stamp entries
//!   at clock 0 and the resync would mass-evict them; this ordering makes
//!   the fresh idle stamps land at the restored clock.
//! * **RESTORE** — `restore_state` each NF's slice onto its new (switch,
//!   pipelet) home; dropped entries are reported, not silently lost.
//! * **REMAP** — `remap_nfs`: flip the NF→switch routing so learned
//!   entries and installs target the new homes.
//! * **RESUME** — `resume_ingress`: release parked traffic in arrival
//!   order. Migration downtime is the PAUSE→RESUME wall-clock span.

use crate::chain::ChainSet;
use crate::deploy::{DeployError, DeployOptions};
use crate::multiswitch::{build_cluster_members, ClusterPlacement, ClusterWiring};
use crate::nfmodule::NfModule;
use crate::transport::{ClusterError, ClusterHandle};
use dejavu_asic::{PipeletId, PortId, StateSnapshot, TofinoProfile};
use std::collections::BTreeMap;
use std::time::Instant;

/// One NF changing (or keeping) its home during a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfMove {
    /// The NF (deployment name).
    pub nf: String,
    /// Old cluster position.
    pub from: usize,
    /// New cluster position.
    pub to: usize,
}

/// The difference between two cluster placements: which NFs move.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementDelta {
    /// NFs whose switch changes, in canonical order.
    pub moves: Vec<NfMove>,
}

impl PlacementDelta {
    /// Diffs two placements over the given NFs. NFs unplaced on either
    /// side are skipped (the deploy layer rejects them anyway).
    pub fn between(old: &ClusterPlacement, new: &ClusterPlacement, nfs: &[String]) -> Self {
        let moves = nfs
            .iter()
            .filter_map(|nf| {
                let from = old.switch_of(nf)?;
                let to = new.switch_of(nf)?;
                (from != to).then(|| NfMove {
                    nf: nf.clone(),
                    from,
                    to,
                })
            })
            .collect();
        PlacementDelta { moves }
    }

    /// No NF changes switches.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Everything needed to rebuild cluster members for a new placement —
/// the same inputs `spawn_cluster` took, minus the transport (the live
/// cluster keeps its wiring; only switches are swapped).
pub struct FleetSpec<'a> {
    /// The NF modules, by reference (modules are compiled per placement).
    pub nfs: &'a [&'a NfModule],
    /// The chain policies being served.
    pub chains: &'a ChainSet,
    /// The ASIC profile members are built against.
    pub profile: &'a TofinoProfile,
    /// Chain path id → cluster exit port.
    pub exit_ports: BTreeMap<u16, PortId>,
    /// Inter-member cabling model.
    pub wiring: &'a ClusterWiring,
    /// Deploy-time options (entry NF, composition overrides, …).
    pub deploy: &'a DeployOptions,
}

/// What a completed migration did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationOutcome {
    /// Which NFs changed switches.
    pub moves: Vec<NfMove>,
    /// Dynamic entries restored for *moving* NFs — the learned flows that
    /// crossed switches alive.
    pub flows_migrated: u64,
    /// Dynamic entries restored across the whole fleet (moving and
    /// staying NFs both; every member is rebuilt, so all state is
    /// re-seated).
    pub restored_entries: u64,
    /// Packets that arrived during the pause window and were parked, then
    /// released on resume.
    pub parked_packets: u64,
    /// Packets that were mid-flight when the pause began (the quiesce
    /// barrier waited for them).
    pub quiesced_packets: u64,
    /// PAUSE→RESUME wall-clock time — the migration's downtime window.
    pub duration_ns: u64,
}

/// Why a migration failed.
#[derive(Debug)]
pub enum MigrationError {
    /// The new placement failed to compile/deploy (old cluster intact).
    Deploy(DeployError),
    /// A live cluster operation failed mid-migration.
    Cluster(ClusterError),
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Deploy(e) => write!(f, "building new placement: {e}"),
            MigrationError::Cluster(e) => write!(f, "migrating live cluster: {e}"),
        }
    }
}

impl std::error::Error for MigrationError {}

impl From<DeployError> for MigrationError {
    fn from(e: DeployError) -> Self {
        MigrationError::Deploy(e)
    }
}

impl From<ClusterError> for MigrationError {
    fn from(e: ClusterError) -> Self {
        MigrationError::Cluster(e)
    }
}

/// Splits a pipelet snapshot into one snapshot per NF, keyed by the
/// `<nf>__` merged-name prefix the deploy layer scopes tables and
/// registers with.
fn split_by_nf(snap: &StateSnapshot, nfs: &[String]) -> Vec<(String, StateSnapshot)> {
    let mut out = Vec::new();
    for nf in nfs {
        let prefix = format!("{nf}__");
        let mut piece = StateSnapshot::empty(&snap.program);
        piece.clock = snap.clock;
        piece.tables = snap
            .tables
            .iter()
            .filter(|t| t.name.starts_with(&prefix))
            .cloned()
            .collect();
        piece.registers = snap
            .registers
            .iter()
            .filter(|r| r.name.starts_with(&prefix))
            .cloned()
            .collect();
        if !piece.tables.is_empty() || !piece.registers.is_empty() {
            out.push((nf.clone(), piece));
        }
    }
    out
}

/// Executes a hitless migration of a live cluster onto `new_placement`.
///
/// On success the cluster serves the new placement with every learned
/// flow re-seated; parked traffic has been released and will resolve
/// through the normal delivery path. On [`MigrationError::Deploy`] the
/// cluster is untouched; on [`MigrationError::Cluster`] the cluster may
/// be mid-swap and should be torn down.
pub fn migrate(
    handle: &mut ClusterHandle,
    spec: &FleetSpec<'_>,
    old_placement: &ClusterPlacement,
    new_placement: &ClusterPlacement,
) -> Result<MigrationOutcome, MigrationError> {
    let nf_names: Vec<String> = spec.chains.all_nfs();
    let delta = PlacementDelta::between(old_placement, new_placement, &nf_names);

    // BUILD — before touching traffic, so deploy failures are harmless.
    let members = build_cluster_members(
        spec.nfs,
        spec.chains,
        new_placement,
        spec.profile,
        spec.exit_ports.clone(),
        spec.wiring,
        spec.deploy,
    )?;

    // PAUSE — quiesce barrier; in-flight packets finish, new ones park.
    let started = Instant::now();
    let quiesced_packets = handle.pause_ingress()?;

    // FLUSH — every digest from pre-pause traffic becomes an entry.
    handle.process_digests()?;

    // SNAPSHOT — checkpoint, then split per NF.
    let snapshots = handle.snapshot_state()?;
    let max_clock = snapshots.iter().map(|(_, _, s)| s.clock).max().unwrap_or(0);
    let mut per_nf: Vec<(String, StateSnapshot)> = Vec::new();
    for (_, _, snap) in &snapshots {
        per_nf.extend(split_by_nf(snap, &nf_names));
    }

    // SWAP — adopt the new members (empty state, zero clocks).
    for (switch, (member_switch, deployment)) in members.into_iter().enumerate() {
        handle.swap_member(switch, member_switch, deployment)?;
    }

    // RESYNC — advance empty tables to the old clock so restored entries
    // get idle stamps that survive the next advance_time.
    if max_clock > 0 {
        handle.advance_time(max_clock)?;
    }

    // RESTORE — each NF's slice onto its new home.
    let mut outcome = MigrationOutcome {
        moves: delta.moves.clone(),
        quiesced_packets,
        ..MigrationOutcome::default()
    };
    for (nf, snap) in &per_nf {
        let Some(sw) = new_placement.switch_of(nf) else {
            continue;
        };
        let Some(pipelet) = new_placement.switches[sw].location(nf) else {
            continue;
        };
        let restored = handle.restore_state(sw, pipelet, snap)? as u64;
        outcome.restored_entries += restored;
        if delta.moves.iter().any(|m| &m.nf == nf) {
            outcome.flows_migrated += restored;
        }
    }

    // REMAP — route learned entries and installs to the new homes.
    let nf_switch: BTreeMap<String, usize> = nf_names
        .iter()
        .filter_map(|nf| new_placement.switch_of(nf).map(|sw| (nf.clone(), sw)))
        .collect();
    handle.remap_nfs(nf_switch)?;

    // RESUME — release parked traffic; downtime window closes.
    outcome.parked_packets = handle.resume_ingress()?;
    outcome.duration_ns = started.elapsed().as_nanos() as u64;
    Ok(outcome)
}

/// Builds the pipelet→NF view the restore step needs for one member.
/// Exposed for tests that restore snapshots manually.
pub fn nf_location(placement: &ClusterPlacement, nf: &str) -> Option<(usize, PipeletId)> {
    let sw = placement.switch_of(nf)?;
    let pipelet = placement.switches[sw].location(nf)?;
    Some((sw, pipelet))
}
