//! Fleet-scale placement model: N chains × M switches as one search
//! problem.
//!
//! The single-switch machinery ([`crate::placement`]) minimizes weighted
//! recirculations for one ASIC; the cluster layer
//! ([`crate::multiswitch::ClusterProblem`]) adds inter-switch hops. This
//! module packages both behind one **fleet objective** the orchestrator's
//! metaheuristics ([`super::search`]) optimize:
//!
//! ```text
//! score(P) = Σ_chains w_c · (recirc_w·R_c + resub_w·S_c + hop_w·H_c)
//!          + pressure_w · Σ_switches (stage utilization_s)²
//! ```
//!
//! The quadratic **stage-pressure** term is what makes the fleet problem
//! more than M independent single-switch problems: it rewards spreading
//! stage demand across members, so a traffic shift that concentrates load
//! can actually change the optimum instead of always collapsing onto
//! switch 0. Chain weights `w_c` are the traffic matrix the placement
//! assumes — the quantity the [`ShiftDetector`](super::ShiftDetector)
//! watches for drift.

use crate::chain::{ChainPolicy, ChainSet};
use crate::multiswitch::{ClusterPlacement, ClusterProblem};
use crate::placement::{Placement, PlacementError, PlacementProblem};
use dejavu_asic::PipeletId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One slot an NF can be assigned to: a pipelet on a cluster member.
pub type FleetSlot = (usize, PipeletId);

/// The fleet placement problem: a cluster problem (which already carries
/// the chain set, per-NF stage demands and the recirculation / hop
/// weights) plus the stage-pressure weight unique to the fleet objective.
#[derive(Debug, Clone)]
pub struct FleetProblem {
    /// The underlying N-chain × M-switch cost model.
    pub cluster: ClusterProblem,
    /// Objective weight of the quadratic per-switch stage-pressure term.
    pub pressure_weight: f64,
}

/// Scored evaluation of one fleet placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScore {
    /// Total on-chip recirculations across all chains (unweighted).
    pub recirculations: u32,
    /// Total resubmissions across all chains (unweighted).
    pub resubmissions: u32,
    /// Total inter-switch hops across all chains (unweighted).
    pub inter_switch_hops: u32,
    /// Quadratic stage-pressure term (Σ utilization²).
    pub pressure: f64,
    /// The full weighted objective the searches minimize.
    pub weighted: f64,
}

impl FleetProblem {
    /// Wraps a cluster problem with the default pressure weight.
    pub fn new(cluster: ClusterProblem) -> Self {
        FleetProblem {
            cluster,
            pressure_weight: 1.0,
        }
    }

    /// The chain set (and its weights — the assumed traffic matrix).
    pub fn chains(&self) -> &ChainSet {
        &self.cluster.template.chains
    }

    /// Number of cluster members.
    pub fn switches(&self) -> usize {
        self.cluster.cluster_size
    }

    /// Every assignable slot, in (switch, alternating-pipelet) order.
    pub fn slots(&self) -> Vec<FleetSlot> {
        let pipelets = self.cluster.template.pipelets_alternating();
        (0..self.cluster.cluster_size)
            .flat_map(|s| pipelets.iter().map(move |p| (s, *p)))
            .collect()
    }

    /// The NFs to place, in canonical chain order. Search assignment
    /// vectors are indexed by this order.
    pub fn nfs(&self) -> Vec<String> {
        self.cluster.template.canonical_order()
    }

    /// Decodes an assignment vector (`nfs()[i]` lives in `slots()[a[i]]`)
    /// into a cluster placement, NFs in canonical order within each
    /// pipelet.
    pub fn placement_of(&self, assignment: &[usize]) -> ClusterPlacement {
        let slots = self.slots();
        let nfs = self.nfs();
        let mut switches: Vec<Placement> = (0..self.cluster.cluster_size)
            .map(|_| Placement::default())
            .collect();
        for (i, &slot) in assignment.iter().enumerate() {
            let (sw, pipelet) = slots[slot];
            switches[sw]
                .pipelets
                .entry(pipelet)
                .or_default()
                .push(nfs[i].clone());
        }
        let mut placement = ClusterPlacement { switches };
        for p in &mut placement.switches {
            *p = self.cluster.template.canonicalize(std::mem::take(p));
        }
        placement
    }

    /// Encodes a cluster placement back into an assignment vector;
    /// `None` when some chain NF is unplaced.
    pub fn assignment_of(&self, placement: &ClusterPlacement) -> Option<Vec<usize>> {
        let slots = self.slots();
        self.nfs()
            .iter()
            .map(|nf| {
                let sw = placement.switch_of(nf)?;
                let pipelet = placement.switches[sw].location(nf)?;
                slots.iter().position(|&s| s == (sw, pipelet))
            })
            .collect()
    }

    /// Fleet feasibility: every chain NF placed exactly once, every
    /// pipelet within its stage budget, and every chain visiting switches
    /// in non-decreasing order (the back-to-back wiring
    /// [`build_cluster_members`](crate::multiswitch) deploys enforces
    /// monotonicity, so a non-monotone "optimum" would be undeployable).
    pub fn feasible(&self, placement: &ClusterPlacement) -> bool {
        let t = &self.cluster.template;
        for nf in t.chains.all_nfs() {
            let hosts = placement
                .switches
                .iter()
                .filter(|p| p.location(&nf).is_some())
                .count();
            if hosts != 1 {
                return false;
            }
        }
        for p in &placement.switches {
            if !p.pipelets.iter().all(|(_, nfs)| t.fits(nfs)) {
                return false;
            }
        }
        for chain in &t.chains.chains {
            let mut last = 0usize;
            for nf in &chain.nfs {
                let Some(sw) = placement.switch_of(nf) else {
                    return false;
                };
                if sw < last {
                    return false;
                }
                last = sw;
            }
        }
        true
    }

    /// The quadratic stage-pressure term: Σ over switches of (stage demand
    /// / stage capacity)². Convex, so balanced fleets score lower than
    /// concentrated ones at equal total demand.
    pub fn pressure(&self, placement: &ClusterPlacement) -> f64 {
        let t = &self.cluster.template;
        let capacity = f64::from(t.stages_per_pipelet) * (2 * t.pipelines) as f64;
        placement
            .switches
            .iter()
            .map(|p| {
                let demand: u32 = p
                    .pipelets
                    .values()
                    .map(|nfs| t.pipelet_stage_demand(nfs))
                    .sum();
                let util = f64::from(demand) / capacity;
                util * util
            })
            .sum()
    }

    /// Evaluates the full fleet objective. Errors if a chain NF is
    /// unplaced or a traversal diverges; callers gate on
    /// [`feasible`](Self::feasible) first.
    pub fn score(&self, placement: &ClusterPlacement) -> Result<FleetScore, PlacementError> {
        let t = &self.cluster.template;
        let mut score = FleetScore {
            recirculations: 0,
            resubmissions: 0,
            inter_switch_hops: 0,
            pressure: self.pressure(placement),
            weighted: 0.0,
        };
        for chain in &t.chains.chains {
            let c = self.cluster.chain_cost(chain, placement)?;
            score.recirculations += c.recirculations;
            score.resubmissions += c.resubmissions;
            score.inter_switch_hops += c.inter_switch_hops;
            score.weighted += chain.weight
                * (f64::from(c.recirculations) * t.cost_model.recirc_weight
                    + f64::from(c.resubmissions) * t.cost_model.resub_weight
                    + f64::from(c.inter_switch_hops) * self.cluster.hop_weight);
        }
        score.weighted += self.pressure_weight * score.pressure;
        Ok(score)
    }

    /// A feasible starting placement: the cluster greedy-spill heuristic
    /// when it succeeds, otherwise a monotone first-fit sweep — NFs in a
    /// topological order of the chain-precedence DAG, packed into slots
    /// with a never-retreating cursor, so every chain still visits
    /// switches in non-decreasing order.
    pub fn seed_placement(&self) -> Result<ClusterPlacement, PlacementError> {
        match self.cluster.greedy_spill() {
            Ok(mut p) => {
                for sw in &mut p.switches {
                    *sw = self.cluster.template.canonicalize(std::mem::take(sw));
                }
                Ok(p)
            }
            Err(greedy_err) => self.monotone_first_fit().map_err(|_| greedy_err),
        }
    }

    /// Fallback seed: topological order over chain edges, monotone cursor
    /// over slots, first-fit within the cursor's reach.
    fn monotone_first_fit(&self) -> Result<ClusterPlacement, PlacementError> {
        let t = &self.cluster.template;
        let nfs = self.nfs();
        // Kahn's algorithm over "a precedes b in some chain" edges; ties
        // broken by canonical index so the seed is deterministic.
        let index: BTreeMap<&str, usize> = nfs
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut indegree = vec![0usize; nfs.len()];
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nfs.len()];
        for chain in &t.chains.chains {
            for pair in chain.nfs.windows(2) {
                let (a, b) = (index[pair[0].as_str()], index[pair[1].as_str()]);
                if !edges[a].contains(&b) {
                    edges[a].push(b);
                    indegree[b] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..nfs.len()).filter(|i| indegree[*i] == 0).collect();
        let mut order = Vec::with_capacity(nfs.len());
        while let Some(&i) = ready.iter().min() {
            ready.retain(|j| *j != i);
            order.push(i);
            for &b in &edges[i] {
                indegree[b] -= 1;
                if indegree[b] == 0 {
                    ready.push(b);
                }
            }
        }
        if order.len() != nfs.len() {
            return Err(PlacementError::Infeasible(
                "chain precedence is cyclic; no monotone placement exists".to_string(),
            ));
        }
        let slots = self.slots();
        let mut switches: Vec<Placement> = (0..self.cluster.cluster_size)
            .map(|_| Placement::default())
            .collect();
        let mut cursor = 0usize;
        for &i in &order {
            let nf = &nfs[i];
            let placed = (cursor..slots.len()).find(|&s| {
                let (sw, pipelet) = slots[s];
                let mut trial = switches[sw]
                    .pipelets
                    .get(&pipelet)
                    .cloned()
                    .unwrap_or_default();
                trial.push(nf.clone());
                t.fits(&trial)
            });
            let Some(s) = placed else {
                return Err(PlacementError::Infeasible(format!(
                    "monotone first-fit ran out of slots at NF {nf}"
                )));
            };
            let (sw, pipelet) = slots[s];
            switches[sw]
                .pipelets
                .entry(pipelet)
                .or_default()
                .push(nf.clone());
            cursor = s;
        }
        let mut placement = ClusterPlacement { switches };
        for p in &mut placement.switches {
            *p = t.canonicalize(std::mem::take(p));
        }
        Ok(placement)
    }

    /// Returns a copy of the problem with chain weights (the assumed
    /// traffic matrix) replaced. `weights` is indexed like
    /// `chains().chains`; missing entries keep their old weight.
    pub fn with_weights(&self, weights: &[f64]) -> FleetProblem {
        let mut out = self.clone();
        for (chain, w) in out
            .cluster
            .template
            .chains
            .chains
            .iter_mut()
            .zip(weights.iter())
        {
            chain.weight = *w;
        }
        out
    }

    /// The per-switch traffic shares this placement predicts under the
    /// assumed matrix: every packet enters at member 0 and transits every
    /// member up to the furthest one its chain visits, so switch `s`
    /// carries the weight of every chain whose reach is ≥ `s`. Normalized
    /// to sum to 1 — the baseline the [`ShiftDetector`](super::ShiftDetector)
    /// compares observed per-switch packet deltas against.
    pub fn expected_switch_shares(
        &self,
        placement: &ClusterPlacement,
    ) -> Result<Vec<f64>, PlacementError> {
        let mut shares = vec![0.0; self.cluster.cluster_size];
        for chain in &self.chains().chains {
            let reach = self.chain_reach(chain, placement)?;
            for share in shares.iter_mut().take(reach + 1) {
                *share += chain.weight;
            }
        }
        let total: f64 = shares.iter().sum();
        if total > 0.0 {
            for s in &mut shares {
                *s /= total;
            }
        }
        Ok(shares)
    }

    /// The furthest member a chain's packets visit under `placement`.
    pub fn chain_reach(
        &self,
        chain: &ChainPolicy,
        placement: &ClusterPlacement,
    ) -> Result<usize, PlacementError> {
        chain
            .nfs
            .iter()
            .map(|nf| {
                placement
                    .switch_of(nf)
                    .ok_or_else(|| PlacementError::UnplacedNf(nf.clone()))
            })
            .try_fold(0usize, |acc, sw| sw.map(|sw| acc.max(sw)))
    }

    /// A reproducible synthetic fleet for scale tests and benches:
    /// `n_chains` chains drawn as increasing subsequences of a shared NF
    /// universe (so a monotone placement exists for every chain
    /// simultaneously), with randomized stage demands and traffic weights.
    pub fn synthetic(n_chains: usize, n_switches: usize, seed: u64) -> FleetProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_nfs = (3 * n_switches).max(8);
        let names: Vec<String> = (0..n_nfs).map(|i| format!("nf{i:03}")).collect();
        let mut stages = BTreeMap::new();
        for n in &names {
            stages.insert(n.clone(), rng.gen_range(1..4) as u32);
        }
        let mut chains = Vec::new();
        for c in 0..n_chains {
            let want = rng.gen_range(2..=4usize);
            let mut idx: Vec<usize> = (0..want).map(|_| rng.gen_range(0..n_nfs)).collect();
            idx.sort_unstable();
            idx.dedup();
            let nfs: Vec<&str> = idx.iter().map(|i| names[*i].as_str()).collect();
            let weight = rng.gen_range(5..20) as f64 / 10.0;
            chains.push(ChainPolicy::new(
                (c + 1) as u16,
                format!("chain{c:03}"),
                nfs,
                weight,
            ));
        }
        let template = PlacementProblem::new(
            ChainSet::new(chains).expect("synthetic chains valid"),
            stages,
        );
        FleetProblem::new(ClusterProblem::new(template, n_switches))
    }
}
