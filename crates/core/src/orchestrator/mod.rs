//! Closed-loop re-placement orchestration: telemetry-driven placement
//! search with hitless live migration.
//!
//! The paper solves the *static* placement problem — one chain set, one
//! traffic matrix, one ASIC. This subsystem closes the loop at fleet
//! scale: watch the running cluster's telemetry, notice when the traffic
//! matrix the current placement assumed has drifted
//! ([`detector`]), search for a better placement under the observed
//! matrix ([`search`] over the [`fleet`] objective), and if the gain
//! clears a cost/benefit bar, migrate the live cluster to it without
//! dropping a learned flow ([`migrate()`]).
//!
//! The [`Orchestrator`] type sequences one `observe → infer → search →
//! decide → migrate` round per telemetry window and records what it did
//! in `orchestrator_*` metrics:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `orchestrator_replans_triggered` | counter | migrations executed |
//! | `orchestrator_replans_skipped_hysteresis` | counter | drifted windows suppressed by hysteresis/cooldown |
//! | `orchestrator_replans_skipped_gain` | counter | replans abandoned at the cost/benefit bar |
//! | `orchestrator_flows_migrated` | counter | dynamic entries that crossed switches alive |
//! | `orchestrator_migration_duration_ns` | histogram | pause→resume downtime per migration |

pub mod detector;
pub mod fleet;
pub mod migrate;
pub mod search;

pub use detector::{DetectorConfig, ShiftDecision, ShiftDetector};
pub use fleet::{FleetProblem, FleetScore, FleetSlot};
pub use migrate::{migrate, FleetSpec, MigrationError, MigrationOutcome, NfMove, PlacementDelta};
pub use search::{AnnealingSearch, ExhaustiveSearch, PlacementSearch, SearchOutcome, SwarmSearch};

use crate::multiswitch::ClusterPlacement;
use crate::placement::PlacementError;
use crate::transport::ClusterHandle;
use dejavu_asic::telemetry::{CounterId, HistogramId, MetricsRegistry, MetricsSnapshot};

/// Orchestrator tuning knobs.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Shift-detection thresholds.
    pub detector: DetectorConfig,
    /// Minimum weighted-objective improvement a candidate placement must
    /// offer (under the *observed* matrix) before a migration is worth its
    /// downtime. The cost/benefit bar.
    pub min_gain: f64,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            detector: DetectorConfig::default(),
            min_gain: 1e-6,
        }
    }
}

/// What one orchestration round did.
#[derive(Debug)]
pub enum StepOutcome {
    /// Not enough telemetry history yet.
    Warming,
    /// Traffic tracks the assumed matrix; nothing to do.
    Quiet {
        /// L1 drift this window.
        drift: f64,
    },
    /// Drift seen but suppressed (hysteresis or post-migration cooldown).
    Suppressed {
        /// L1 drift this window.
        drift: f64,
    },
    /// Replan ran but the best found placement didn't clear `min_gain`.
    NotWorthIt {
        /// L1 drift this window.
        drift: f64,
        /// Weighted-objective gain the search offered.
        gain: f64,
    },
    /// The cluster was migrated to a better placement.
    Migrated {
        /// L1 drift that triggered the replan.
        drift: f64,
        /// Weighted-objective gain realized (old − new, observed matrix).
        gain: f64,
        /// What the migration moved.
        outcome: MigrationOutcome,
    },
}

/// Why an orchestration round failed.
#[derive(Debug)]
pub enum OrchestratorError {
    /// Scoring or searching the fleet objective failed.
    Placement(PlacementError),
    /// The live migration failed.
    Migration(MigrationError),
}

impl std::fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrchestratorError::Placement(e) => write!(f, "placement search: {e}"),
            OrchestratorError::Migration(e) => write!(f, "migration: {e}"),
        }
    }
}

impl std::error::Error for OrchestratorError {}

impl From<PlacementError> for OrchestratorError {
    fn from(e: PlacementError) -> Self {
        OrchestratorError::Placement(e)
    }
}

impl From<MigrationError> for OrchestratorError {
    fn from(e: MigrationError) -> Self {
        OrchestratorError::Migration(e)
    }
}

/// The closed-loop controller: owns the assumed traffic matrix (as chain
/// weights on its [`FleetProblem`]), the placement the cluster currently
/// serves, a shift detector baselined to that pair, and a search
/// strategy.
pub struct Orchestrator {
    problem: FleetProblem,
    current: ClusterPlacement,
    detector: ShiftDetector,
    search: Box<dyn PlacementSearch>,
    config: OrchestratorConfig,
    registry: MetricsRegistry,
    replans_triggered: CounterId,
    replans_skipped_hysteresis: CounterId,
    replans_skipped_gain: CounterId,
    flows_migrated: CounterId,
    migration_duration: HistogramId,
}

impl Orchestrator {
    /// Builds an orchestrator for a cluster currently serving
    /// `current` under the matrix assumed by `problem`'s chain weights.
    pub fn new(
        problem: FleetProblem,
        current: ClusterPlacement,
        search: Box<dyn PlacementSearch>,
        config: OrchestratorConfig,
    ) -> Result<Self, PlacementError> {
        let expected = problem.expected_switch_shares(&current)?;
        let detector = ShiftDetector::new(config.detector.clone(), expected);
        let mut registry = MetricsRegistry::enabled();
        let replans_triggered = registry.counter("orchestrator_replans_triggered");
        let replans_skipped_hysteresis =
            registry.counter("orchestrator_replans_skipped_hysteresis");
        let replans_skipped_gain = registry.counter("orchestrator_replans_skipped_gain");
        let flows_migrated = registry.counter("orchestrator_flows_migrated");
        let migration_duration = registry.histogram("orchestrator_migration_duration_ns");
        Ok(Orchestrator {
            problem,
            current,
            detector,
            search,
            config,
            registry,
            replans_triggered,
            replans_skipped_hysteresis,
            replans_skipped_gain,
            flows_migrated,
            migration_duration,
        })
    }

    /// The placement the orchestrator believes the cluster is serving.
    pub fn current_placement(&self) -> &ClusterPlacement {
        &self.current
    }

    /// The fleet problem under the currently assumed traffic matrix.
    pub fn problem(&self) -> &FleetProblem {
        &self.problem
    }

    /// Snapshot of the `orchestrator_*` metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture(&self.registry)
    }

    /// Re-estimates per-chain traffic weights from the observed per-switch
    /// shares. Chains are grouped by the furthest switch they reach under
    /// the current placement; since every packet transits members
    /// `0..=reach`, the weight of reach-class `k` is proportional to
    /// `share[k] - share[k+1]`. Within a class the observation can't
    /// distinguish chains, so the class weight is split proportionally to
    /// the previously assumed weights. Total weight is preserved so
    /// objective gains stay comparable across rounds.
    pub fn infer_weights(&self, observed: &[f64]) -> Result<Vec<f64>, PlacementError> {
        let chains = &self.problem.chains().chains;
        let reaches: Vec<usize> = chains
            .iter()
            .map(|c| self.problem.chain_reach(c, &self.current))
            .collect::<Result<_, _>>()?;
        let share = |k: usize| observed.get(k).copied().unwrap_or(0.0);
        let class_raw: Vec<f64> = (0..self.problem.switches())
            .map(|k| (share(k) - share(k + 1)).max(0.0))
            .collect();
        let old_total: f64 = chains.iter().map(|c| c.weight).sum();
        let raw_total: f64 = reaches.iter().map(|&k| class_raw[k]).sum::<f64>();
        if raw_total <= 0.0 {
            // Degenerate observation; keep the assumed matrix.
            return Ok(chains.iter().map(|c| c.weight).collect());
        }
        let mut weights = Vec::with_capacity(chains.len());
        for (k, raw) in class_raw.iter().enumerate() {
            let members: Vec<usize> = (0..chains.len()).filter(|i| reaches[*i] == k).collect();
            if members.is_empty() {
                continue;
            }
            let class_weight = raw / raw_total * old_total;
            let old_class_total: f64 = members.iter().map(|&i| chains[i].weight).sum();
            for &i in &members {
                let fraction = if old_class_total > 0.0 {
                    chains[i].weight / old_class_total
                } else {
                    1.0 / members.len() as f64
                };
                weights.push((i, class_weight * fraction));
            }
        }
        weights.sort_by_key(|(i, _)| *i);
        Ok(weights.into_iter().map(|(_, w)| w).collect())
    }

    /// Runs one orchestration round against one telemetry window
    /// (`per_switch`: one scrape per member, in cluster order). Decides,
    /// and if a replan clears the bar, migrates `handle` live.
    pub fn step(
        &mut self,
        handle: &mut ClusterHandle,
        spec: &FleetSpec<'_>,
        per_switch: &[MetricsSnapshot],
    ) -> Result<StepOutcome, OrchestratorError> {
        let drift = match self.detector.observe(per_switch) {
            ShiftDecision::Warming => return Ok(StepOutcome::Warming),
            ShiftDecision::Quiet { drift } => return Ok(StepOutcome::Quiet { drift }),
            ShiftDecision::Suppressed { drift } => {
                self.registry.inc(self.replans_skipped_hysteresis);
                return Ok(StepOutcome::Suppressed { drift });
            }
            ShiftDecision::Replan { drift } => drift,
        };

        // Infer the observed matrix and re-search under it.
        let observed = self.detector.observed_shares().to_vec();
        let weights = self.infer_weights(&observed)?;
        let shifted = self.problem.with_weights(&weights);
        let found = self.search.search(&shifted)?;
        let current_score = shifted.score(&self.current)?;
        let gain = current_score.weighted - found.score.weighted;
        if gain < self.config.min_gain || found.placement == self.current {
            self.registry.inc(self.replans_skipped_gain);
            // The drift is real even if no better placement exists; adopt
            // the observed matrix so the detector stops firing on it.
            self.problem = shifted;
            let expected = self.problem.expected_switch_shares(&self.current)?;
            self.detector.rebase(expected);
            return Ok(StepOutcome::NotWorthIt { drift, gain });
        }

        // Migrate live.
        let outcome = migrate(handle, spec, &self.current, &found.placement)?;
        self.registry.inc(self.replans_triggered);
        self.registry
            .add(self.flows_migrated, outcome.flows_migrated);
        self.registry
            .observe(self.migration_duration, outcome.duration_ns);
        self.problem = shifted;
        self.current = found.placement;
        let expected = self.problem.expected_switch_shares(&self.current)?;
        self.detector.rebase(expected);
        Ok(StepOutcome::Migrated {
            drift,
            gain,
            outcome,
        })
    }
}
