//! # dejavu-core — the Dejavu service-chaining framework
//!
//! The primary contribution of *Accelerated Service Chaining on a Single
//! Switch ASIC* (HotNets 2019): a framework that composes multiple network
//! functions into one multi-pipelet data-plane program, places them on a
//! programmable switch ASIC, and routes packets through their service chains
//! on-chip.
//!
//! Module map, following the paper's §3:
//!
//! * [`sfc`] — the customized NSH-based SFC header (Fig. 3): service path
//!   ID, service index, mirrored platform metadata, 12 bytes of key-value
//!   context, next-protocol byte; inserted between Ethernet and IP under a
//!   dedicated EtherType.
//! * [`chain`] — SFC policies: weighted NF sequences per path ID (Fig. 2).
//! * [`nfmodule`] — the control-block programming interface (§3.1): an NF is
//!   a program whose entry control touches only packet headers (including
//!   `sfc.*`) and NF-local metadata — platform metadata is framework
//!   territory and API compliance is checked.
//! * [`merge`] — the generic parser (§3): DAG merging over
//!   `(header_type, offset)` vertex identities with a global-ID table, plus
//!   namespacing of NF-local actions/tables/metadata.
//! * [`compose`] — sequential and parallel NF composition (Fig. 5),
//!   generating the per-pipelet programs with the framework's
//!   `check_nextNF`/`check_sfcFlags`/branching tables.
//! * [`placement`] — NF placement optimization (§3.3): the traversal cost
//!   model (reproducing Fig. 6 exactly), the naive baseline, greedy,
//!   exhaustive, and simulated-annealing optimizers minimizing weighted
//!   recirculations.
//! * [`routing`] — on-chip packet routing (§3.4): synthesis of branching-
//!   table entries after placement.
//! * [`deploy`] — end-to-end deployment: compose → compile → load → route a
//!   chain set onto a `dejavu_asic::Switch`.
//! * [`control_plane`] — the merged control plane (§7): per-NF API views
//!   translated onto the merged program, and the to-CPU reinjection loop.
//! * [`multiswitch`] — the multi-switch extension (§7): placement across a
//!   cluster of back-to-back ASICs with off-chip transition costs.
//! * [`transport`] — the cluster runtime: per-switch workers communicating
//!   over pluggable transports (in-memory channels or framed TCP) under an
//!   event-driven control plane.
//! * [`orchestrator`] — closed-loop re-placement at fleet scale: pluggable
//!   placement search (exhaustive / annealing / swarm) over an N-chain ×
//!   M-switch objective, telemetry-driven traffic-shift detection, and a
//!   hitless live-migration driver over the cluster runtime.
//! * [`ingress`] — the map of injection entry points (single packet, batch,
//!   zero-copy buffer, run-to-completion rings, and the cluster paths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod chain;
pub mod compose;
pub mod control_plane;
pub mod deploy;
pub mod ingress;
pub mod lint;
pub mod merge;
pub mod multiswitch;
pub mod nfmodule;
pub mod orchestrator;
pub mod placement;
pub mod routing;
pub mod sfc;
pub mod transport;

pub use analyze::{analyze_pipelets, check_learn_contracts, LearnContract};
pub use chain::{ChainPolicy, ChainSet};
pub use compose::{compose_pipelet, CompositionMode, PipeletPlan};
pub use merge::{merge_parsers, MergeError};
pub use nfmodule::{ApiViolation, NfModule};
pub use placement::{Location, Placement, PlacementProblem, RecircGranularity, TraversalCost};
pub use routing::RoutingSynthesis;
pub use sfc::SfcHeader;

/// One-stop imports for building, deploying, and driving a service chain.
///
/// ```
/// use dejavu_core::prelude::*;
///
/// let sw = Switch::new(TofinoProfile::tiny());
/// assert!(!sw.telemetry_enabled());
/// ```
///
/// Pulls in the switch simulator surface (switch, profiles, execution and
/// trace modes, the unified [`InjectedPacket`](dejavu_asic::InjectedPacket)/
/// [`SwitchOptions`](dejavu_asic::SwitchOptions) injection
/// and configuration API, telemetry registry/snapshot types) and the
/// framework surface (chains, NF modules, composition, placement,
/// deployment, the merged control plane, the multi-switch cluster, and the
/// transport-backed cluster runtime).
///
/// **Injecting packets?** Every entry point — single packet, batch,
/// zero-copy buffer, run-to-completion rings, lockstep cluster,
/// transport cluster — consumes the same
/// [`InjectedPacket`](dejavu_asic::InjectedPacket); see [`crate::ingress`]
/// for the one-page map of which to use when.
pub mod prelude {
    pub use crate::analyze::{analyze_pipelets, check_learn_contracts, LearnContract};
    pub use crate::chain::{ChainPolicy, ChainSet};
    pub use crate::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};
    pub use crate::control_plane::{
        clear_sfc_flags, rewind_and_clear, ControlPlane, ControlPlaneStats, LearnPolicy,
        LearnResponse, PuntResponse,
    };
    pub use crate::deploy::{deploy, DeployError, DeployOptions, Deployment, UpgradeOutcome};
    pub use crate::lint::{lint_chain_budget, lint_pipelet, BudgetSpec};
    pub use crate::merge::{merge_programs, MergeError};
    pub use crate::multiswitch::{
        chain_latency_ns, deploy_cluster, ClusterConfigError, ClusterNet, ClusterPlacement,
        ClusterProblem, ClusterTraversal, ClusterWiring,
    };
    pub use crate::nfmodule::NfModule;
    pub use crate::placement::{
        Location, Placement, PlacementProblem, RecircGranularity, TraversalCost,
    };
    pub use crate::routing::{RoutingConfig, RoutingSynthesis};
    pub use crate::sfc::{sfc_header_type, SfcHeader, SFC_ETHERTYPE};
    pub use crate::transport::{
        spawn_cluster, ChannelTransport, ClusterError, ClusterHandle, ClusterOptions,
        ClusterReport, PerSwitchReport, TcpTransport, Transport, TransportError, WireTraversal,
    };
    pub use dejavu_asic::state::{
        MigrationReport, RegisterSnapshot, StateSnapshot, TableSnapshot, SNAPSHOT_FORMAT_VERSION,
    };
    pub use dejavu_asic::switch::Disposition;
    pub use dejavu_asic::telemetry::{
        parse_json, snapshot_from_json, to_json_string, to_prometheus, MetricsRegistry,
        MetricsSnapshot,
    };
    pub use dejavu_asic::{
        BatchStats, DigestRecord, Eviction, ExecMode, Gress, InjectedPacket, PipeletId, PortId,
        Switch, SwitchMetrics, SwitchOptions, TimingModel, TofinoProfile, TraceLevel, Traversal,
    };
}
