//! Chain-level abstract analysis: stateful-safety checks across merged
//! pipelets (`DJV3xx`).
//!
//! `dejavu_p4ir::analyze` reasons about one program at a time. The defects
//! the paper's merge step can introduce are *cross-program*: two pipelets
//! sharing a register array, or a control-plane learn policy whose installed
//! entries no longer line up with the digest payload an action emits. This
//! module emits the `DJV3xx` band registered in
//! [`dejavu_p4ir::analyze::AnalysisCode`]:
//!
//! * **`DJV301` register hazard** — the same register array is accessed
//!   from two or more pipelet programs with at least one writer. Registers
//!   are per-pipelet state on the ASIC (paper §3); a merged chain that
//!   read/write-shares one observes torn state. Read-only sharing is fine.
//! * **`DJV302` learn-contract mismatch** — the digest payload an action
//!   emits disagrees with the registered [`LearnContract`]: missing stream
//!   or table, key/argument index out of bounds, or a width mismatch
//!   between a digest field and the table key / action parameter it feeds.
//! * **`DJV303` learn without aging** — a learn contract installs into a
//!   table with no idle-timeout aging: under flow churn the table only ever
//!   fills (the PR-4 LRU path then evicts live sessions).
//!
//! Contracts are declared next to the
//! [`LearnPolicy`](crate::control_plane::LearnPolicy) they describe and
//! registered on the [`ControlPlane`](crate::control_plane::ControlPlane);
//! [`check_learn_contracts`] then checks them against the NF's actual
//! program.

use dejavu_p4ir::action::{ActionDef, Expr, PrimitiveOp};
use dejavu_p4ir::analyze::{AnalysisCode, AnalysisReport, Finding};
use dejavu_p4ir::deps::register_accesses;
use dejavu_p4ir::Program;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The declared shape of one learn path: which digest stream feeds which
/// table/action, and how digest fields map onto keys and arguments.
///
/// The `key_map`/`arg_map` vectors hold indices into the digest's field
/// list: `key_map[i]` is the digest field installed as the `i`-th match key
/// of `target_table`, `arg_map[j]` the digest field bound to the `j`-th
/// parameter of `target_action`. This is exactly the information a
/// `LearnPolicy` implementation encodes implicitly; declaring it lets the
/// analyzer prove the digest layout and the installed entries agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnContract {
    /// NF the contract belongs to (the NF's own naming, as in
    /// `register_learn_policy`).
    pub nf: String,
    /// Digest stream the policy consumes.
    pub stream: String,
    /// Table the policy installs into.
    pub target_table: String,
    /// Action the installed entries invoke.
    pub target_action: String,
    /// Digest field index installed as each match key, in key order.
    pub key_map: Vec<usize>,
    /// Digest field index bound to each action parameter, in parameter
    /// order.
    pub arg_map: Vec<usize>,
}

impl LearnContract {
    /// Entity name used in findings: `<nf>/<stream>`.
    pub fn entity(&self) -> String {
        format!("{}/{}", self.nf, self.stream)
    }
}

/// Natural width of an expression, mirroring the interpreter (binary ops
/// take the left operand's width).
fn expr_width(program: &Program, action: &ActionDef, e: &Expr) -> u16 {
    match e {
        Expr::Const(v) => v.bits(),
        Expr::Field(fr) => program.field_width(fr).unwrap_or(128),
        Expr::Param(p) => action
            .params
            .iter()
            .find(|(n, _)| n == p)
            .map(|(_, w)| *w)
            .unwrap_or(128),
        Expr::Add(a, _)
        | Expr::Sub(a, _)
        | Expr::And(a, _)
        | Expr::Or(a, _)
        | Expr::Xor(a, _)
        | Expr::Shl(a, _)
        | Expr::Shr(a, _) => expr_width(program, action, a),
    }
}

/// The digest payload an action emits on `stream`: per-field widths, in
/// emission order. `None` if no action in the program digests that stream.
fn digest_layout(program: &Program, stream: &str) -> Option<Vec<u16>> {
    for action in program.actions.values() {
        for op in &action.ops {
            if let PrimitiveOp::Digest { name, fields } = op {
                if name == stream {
                    return Some(
                        fields
                            .iter()
                            .map(|f| expr_width(program, action, f))
                            .collect(),
                    );
                }
            }
        }
    }
    None
}

/// Verifies learn contracts against the program that emits the digests and
/// hosts the target tables (`DJV302`), and against the set of tables with
/// idle-timeout aging enabled (`DJV303`). Names are in the NF's own view —
/// pass the standalone NF program, or scope the contract for a merged one.
pub fn check_learn_contracts(
    program: &Program,
    contracts: &[LearnContract],
    aged_tables: &BTreeSet<String>,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    fn mismatch(report: &mut AnalysisReport, entity: &str, message: String, witness: Vec<String>) {
        report.findings.push(
            Finding::new(AnalysisCode::LearnContractMismatch, entity, message)
                .with_witness(witness),
        );
    }
    for c in contracts {
        let entity = c.entity();
        let witness = vec![format!(
            "contract {} -> {}.{}",
            entity, c.target_table, c.target_action
        )];
        let Some(layout) = digest_layout(program, &c.stream) else {
            mismatch(
                &mut report,
                &entity,
                format!(
                    "no action in program {} digests stream `{}`",
                    program.name, c.stream
                ),
                witness,
            );
            continue;
        };
        let Some(table) = program.tables.get(&c.target_table) else {
            mismatch(
                &mut report,
                &entity,
                format!("learn target table `{}` does not exist", c.target_table),
                witness,
            );
            continue;
        };
        if c.key_map.len() != table.keys.len() {
            mismatch(
                &mut report,
                &entity,
                format!(
                    "contract installs {} key(s) but table {} matches on {}",
                    c.key_map.len(),
                    table.name,
                    table.keys.len()
                ),
                witness.clone(),
            );
        } else {
            for (i, (digest_idx, key)) in c.key_map.iter().zip(&table.keys).enumerate() {
                let Some(dw) = layout.get(*digest_idx) else {
                    mismatch(
                        &mut report,
                        &entity,
                        format!(
                            "key {i} maps digest field {digest_idx}, but the digest \
                             carries only {} field(s)",
                            layout.len()
                        ),
                        witness.clone(),
                    );
                    continue;
                };
                let kw = program.field_width(&key.field).unwrap_or(0);
                if *dw != kw {
                    mismatch(
                        &mut report,
                        &entity,
                        format!(
                            "digest field {digest_idx} is {dw} bits but table key {} \
                             is {kw} bits",
                            key.field
                        ),
                        witness.clone(),
                    );
                }
            }
        }
        if !table.actions.contains(&c.target_action) {
            mismatch(
                &mut report,
                &entity,
                format!(
                    "table {} cannot run learn action `{}`",
                    table.name, c.target_action
                ),
                witness.clone(),
            );
        } else if let Some(action) = program.actions.get(&c.target_action) {
            if c.arg_map.len() != action.params.len() {
                mismatch(
                    &mut report,
                    &entity,
                    format!(
                        "contract binds {} argument(s) but action {} takes {}",
                        c.arg_map.len(),
                        action.name,
                        action.params.len()
                    ),
                    witness.clone(),
                );
            } else {
                for (j, (digest_idx, (pname, pw))) in
                    c.arg_map.iter().zip(&action.params).enumerate()
                {
                    let Some(dw) = layout.get(*digest_idx) else {
                        mismatch(
                            &mut report,
                            &entity,
                            format!(
                                "argument {j} maps digest field {digest_idx}, but the \
                                 digest carries only {} field(s)",
                                layout.len()
                            ),
                            witness.clone(),
                        );
                        continue;
                    };
                    if dw != pw {
                        mismatch(
                            &mut report,
                            &entity,
                            format!(
                                "digest field {digest_idx} is {dw} bits but action \
                                 parameter {pname} is {pw} bits"
                            ),
                            witness.clone(),
                        );
                    }
                }
            }
        }
        if !aged_tables.contains(&c.target_table) {
            report.findings.push(
                Finding::new(
                    AnalysisCode::LearnWithoutAging,
                    &entity,
                    format!(
                        "learn target table `{}` has no idle-timeout aging: learned \
                         entries accumulate until the table exhausts",
                        c.target_table
                    ),
                )
                .with_witness(vec![format!(
                    "enable with Deployment::set_idle_timeout(\"{}\", \"{}\", ..)",
                    c.nf, c.target_table
                )]),
            );
        }
    }
    report.sort();
    report
}

/// Cross-pipelet register hazard analysis (`DJV301`): flags every register
/// array accessed from two or more of the given programs when at least one
/// of them writes it. `programs` pairs a label (e.g. the pipelet id) with
/// the composed program running there.
pub fn analyze_pipelets(programs: &[(String, &Program)]) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    // register -> per-label access summary
    let mut by_register: BTreeMap<String, BTreeMap<String, dejavu_p4ir::RegisterAccess>> =
        BTreeMap::new();
    for (label, program) in programs {
        for (reg, access) in register_accesses(program) {
            by_register
                .entry(reg)
                .or_default()
                .insert(label.clone(), access);
        }
    }
    for (reg, sites) in by_register {
        if sites.len() < 2 {
            continue;
        }
        if !sites.values().any(|a| a.writes) {
            continue; // read-only sharing is safe
        }
        let witness: Vec<String> = sites
            .iter()
            .map(|(label, a)| {
                let mode = match (a.reads, a.writes) {
                    (true, true) => "read+write",
                    (false, true) => "write",
                    _ => "read",
                };
                format!("{label}: {mode}")
            })
            .collect();
        report.findings.push(
            Finding::new(
                AnalysisCode::RegisterHazard,
                &reg,
                format!(
                    "register `{reg}` is accessed from {} pipelets with at least one \
                     writer; per-pipelet state cannot be shared coherently",
                    sites.len()
                ),
            )
            .with_witness(witness),
        );
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::header::FieldRef;
    use dejavu_p4ir::table::{MatchKind, RegisterDef, TableDef, TableKey};
    use dejavu_p4ir::{fref, HeaderType};

    fn learn_program() -> Program {
        let mut p = Program::new("nf");
        p.header_types.insert(
            "ipv4".into(),
            HeaderType::new("ipv4", vec![("src_addr", 32u16), ("dst_addr", 32)]).unwrap(),
        );
        p.actions.insert(
            "learn".into(),
            ActionDef::simple(
                "learn",
                vec![PrimitiveOp::Digest {
                    name: "flow".into(),
                    fields: vec![Expr::field("ipv4", "src_addr"), Expr::val(7, 16)],
                }],
            ),
        );
        p.actions.insert(
            "hit".into(),
            ActionDef {
                name: "hit".into(),
                params: vec![("port".into(), 16)],
                ops: vec![PrimitiveOp::Set {
                    dst: FieldRef::meta("egress_spec"),
                    value: Expr::Param("port".into()),
                }],
            },
        );
        p.tables.insert(
            "sessions".into(),
            TableDef {
                name: "sessions".into(),
                keys: vec![TableKey {
                    field: fref("ipv4", "src_addr"),
                    kind: MatchKind::Exact,
                }],
                actions: vec!["hit".into()],
                default_action: "hit".into(),
                default_action_args: vec![dejavu_p4ir::Value::new(0, 16)],
                size: 1024,
            },
        );
        p
    }

    fn contract() -> LearnContract {
        LearnContract {
            nf: "nf".into(),
            stream: "flow".into(),
            target_table: "sessions".into(),
            target_action: "hit".into(),
            key_map: vec![0],
            arg_map: vec![1],
        }
    }

    #[test]
    fn conforming_contract_needs_only_aging() {
        let p = learn_program();
        let none: BTreeSet<String> = BTreeSet::new();
        let report = check_learn_contracts(&p, &[contract()], &none);
        let codes: Vec<_> = report.findings.iter().map(|f| f.code.code()).collect();
        assert_eq!(codes, vec!["DJV303"]);
        let aged: BTreeSet<String> = ["sessions".to_string()].into();
        assert!(check_learn_contracts(&p, &[contract()], &aged)
            .findings
            .is_empty());
    }

    #[test]
    fn width_and_index_mismatches_flagged() {
        let p = learn_program();
        let aged: BTreeSet<String> = ["sessions".to_string()].into();
        let mut swapped = contract();
        swapped.key_map = vec![1]; // 16-bit digest field into a 32-bit key
        swapped.arg_map = vec![0]; // 32-bit digest field into a 16-bit param
        let report = check_learn_contracts(&p, &[swapped], &aged);
        assert_eq!(report.findings.len(), 2);
        assert!(report
            .findings
            .iter()
            .all(|f| f.code == AnalysisCode::LearnContractMismatch));

        let mut oob = contract();
        oob.key_map = vec![5];
        assert!(check_learn_contracts(&p, &[oob], &aged).has_errors());

        let mut ghost = contract();
        ghost.stream = "nope".into();
        let report = check_learn_contracts(&p, &[ghost], &aged);
        assert!(report.findings[0].message.contains("digests stream"));
    }

    #[test]
    fn register_hazard_across_pipelets() {
        let mut a = Program::new("a");
        a.registers.insert(
            "shared".into(),
            RegisterDef {
                name: "shared".into(),
                width_bits: 32,
                size: 16,
            },
        );
        a.actions.insert(
            "bump".into(),
            ActionDef::simple(
                "bump",
                vec![PrimitiveOp::RegisterWrite {
                    register: "shared".into(),
                    index: Expr::val(0, 8),
                    value: Expr::val(1, 32),
                }],
            ),
        );
        let mut b = Program::new("b");
        b.registers.insert(
            "shared".into(),
            RegisterDef {
                name: "shared".into(),
                width_bits: 32,
                size: 16,
            },
        );
        b.actions.insert(
            "peek".into(),
            ActionDef::simple(
                "peek",
                vec![PrimitiveOp::RegisterRead {
                    dst: FieldRef::meta("egress_spec"),
                    register: "shared".into(),
                    index: Expr::val(0, 8),
                }],
            ),
        );
        let report = analyze_pipelets(&[("pipe0".into(), &a), ("pipe1".into(), &b)]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].code, AnalysisCode::RegisterHazard);
        assert_eq!(
            report.findings[0].witness,
            vec!["pipe0: write", "pipe1: read"]
        );

        // Read-only sharing is not a hazard.
        let mut c = Program::new("c");
        c.actions.insert(
            "peek".into(),
            ActionDef::simple(
                "peek",
                vec![PrimitiveOp::RegisterRead {
                    dst: FieldRef::meta("egress_spec"),
                    register: "shared".into(),
                    index: Expr::val(0, 8),
                }],
            ),
        );
        let report = analyze_pipelets(&[("pipe0".into(), &b), ("pipe1".into(), &c)]);
        assert!(report.findings.is_empty());
    }
}
