//! On-chip packet routing (paper §3.4).
//!
//! > "We insert a branching table in the last MAU stage of all ingress
//! > pipelets, which directs packets to their next NFs based on the service
//! > path ID and index in the SFC header. … Routing rules of this table can
//! > only be installed after NF placement."
//!
//! Given a placement, the chain set, and the physical port configuration
//! (which port of each pipeline is in loopback mode, which port each chain
//! exits on), this module synthesizes every runtime table entry the
//! framework needs:
//!
//! * `dv_check_next_nf_<k>` — an entry per `(pathID, serviceIndex)` pair
//!   that dispatches slot *k*'s NF,
//! * `dv_branching` — per ingress pipelet: resubmit when the next NF is
//!   local, forward to the next pipelet's loopback port, or forward to the
//!   chain's exit port when done (default: punt unroutable packets),
//! * `dv_check_sfc_flags_<k>` — the constant flag-translation entries,
//! * `dv_decap` — strip the SFC header on the way out of exit ports.
//!
//! The synthesis mirrors the traversal cost model in [`crate::placement`] —
//! the packet test framework checks that packets driven through the
//! simulated switch take exactly the recirculation counts the model
//! predicts.

use crate::chain::ChainSet;
use crate::compose::{names, CompositionMode};
use crate::placement::Placement;
use crate::sfc::{NEXT_PROTO_IPV4, SFC_PORT_UNSET};
use dejavu_asic::{Gress, PipeletId, PortId, Switch, TofinoProfile};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Routing synthesis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingError {
    /// A pipeline needs a loopback port but none is configured.
    MissingLoopback {
        /// The pipeline.
        pipeline: usize,
    },
    /// A chain has no exit port.
    MissingExitPort {
        /// The chain's path ID.
        path_id: u16,
    },
    /// A chain references an unplaced NF.
    UnplacedNf(String),
    /// Exit port out of profile range.
    BadExitPort {
        /// The port.
        port: PortId,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::MissingLoopback { pipeline } => {
                write!(f, "pipeline {pipeline} has no loopback port configured")
            }
            RoutingError::MissingExitPort { path_id } => {
                write!(f, "chain {path_id} has no exit port")
            }
            RoutingError::UnplacedNf(nf) => write!(f, "NF {nf} is not placed"),
            RoutingError::BadExitPort { port } => write!(f, "exit port {port} out of range"),
        }
    }
}

impl std::error::Error for RoutingError {}

/// Physical routing configuration.
#[derive(Debug, Clone, Default)]
pub struct RoutingConfig {
    /// Loopback port per pipeline (at least one wherever recirculation into
    /// that pipeline is needed). The dedicated recirculation port is used
    /// automatically when no Ethernet loopback port is configured.
    pub loopback_port: BTreeMap<usize, PortId>,
    /// Exit port per chain path ID.
    pub exit_ports: BTreeMap<u16, PortId>,
    /// When true, completed chains are forwarded to `sfc.out_port` (the
    /// paper's "If the outPort of a packet is already set, the branching
    /// table will directly forward the packet to the port") instead of the
    /// statically configured exit port. Requires every chain to end in an
    /// NF that sets `sfc.out_port` (e.g. the Router); the static
    /// `exit_ports` are still used to size the decap entries.
    pub honor_out_port: bool,
}

impl RoutingConfig {
    /// Loopback port of a pipeline, falling back to the dedicated
    /// recirculation port.
    pub fn loopback_of(&self, pipeline: usize) -> PortId {
        self.loopback_port
            .get(&pipeline)
            .copied()
            .unwrap_or(dejavu_asic::switch::RECIRC_PORT_BASE + pipeline as PortId)
    }
}

/// All synthesized entries, ready to install.
#[derive(Debug, Clone, Default)]
pub struct RoutingSynthesis {
    /// `(pipelet, table name, entry)` triples.
    pub entries: Vec<(PipeletId, String, TableEntry)>,
}

/// Ethernet type restored on decapsulation for an SFC next-protocol code.
pub fn ethertype_for_proto(code: u8) -> u16 {
    match code {
        NEXT_PROTO_IPV4 => 0x0800,
        0x02 => 0x0806,
        0x03 => 0x86dd,
        _ => 0xffff,
    }
}

/// Extra parameters for segment synthesis on a multi-switch cluster.
#[derive(Debug, Clone, Default)]
pub struct SegmentOptions {
    /// NFs hosted on *other* switches, mapped to the local port that leads
    /// toward them (the inter-switch link). The branching table forwards
    /// there and the packet rides the wire, still SFC-encapsulated.
    pub remote_ports: BTreeMap<String, PortId>,
    /// Whether exit ports decapsulate. True on the final switch of a
    /// cluster (and on single-switch deployments); false on middle switches
    /// whose "exit" is the forward link — stripping the SFC header there
    /// would break the rest of the chain.
    pub decap_on_exit: bool,
}

impl SegmentOptions {
    /// Single-switch defaults: no remote NFs, decapsulate on exit.
    pub fn single_switch() -> Self {
        SegmentOptions {
            remote_ports: BTreeMap::new(),
            decap_on_exit: true,
        }
    }
}

impl RoutingSynthesis {
    /// Synthesizes all framework entries for a deployed placement.
    pub fn synthesize(
        placement: &Placement,
        chains: &ChainSet,
        profile: &TofinoProfile,
        config: &RoutingConfig,
    ) -> Result<RoutingSynthesis, RoutingError> {
        Self::synthesize_segment(
            placement,
            chains,
            profile,
            config,
            &SegmentOptions::single_switch(),
        )
    }

    /// Segment synthesis: like [`Self::synthesize`], but NFs listed in
    /// `segment.remote_ports` are reachable through an inter-switch link
    /// instead of a local pipelet (§7's back-to-back clusters).
    pub fn synthesize_segment(
        placement: &Placement,
        chains: &ChainSet,
        profile: &TofinoProfile,
        config: &RoutingConfig,
        segment: &SegmentOptions,
    ) -> Result<RoutingSynthesis, RoutingError> {
        let mut out = RoutingSynthesis::default();
        out.synth_check_next_nf(placement, chains);
        out.synth_flag_entries(placement);
        out.synth_branching(placement, chains, profile, config, segment)?;
        if segment.decap_on_exit {
            out.synth_decap(placement, chains, profile, config)?;
        }
        Ok(out)
    }

    /// Installs every synthesized entry into the switch (programs must be
    /// loaded already).
    pub fn apply(&self, switch: &mut Switch) -> Result<(), dejavu_p4ir::IrError> {
        for (pipelet, table, entry) in &self.entries {
            switch.install_entry(*pipelet, table, entry.clone())?;
        }
        Ok(())
    }

    /// Entries destined for one pipelet + table (tests).
    pub fn entries_for(&self, pipelet: PipeletId, table: &str) -> Vec<&TableEntry> {
        self.entries
            .iter()
            .filter(|(p, t, _)| *p == pipelet && t == table)
            .map(|(_, _, e)| e)
            .collect()
    }

    fn synth_check_next_nf(&mut self, placement: &Placement, chains: &ChainSet) {
        for (pipelet, nfs) in &placement.pipelets {
            for (slot, nf) in nfs.iter().enumerate() {
                let table = names::check_next_nf(slot);
                for chain in &chains.chains {
                    for (idx, cnf) in chain.nfs.iter().enumerate() {
                        if cnf == nf {
                            self.entries.push((
                                *pipelet,
                                table.clone(),
                                TableEntry {
                                    matches: vec![
                                        KeyMatch::Exact(Value::new(u128::from(chain.path_id), 16)),
                                        KeyMatch::Exact(Value::new(idx as u128, 8)),
                                    ],
                                    action: names::PROCEED.into(),
                                    action_args: vec![],
                                    priority: 0,
                                },
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Constant flag-translation entries: one per platform-metadata flag,
    /// priority-ordered (drop > to-CPU > resubmit > mirror).
    fn synth_flag_entries(&mut self, placement: &Placement) {
        let flag_entry = |bit: usize, action: &str, priority: i32| {
            let mut matches = vec![KeyMatch::Any; 4];
            matches[bit] = KeyMatch::Ternary(Value::new(1, 1), Value::new(1, 1));
            TableEntry {
                matches,
                action: action.into(),
                action_args: vec![],
                priority,
            }
        };
        for (pipelet, nfs) in &placement.pipelets {
            let slots = match placement.mode(*pipelet) {
                CompositionMode::Sequential => nfs.len(),
                CompositionMode::Parallel => 1.min(nfs.len()),
            };
            for slot in 0..slots {
                let table = names::check_sfc_flags(slot);
                for e in [
                    flag_entry(0, names::FLAG_DROP, 40),
                    flag_entry(1, names::FLAG_TO_CPU, 30),
                    flag_entry(2, names::FLAG_RESUBMIT, 20),
                    flag_entry(3, names::FLAG_MIRROR, 10),
                ] {
                    self.entries.push((*pipelet, table.clone(), e));
                }
            }
        }
    }

    fn synth_branching(
        &mut self,
        placement: &Placement,
        chains: &ChainSet,
        profile: &TofinoProfile,
        config: &RoutingConfig,
        segment: &SegmentOptions,
    ) -> Result<(), RoutingError> {
        // All ingress pipelets carry the branching table — even NF-less ones
        // that packets merely pass through after a loopback.
        let ingress_pipelets: Vec<PipeletId> =
            (0..profile.pipelines).map(PipeletId::ingress).collect();
        for chain in &chains.chains {
            let exit_port =
                *config
                    .exit_ports
                    .get(&chain.path_id)
                    .ok_or(RoutingError::MissingExitPort {
                        path_id: chain.path_id,
                    })?;
            let exit_pipeline = profile
                .pipeline_of_port(usize::from(exit_port))
                .ok_or(RoutingError::BadExitPort { port: exit_port })?;
            for index in 0..=chain.nfs.len() {
                for &ing in &ingress_pipelets {
                    let action = self.branching_action(
                        placement,
                        chain,
                        index,
                        ing,
                        exit_port,
                        exit_pipeline,
                        profile,
                        config,
                        segment,
                    )?;
                    self.entries.push((
                        ing,
                        names::BRANCHING.into(),
                        TableEntry {
                            matches: vec![
                                KeyMatch::Exact(Value::new(u128::from(chain.path_id), 16)),
                                KeyMatch::Exact(Value::new(index as u128, 8)),
                            ],
                            action: action.0,
                            action_args: action.1,
                            priority: 0,
                        },
                    ));
                }
            }
        }
        Ok(())
    }

    /// The branching action for `(chain, index)` observed at ingress pipelet
    /// `at`: `(action name, args)`.
    #[allow(clippy::too_many_arguments)]
    fn branching_action(
        &self,
        placement: &Placement,
        chain: &crate::chain::ChainPolicy,
        index: usize,
        at: PipeletId,
        exit_port: PortId,
        exit_pipeline: usize,
        _profile: &TofinoProfile,
        config: &RoutingConfig,
        segment: &SegmentOptions,
    ) -> Result<(String, Vec<Value>), RoutingError> {
        let port_arg = |p: PortId| vec![Value::new(u128::from(p), 16)];
        if index >= chain.nfs.len() {
            // Chain complete: out the exit port (its egress decapsulates).
            // With honor_out_port, defer to the port the Router wrote into
            // the SFC header.
            return Ok(if config.honor_out_port {
                (names::FWD_OUT.into(), vec![])
            } else {
                (names::FWD.into(), port_arg(exit_port))
            });
        }
        let nf = &chain.nfs[index];
        let Some(target) = placement.location(nf) else {
            // Remote NF: forward toward its switch over the link port.
            if let Some(&link) = segment.remote_ports.get(nf) {
                return Ok((names::FWD.into(), port_arg(link)));
            }
            return Err(RoutingError::UnplacedNf(nf.clone()));
        };
        match target.gress {
            Gress::Ingress if target == at => {
                // Local but missed this pass: resubmit.
                Ok((names::RESUBMIT.into(), vec![]))
            }
            Gress::Ingress => {
                // Another pipeline's ingress: loop through its loopback port.
                Ok((
                    names::FWD.into(),
                    port_arg(config.loopback_of(target.pipeline)),
                ))
            }
            Gress::Egress => {
                // Send to egress(target.pipeline); the port decides what
                // happens after that pipe: loopback when the chain continues,
                // exit when it ends there.
                let after = self.index_after_egress_pass(placement, chain, index, target);
                if after >= chain.nfs.len() && target.pipeline == exit_pipeline {
                    Ok((names::FWD.into(), port_arg(exit_port)))
                } else {
                    Ok((
                        names::FWD.into(),
                        port_arg(config.loopback_of(target.pipeline)),
                    ))
                }
            }
        }
    }

    /// Simulates one egress pass starting at `index`: how far the chain
    /// advances while consecutive NFs sit on `pipelet` in runnable slot
    /// order.
    fn index_after_egress_pass(
        &self,
        placement: &Placement,
        chain: &crate::chain::ChainPolicy,
        mut index: usize,
        pipelet: PipeletId,
    ) -> usize {
        let mut pass_slot: isize = -1;
        let mut ran = 0usize;
        while index < chain.nfs.len() {
            let nf = &chain.nfs[index];
            if placement.location(nf) != Some(pipelet) {
                break;
            }
            let slot = placement.slot(nf).expect("placed NF has slot") as isize;
            let runnable = match placement.mode(pipelet) {
                CompositionMode::Sequential => slot > pass_slot,
                CompositionMode::Parallel => ran == 0,
            };
            if !runnable {
                break;
            }
            pass_slot = slot;
            ran += 1;
            index += 1;
        }
        index
    }

    fn synth_decap(
        &mut self,
        _placement: &Placement,
        chains: &ChainSet,
        profile: &TofinoProfile,
        config: &RoutingConfig,
    ) -> Result<(), RoutingError> {
        // One decap entry per (exit port, next protocol) on the owning
        // egress pipelet, for the protocols we encapsulate.
        let mut seen = std::collections::BTreeSet::new();
        for chain in &chains.chains {
            let exit_port =
                *config
                    .exit_ports
                    .get(&chain.path_id)
                    .ok_or(RoutingError::MissingExitPort {
                        path_id: chain.path_id,
                    })?;
            let pipeline = profile
                .pipeline_of_port(usize::from(exit_port))
                .ok_or(RoutingError::BadExitPort { port: exit_port })?;
            for proto in [NEXT_PROTO_IPV4, 0x02u8, 0x03u8] {
                if !seen.insert((exit_port, proto)) {
                    continue;
                }
                self.entries.push((
                    PipeletId::egress(pipeline),
                    names::DECAP.into(),
                    TableEntry {
                        matches: vec![
                            KeyMatch::Exact(Value::new(u128::from(exit_port), 16)),
                            KeyMatch::Exact(Value::new(u128::from(proto), 8)),
                        ],
                        action: names::DO_DECAP.into(),
                        action_args: vec![Value::new(u128::from(ethertype_for_proto(proto)), 16)],
                        priority: 0,
                    },
                ));
            }
        }
        Ok(())
    }
}

/// Sanity-checks a routing config against a chain set: every chain has an
/// in-range exit port, and the `out_port` sentinel is representable.
pub fn validate_config(
    chains: &ChainSet,
    profile: &TofinoProfile,
    config: &RoutingConfig,
) -> Result<(), RoutingError> {
    for chain in &chains.chains {
        let port = *config
            .exit_ports
            .get(&chain.path_id)
            .ok_or(RoutingError::MissingExitPort {
                path_id: chain.path_id,
            })?;
        if profile.pipeline_of_port(usize::from(port)).is_none() || port >= SFC_PORT_UNSET {
            return Err(RoutingError::BadExitPort { port });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainPolicy;

    fn fig6_placement() -> Placement {
        Placement::sequential(vec![
            (PipeletId::ingress(0), vec!["A", "B"]),
            (PipeletId::egress(1), vec!["C"]),
            (PipeletId::ingress(1), vec!["D"]),
            (PipeletId::egress(0), vec!["E", "F"]),
        ])
    }

    fn chains() -> ChainSet {
        ChainSet::new(vec![ChainPolicy::new(
            1,
            "abcdef",
            vec!["A", "B", "C", "D", "E", "F"],
            1.0,
        )])
        .unwrap()
    }

    fn config() -> RoutingConfig {
        RoutingConfig {
            loopback_port: [(0, 15), (1, 31)].into_iter().collect(),
            exit_ports: [(1u16, 2 as PortId)].into_iter().collect(),
            ..Default::default()
        }
    }

    fn synth() -> RoutingSynthesis {
        RoutingSynthesis::synthesize(
            &fig6_placement(),
            &chains(),
            &TofinoProfile::wedge_100b_32x(),
            &config(),
        )
        .unwrap()
    }

    fn branching_action_at(
        s: &RoutingSynthesis,
        pipeline: usize,
        index: u128,
    ) -> (String, Vec<Value>) {
        let e = s
            .entries_for(PipeletId::ingress(pipeline), names::BRANCHING)
            .into_iter()
            .find(|e| match &e.matches[1] {
                KeyMatch::Exact(v) => v.raw() == index,
                _ => false,
            })
            .expect("entry exists");
        (e.action.clone(), e.action_args.clone())
    }

    #[test]
    fn dispatch_entries_per_path_index_pair() {
        let s = synth();
        // Slot 0 of ingress 0 hosts A → entry (path 1, index 0).
        let entries = s.entries_for(PipeletId::ingress(0), &names::check_next_nf(0));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].matches[0], KeyMatch::Exact(Value::new(1, 16)));
        assert_eq!(entries[0].matches[1], KeyMatch::Exact(Value::new(0, 8)));
        // Slot 1 hosts B → index 1.
        let entries = s.entries_for(PipeletId::ingress(0), &names::check_next_nf(1));
        assert_eq!(entries[0].matches[1], KeyMatch::Exact(Value::new(1, 8)));
    }

    #[test]
    fn branching_follows_fig6b_traversal() {
        let s = synth();
        // At ingress 0 after A,B ran (index 2, next = C on egress 1): the
        // chain continues after C (D on ingress 1), so forward to pipeline
        // 1's loopback port 31.
        let (action, args) = branching_action_at(&s, 0, 2);
        assert_eq!(action, names::FWD);
        assert_eq!(args[0].raw(), 31);
        // At ingress 1 after D ran (index 4, next = E on egress 0): E and F
        // both run in egress 0 and the chain then ends; exit port 2 is on
        // pipeline 0 → forward straight to the exit port.
        let (action, args) = branching_action_at(&s, 1, 4);
        assert_eq!(action, names::FWD);
        assert_eq!(args[0].raw(), 2);
        // Completed chain (index 6) from anywhere → exit port.
        let (action, args) = branching_action_at(&s, 0, 6);
        assert_eq!(action, names::FWD);
        assert_eq!(args[0].raw(), 2);
    }

    #[test]
    fn local_ingress_miss_resubmits() {
        // Chain B then A, both on ingress 0 in slot order [A, B].
        let placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["A", "B"])]);
        let chains = ChainSet::new(vec![ChainPolicy::new(1, "ba", vec!["B", "A"], 1.0)]).unwrap();
        let s = RoutingSynthesis::synthesize(
            &placement,
            &chains,
            &TofinoProfile::wedge_100b_32x(),
            &config(),
        )
        .unwrap();
        // After B ran (index 1, next = A, local at ingress 0) → resubmit.
        let (action, _) = branching_action_at(&s, 0, 1);
        assert_eq!(action, names::RESUBMIT);
    }

    #[test]
    fn decap_entries_on_exit_pipeline() {
        let s = synth();
        let entries = s.entries_for(PipeletId::egress(0), names::DECAP);
        assert_eq!(entries.len(), 3); // ipv4, arp, ipv6 codes for port 2
        assert!(entries.iter().all(|e| e.action == names::DO_DECAP));
        // IPv4 restores 0x0800.
        let ip = entries
            .iter()
            .find(|e| matches!(&e.matches[1], KeyMatch::Exact(v) if v.raw() == u128::from(NEXT_PROTO_IPV4)))
            .unwrap();
        assert_eq!(ip.action_args[0].raw(), 0x0800);
    }

    #[test]
    fn flag_entries_priority_ordered() {
        let s = synth();
        let entries = s.entries_for(PipeletId::ingress(0), &names::check_sfc_flags(0));
        assert_eq!(entries.len(), 4);
        let drop = entries
            .iter()
            .find(|e| e.action == names::FLAG_DROP)
            .unwrap();
        let mirror = entries
            .iter()
            .find(|e| e.action == names::FLAG_MIRROR)
            .unwrap();
        assert!(drop.priority > mirror.priority);
    }

    #[test]
    fn missing_exit_port_rejected() {
        let mut cfg = config();
        cfg.exit_ports.clear();
        let err = RoutingSynthesis::synthesize(
            &fig6_placement(),
            &chains(),
            &TofinoProfile::wedge_100b_32x(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, RoutingError::MissingExitPort { .. }));
    }

    #[test]
    fn unplaced_nf_rejected() {
        let placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["A"])]);
        let err = RoutingSynthesis::synthesize(
            &placement,
            &chains(),
            &TofinoProfile::wedge_100b_32x(),
            &config(),
        )
        .unwrap_err();
        assert!(matches!(err, RoutingError::UnplacedNf(_)));
    }

    #[test]
    fn config_validation() {
        let profile = TofinoProfile::wedge_100b_32x();
        assert!(validate_config(&chains(), &profile, &config()).is_ok());
        let mut bad = config();
        bad.exit_ports.insert(1, 999);
        assert!(matches!(
            validate_config(&chains(), &profile, &bad).unwrap_err(),
            RoutingError::BadExitPort { .. }
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(ethertype_for_proto(NEXT_PROTO_IPV4), 0x0800);
        assert_eq!(ethertype_for_proto(0x02), 0x0806);
        assert_eq!(ethertype_for_proto(0x77), 0xffff);
    }
}
