//! Merged control plane (paper §7, "Control plane merge").
//!
//! After Dejavu merges N data-plane programs into one, the NFs' control
//! planes still speak their *original* API — "install an entry into my
//! `lb_session` table". The paper proposes a translation layer mapping the
//! original control-plane APIs onto the merged SFC program. [`ControlPlane`]
//! is that layer:
//!
//! * [`ControlPlane::install`] — translate `(nf, table, entry)` to the
//!   merged table name on the pipelet hosting the NF, and install it,
//! * [`ControlPlane::process_punts`] — the to-CPU loop: packets an NF sent
//!   to the control plane (e.g. the Fig. 4 load balancer's session misses)
//!   are handed to a registered per-NF handler, which may install entries
//!   and ask for reinjection ("the control plane will simply install a new
//!   session … and reinject the packet into the data plane").
//! * [`ControlPlane::process_digests`] — the learn loop: digests the data
//!   plane emitted (`digest(...)` in an action, queued per pipeline by the
//!   switch) are dispatched to the [`LearnPolicy`] registered for their
//!   stream, which turns flow observations into table entries — the fast
//!   learn path that installs state *without* punting the packet itself.

use crate::deploy::Deployment;
use dejavu_asic::switch::Disposition;
use dejavu_asic::{MetricsSnapshot, PortId, Switch, Traversal};
use dejavu_p4ir::table::TableEntry;
use dejavu_p4ir::{IrError, Value};
use std::collections::BTreeMap;

/// What a punt handler asks the control plane to do.
#[derive(Debug, Clone, Default)]
pub struct PuntResponse {
    /// Entries to install, as `(nf, table, entry)` in the NF's own naming.
    pub install: Vec<(String, String, TableEntry)>,
    /// Reinject the punted packet afterwards.
    pub reinject: bool,
    /// Bytes to reinject instead of the punted ones. Handlers typically use
    /// [`rewind_and_clear`] so the NF that punted re-executes against the
    /// freshly installed entry; when `None`, the control plane reinjects
    /// the punted bytes with the SFC platform flags cleared (the stale
    /// to-CPU flag would otherwise punt the packet forever).
    pub reinject_bytes: Option<Vec<u8>>,
}

/// Clears the SFC header's platform flags in wire bytes (no-op when the
/// packet carries no SFC header).
pub fn clear_sfc_flags(bytes: &mut [u8]) {
    let Some(mut h) = read_wire_sfc(bytes) else {
        return;
    };
    h.resub_flag = false;
    h.recirc_flag = false;
    h.drop_flag = false;
    h.mirror_flag = false;
    h.to_cpu_flag = false;
    write_wire_sfc(bytes, &h);
}

/// Prepares a punted packet for reinjection after the remedy was installed:
/// clears the platform flags and rewinds the service index by one, so the
/// NF that punted (whose dispatch advanced the index before the flag check
/// caught the punt) runs again — this time hitting the new entry. Returns
/// `None` when the packet has no SFC header or the index is already 0.
pub fn rewind_and_clear(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut out = bytes.to_vec();
    let mut h = read_wire_sfc(&out)?;
    if h.service_index == 0 {
        return None;
    }
    h.service_index -= 1;
    h.resub_flag = false;
    h.recirc_flag = false;
    h.drop_flag = false;
    h.mirror_flag = false;
    h.to_cpu_flag = false;
    write_wire_sfc(&mut out, &h);
    Some(out)
}

fn read_wire_sfc(bytes: &[u8]) -> Option<crate::sfc::SfcHeader> {
    if bytes.len() < 34 {
        return None;
    }
    let ether_type = u16::from_be_bytes([bytes[12], bytes[13]]);
    if ether_type != crate::sfc::SFC_ETHERTYPE {
        return None;
    }
    let hdr: [u8; 20] = bytes[14..34].try_into().ok()?;
    Some(crate::sfc::SfcHeader::from_bytes(&hdr))
}

fn write_wire_sfc(bytes: &mut [u8], h: &crate::sfc::SfcHeader) {
    bytes[14..34].copy_from_slice(&h.to_bytes());
}

/// Handler invoked for packets an NF punted to the CPU. Receives the punted
/// wire bytes; returns what to do.
pub type PuntHandler = Box<dyn FnMut(&[u8]) -> PuntResponse>;

/// What a learn policy asks the control plane to do with one digest.
#[derive(Debug, Clone, Default)]
pub struct LearnResponse {
    /// Entries to install, as `(nf, table, entry)` in the NF's own naming.
    pub install: Vec<(String, String, TableEntry)>,
}

/// A pluggable consumer of one digest stream. Implementations turn the
/// field values an action's `digest(...)` carried into table entries — a
/// NAT learning return-path bindings, an LB pinning a session to a backend.
///
/// Any `FnMut(usize, &[Value]) -> LearnResponse` closure is a policy (the
/// arguments are the emitting pipeline and the digest's field values).
///
/// Policies are `Send`: the cluster runtime's controller thread owns them
/// (see [`crate::transport::cluster::ClusterHandle::register_learn_policy`]),
/// so a boxed policy must be movable across threads.
pub trait LearnPolicy: Send {
    /// Handles one digest from `pipeline` carrying `values`.
    fn on_digest(&mut self, pipeline: usize, values: &[Value]) -> LearnResponse;
}

impl<F: FnMut(usize, &[Value]) -> LearnResponse + Send> LearnPolicy for F {
    fn on_digest(&mut self, pipeline: usize, values: &[Value]) -> LearnResponse {
        self(pipeline, values)
    }
}

/// The merged control plane.
pub struct ControlPlane {
    handlers: BTreeMap<String, PuntHandler>,
    /// Learn policies keyed by merged digest stream name (`<nf>__<stream>`).
    learn_policies: BTreeMap<String, Box<dyn LearnPolicy>>,
    /// Declared learn contracts, verified by `dejavu_core::analyze`.
    learn_contracts: Vec<crate::analyze::LearnContract>,
    /// Packets punted to the CPU, with the port they were injected on.
    punt_queue: Vec<(Vec<u8>, PortId)>,
    /// Telemetry state at the previous [`ControlPlane::scrape`].
    last_scrape: MetricsSnapshot,
    /// Statistics.
    pub stats: ControlPlaneStats,
}

/// Counters of control-plane activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlPlaneStats {
    /// Punted packets seen.
    pub punts: u64,
    /// Entries installed through the translation layer.
    pub installs: u64,
    /// Packets reinjected.
    pub reinjections: u64,
    /// Telemetry scrapes performed.
    pub scrapes: u64,
    /// Digests consumed by the learn loop.
    pub digests: u64,
    /// Entries installed by learn policies (excludes idempotent re-learns).
    pub learns: u64,
}

impl Default for ControlPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl ControlPlane {
    /// An empty control plane.
    pub fn new() -> Self {
        ControlPlane {
            handlers: BTreeMap::new(),
            learn_policies: BTreeMap::new(),
            learn_contracts: Vec::new(),
            punt_queue: Vec::new(),
            last_scrape: MetricsSnapshot::default(),
            stats: ControlPlaneStats::default(),
        }
    }

    /// Periodic telemetry scrape: captures the switch's metrics and returns
    /// the delta since the previous scrape (the first scrape returns totals
    /// since boot). The control plane keeps the cumulative snapshot, so a
    /// monitoring loop gets lossless non-overlapping increments no matter
    /// how often it runs.
    pub fn scrape(&mut self, switch: &Switch) -> MetricsSnapshot {
        let now = switch.metrics_snapshot();
        let delta = now.diff(&self.last_scrape);
        self.last_scrape = now;
        self.stats.scrapes += 1;
        delta
    }

    /// The cumulative snapshot as of the last [`ControlPlane::scrape`].
    pub fn last_scrape(&self) -> &MetricsSnapshot {
        &self.last_scrape
    }

    /// Registers the punt handler of an NF.
    pub fn register_handler(&mut self, nf: &str, handler: PuntHandler) {
        self.handlers.insert(nf.to_string(), handler);
    }

    /// Registers the learn policy for an NF's digest stream. The stream is
    /// named in the NF's own view — `("nat", "flow")` resolves to the merged
    /// `nat__flow` stream that the NF's `digest("flow", …)` primitive emits
    /// after composition.
    pub fn register_learn_policy(&mut self, nf: &str, stream: &str, policy: Box<dyn LearnPolicy>) {
        self.learn_policies
            .insert(crate::merge::scoped(nf, stream), policy);
    }

    /// Declares the learn contract for an NF's digest stream. Contracts are
    /// not enforced at runtime; they are checked statically by
    /// [`crate::analyze::check_learn_contracts`] against the NF's program.
    pub fn register_learn_contract(&mut self, contract: crate::analyze::LearnContract) {
        self.learn_contracts.push(contract);
    }

    /// Learn contracts declared so far, in registration order.
    pub fn learn_contracts(&self) -> &[crate::analyze::LearnContract] {
        &self.learn_contracts
    }

    /// Drains the switch's learn queues and dispatches each digest to the
    /// policy registered for its stream (digests with no policy are
    /// dropped, as a hardware learn filter would). Requested entries are
    /// installed through the translation layer; an entry that is already
    /// installed is skipped, which makes learning idempotent — duplicate
    /// digests raced in before the first install, and entries aged out and
    /// re-observed, both converge. Returns the number of entries installed.
    pub fn process_digests(
        &mut self,
        switch: &mut Switch,
        deployment: &Deployment,
    ) -> Result<usize, IrError> {
        self.process_digests_counted(switch, deployment)
            .map(|(_, installed)| installed)
    }

    /// Like [`ControlPlane::process_digests`] but also reports how many
    /// digests were consumed: returns `(digests_seen, entries_installed)`.
    /// The cluster facade uses this to build its merged per-switch report.
    pub fn process_digests_counted(
        &mut self,
        switch: &mut Switch,
        deployment: &Deployment,
    ) -> Result<(usize, usize), IrError> {
        let digests = switch.drain_digests();
        let mut seen = 0usize;
        let mut installed = 0usize;
        for (pipeline, record) in digests {
            let Some(policy) = self.learn_policies.get_mut(&record.name) else {
                continue;
            };
            self.stats.digests += 1;
            seen += 1;
            let resp = policy.on_digest(pipeline, &record.values);
            for (nf, table, entry) in resp.install {
                if deployment.entry_installed(switch, &nf, &table, &entry) {
                    continue;
                }
                deployment.install(switch, &nf, &table, entry)?;
                self.stats.installs += 1;
                self.stats.learns += 1;
                installed += 1;
            }
        }
        Ok((seen, installed))
    }

    /// Translates and installs an entry through the NF's original API view:
    /// `(nf, table)` resolves to the merged `<nf>__<table>` on the pipelet
    /// hosting the NF.
    pub fn install(
        &mut self,
        switch: &mut Switch,
        deployment: &Deployment,
        nf: &str,
        table: &str,
        entry: TableEntry,
    ) -> Result<(), IrError> {
        deployment.install(switch, nf, table, entry)?;
        self.stats.installs += 1;
        Ok(())
    }

    /// Records a punted packet for later processing.
    pub fn enqueue_punt(&mut self, bytes: Vec<u8>, in_port: PortId) {
        self.stats.punts += 1;
        self.punt_queue.push((bytes, in_port));
    }

    /// Convenience: inject a packet and, if it lands at the CPU, queue it.
    pub fn inject_tracking_punts(
        &mut self,
        switch: &mut Switch,
        bytes: Vec<u8>,
        port: PortId,
    ) -> Result<Traversal, IrError> {
        let t = switch.inject(dejavu_asic::InjectedPacket::new(bytes, port))?;
        if t.disposition == Disposition::ToCpu {
            self.enqueue_punt(t.final_bytes.clone(), port);
        }
        Ok(t)
    }

    /// Drains the punt queue: every punted packet goes to every registered
    /// handler (an NF handler that does not recognize the packet returns an
    /// empty response). Installs requested entries and reinjects packets,
    /// returning the traversals of reinjected packets.
    pub fn process_punts(
        &mut self,
        switch: &mut Switch,
        deployment: &Deployment,
    ) -> Result<Vec<Traversal>, IrError> {
        let queue = std::mem::take(&mut self.punt_queue);
        let mut traversals = Vec::new();
        for (bytes, in_port) in queue {
            let mut reinject = false;
            let mut installs = Vec::new();
            let mut override_bytes = None;
            for handler in self.handlers.values_mut() {
                let resp = handler(&bytes);
                installs.extend(resp.install);
                reinject |= resp.reinject;
                if resp.reinject_bytes.is_some() {
                    override_bytes = resp.reinject_bytes;
                }
            }
            for (nf, table, entry) in installs {
                self.install(switch, deployment, &nf, &table, entry)?;
            }
            if reinject {
                self.stats.reinjections += 1;
                let bytes = override_bytes.unwrap_or_else(|| {
                    let mut b = bytes;
                    clear_sfc_flags(&mut b);
                    b
                });
                let t = switch.inject(dejavu_asic::InjectedPacket::new(bytes, in_port))?;
                if t.disposition == Disposition::ToCpu {
                    // Still punting: requeue (handler may converge next round).
                    self.enqueue_punt(t.final_bytes.clone(), in_port);
                }
                traversals.push(t);
            }
        }
        Ok(traversals)
    }

    /// Number of packets waiting in the punt queue.
    pub fn pending_punts(&self) -> usize {
        self.punt_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn punt_queue_and_stats() {
        let mut cp = ControlPlane::new();
        cp.enqueue_punt(vec![1, 2, 3], 0);
        cp.enqueue_punt(vec![4], 1);
        assert_eq!(cp.pending_punts(), 2);
        assert_eq!(cp.stats.punts, 2);
    }

    #[test]
    fn scrape_returns_non_overlapping_deltas() {
        use dejavu_asic::TofinoProfile;
        let mut cp = ControlPlane::new();
        let mut sw = Switch::new(TofinoProfile::tiny());
        sw.set_telemetry(true);
        // No program loaded: the packet traverses ingress0 and is dropped,
        // which still books telemetry.
        let _ = sw.inject(dejavu_asic::InjectedPacket::new(vec![0u8; 64], 0));
        let first = cp.scrape(&sw);
        assert_eq!(first.counter("packets_injected"), 1);
        assert_eq!(first.counter("packets_dropped"), 1);
        // Nothing happened since: the next delta is empty, not a repeat.
        let second = cp.scrape(&sw);
        assert!(second.is_zero());
        assert_eq!(cp.stats.scrapes, 2);
        assert_eq!(cp.last_scrape().counter("packets_dropped"), 1);
    }

    #[test]
    fn handler_registration() {
        let mut cp = ControlPlane::new();
        cp.register_handler("lb", Box::new(|_| PuntResponse::default()));
        assert_eq!(cp.handlers.len(), 1);
    }
    // Full punt → install → reinject round-trips are exercised by the
    // cross-crate integration tests, where a real LB NF is deployed.
}
