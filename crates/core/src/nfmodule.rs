//! The NF programming interface (paper §3.1).
//!
//! Dejavu lets developers write NFs as modular control blocks with one
//! argument:
//!
//! ```text
//! control XX_control(inout all_headers_t hdr);
//! ```
//!
//! The `hdr` argument carries protocol headers *and* the SFC header — NFs
//! express platform effects (drop, to-CPU, mirror, resubmit) by setting
//! `hdr.sfc.*` flags, never by touching platform metadata directly. The
//! framework's `check_sfcFlags` stage translates those flags afterwards.
//!
//! [`NfModule`] wraps a validated program and enforces that contract:
//! programs that read or write standard metadata are rejected with an
//! [`ApiViolation`]. NF-local scratch metadata (declared via
//! `meta_fields`) is allowed — the merge step namespaces it per NF.

use crate::sfc::{sfc_header_type, SFC_HEADER};
use dejavu_p4ir::program::STANDARD_METADATA;
use dejavu_p4ir::{FieldRef, IrError, Program};
use std::fmt;

/// Why a program does not conform to the Dejavu NF API.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiViolation {
    /// The program failed base IR validation.
    InvalidProgram(String),
    /// The program reads or writes platform (standard) metadata directly.
    TouchesPlatformMetadata {
        /// Offending field.
        field: String,
        /// Where it was found.
        context: String,
    },
    /// The program declares an `sfc` header type that differs from the
    /// canonical Dejavu layout.
    SfcLayoutMismatch,
    /// An NF-local metadata field shadows a standard metadata name.
    ShadowsStandardMetadata {
        /// The shadowing field name.
        field: String,
    },
}

impl fmt::Display for ApiViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiViolation::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            ApiViolation::TouchesPlatformMetadata { field, context } => {
                write!(
                    f,
                    "NF touches platform metadata {field} in {context} — use hdr.sfc.* instead"
                )
            }
            ApiViolation::SfcLayoutMismatch => {
                write!(
                    f,
                    "NF declares an sfc header that differs from the canonical layout"
                )
            }
            ApiViolation::ShadowsStandardMetadata { field } => {
                write!(f, "NF metadata field {field} shadows standard metadata")
            }
        }
    }
}

impl std::error::Error for ApiViolation {}

/// A network function: a program validated against the Dejavu NF API.
#[derive(Debug, Clone, PartialEq)]
pub struct NfModule {
    program: Program,
}

impl NfModule {
    /// Wraps a *framework-supplied* NF that is allowed to touch platform
    /// metadata directly (the paper's Classifier and Router are "supplied
    /// by the Dejavu framework for all SFC paths" — the Classifier must
    /// copy the physical ingress port into `sfc.in_port`, for example).
    /// Base validation and the SFC-layout check still apply.
    pub fn new_privileged(program: Program) -> Result<Self, ApiViolation> {
        program
            .validate()
            .map_err(|e: IrError| ApiViolation::InvalidProgram(e.to_string()))?;
        if let Some(ht) = program.header_types.get(SFC_HEADER) {
            if *ht != sfc_header_type() {
                return Err(ApiViolation::SfcLayoutMismatch);
            }
        }
        for f in &program.meta_fields {
            if STANDARD_METADATA.iter().any(|(n, _)| *n == f.name) {
                return Err(ApiViolation::ShadowsStandardMetadata {
                    field: f.name.clone(),
                });
            }
        }
        Ok(NfModule { program })
    }

    /// Wraps and validates an NF program.
    pub fn new(program: Program) -> Result<Self, ApiViolation> {
        program
            .validate()
            .map_err(|e: IrError| ApiViolation::InvalidProgram(e.to_string()))?;

        // NF-local metadata must not shadow standard names.
        for f in &program.meta_fields {
            if STANDARD_METADATA.iter().any(|(n, _)| *n == f.name) {
                return Err(ApiViolation::ShadowsStandardMetadata {
                    field: f.name.clone(),
                });
            }
        }

        // If the NF references the sfc header it must use the canonical
        // layout (merging relies on identical definitions).
        if let Some(ht) = program.header_types.get(SFC_HEADER) {
            if *ht != sfc_header_type() {
                return Err(ApiViolation::SfcLayoutMismatch);
            }
        }

        // No direct platform-metadata access from actions, keys, or
        // conditions.
        let check = |fr: &FieldRef, context: String| -> Result<(), ApiViolation> {
            if fr.is_meta() && STANDARD_METADATA.iter().any(|(n, _)| *n == fr.field) {
                return Err(ApiViolation::TouchesPlatformMetadata {
                    field: fr.to_string(),
                    context,
                });
            }
            Ok(())
        };
        for act in program.actions.values() {
            for fr in act.reads().iter().chain(act.writes().iter()) {
                check(fr, format!("action {}", act.name))?;
            }
        }
        for t in program.tables.values() {
            for k in &t.keys {
                check(&k.field, format!("table {}", t.name))?;
            }
        }
        for cb in program.controls.values() {
            for stmt in &cb.body {
                for fr in collect_cond_reads(stmt) {
                    check(&fr, format!("control {}", cb.name))?;
                }
            }
        }
        Ok(NfModule { program })
    }

    /// The NF's name (the program name).
    pub fn name(&self) -> &str {
        &self.program.name
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The entry control's name.
    pub fn entry_control(&self) -> &str {
        &self.program.entry
    }
}

fn collect_cond_reads(stmt: &dejavu_p4ir::Stmt) -> Vec<FieldRef> {
    use dejavu_p4ir::Stmt;
    let mut out = Vec::new();
    match stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.extend(cond.reads());
            for s in then_branch.iter().chain(else_branch.iter()) {
                out.extend(collect_cond_reads(s));
            }
        }
        Stmt::ApplySelect { arms, default, .. } => {
            for (_, b) in arms {
                for s in b {
                    out.extend(collect_cond_reads(s));
                }
            }
            for s in default {
                out.extend(collect_cond_reads(s));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{fref, Expr, FieldRef};

    fn base_builder(name: &str) -> ProgramBuilder {
        ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(sfc_header_type())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
    }

    #[test]
    fn compliant_nf_accepted() {
        let p = base_builder("fw")
            .meta_field("verdict", 8)
            .action(
                ActionBuilder::new("deny")
                    .set(crate::sfc::sfc_field("drop_flag"), Expr::val(1, 1))
                    .build(),
            )
            .action(ActionBuilder::new("permit").build())
            .table(
                TableBuilder::new("acl")
                    .key_ternary(fref("ethernet", "src_mac"))
                    .action("deny")
                    .default_action("permit")
                    .build(),
            )
            .control(ControlBuilder::new("fw_ctrl").apply("acl").build())
            .entry("fw_ctrl")
            .build()
            .unwrap();
        let nf = NfModule::new(p).unwrap();
        assert_eq!(nf.name(), "fw");
        assert_eq!(nf.entry_control(), "fw_ctrl");
    }

    #[test]
    fn platform_metadata_write_rejected() {
        let p = base_builder("bad")
            .action(
                ActionBuilder::new("cheat")
                    .set(FieldRef::meta("egress_spec"), Expr::val(3, 16))
                    .build(),
            )
            .control(ControlBuilder::new("c").invoke("cheat").build())
            .entry("c")
            .build()
            .unwrap();
        let err = NfModule::new(p).unwrap_err();
        assert!(matches!(err, ApiViolation::TouchesPlatformMetadata { .. }));
    }

    #[test]
    fn platform_metadata_read_rejected() {
        let p = base_builder("bad")
            .meta_field("copy", 16)
            .action(
                ActionBuilder::new("peek")
                    .set(FieldRef::meta("copy"), Expr::meta("ingress_port"))
                    .build(),
            )
            .control(ControlBuilder::new("c").invoke("peek").build())
            .entry("c")
            .build()
            .unwrap();
        let err = NfModule::new(p).unwrap_err();
        assert!(matches!(err, ApiViolation::TouchesPlatformMetadata { .. }));
    }

    #[test]
    fn platform_metadata_key_rejected() {
        let p = base_builder("bad")
            .action(ActionBuilder::new("nop").build())
            .table(
                TableBuilder::new("t")
                    .key_exact(FieldRef::meta("ingress_port"))
                    .default_action("nop")
                    .build(),
            )
            .control(ControlBuilder::new("c").apply("t").build())
            .entry("c")
            .build()
            .unwrap();
        let err = NfModule::new(p).unwrap_err();
        assert!(matches!(err, ApiViolation::TouchesPlatformMetadata { .. }));
    }

    #[test]
    fn shadowing_standard_metadata_rejected() {
        let p = base_builder("bad")
            .meta_field("drop_flag", 1)
            .action(ActionBuilder::new("nop").build())
            .control(ControlBuilder::new("c").invoke("nop").build())
            .entry("c")
            .build()
            .unwrap();
        let err = NfModule::new(p).unwrap_err();
        assert!(matches!(err, ApiViolation::ShadowsStandardMetadata { .. }));
    }

    #[test]
    fn wrong_sfc_layout_rejected() {
        let bogus_sfc = dejavu_p4ir::HeaderType::new(SFC_HEADER, vec![("path_id", 16u16)]).unwrap();
        let p = ProgramBuilder::new("bad")
            .header(well_known::ethernet())
            .header(bogus_sfc)
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .accept("eth")
                    .start("eth"),
            )
            .action(ActionBuilder::new("nop").build())
            .control(ControlBuilder::new("c").invoke("nop").build())
            .entry("c")
            .build()
            .unwrap();
        assert_eq!(
            NfModule::new(p).unwrap_err(),
            ApiViolation::SfcLayoutMismatch
        );
    }
}
