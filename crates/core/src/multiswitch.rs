//! Multi-switch chaining (paper §7, "Towards clusters of switch data
//! planes").
//!
//! > "In the simplest case, multiple switches can be chained back-to-back to
//! > provide the same bandwidth of a single switch but with manyfold more
//! > MAU stages. … Our off-chip recirculation latency in Fig 8(b) also
//! > reflects that the packet transition delay from one switch to another is
//! > low enough to be practical."
//!
//! This module extends the placement machinery to a linear cluster of
//! ASICs: NFs live on `(switch, pipelet)` locations; transitions between
//! switches pay an off-chip hop (≈145 ns per the Fig. 8(b) measurement)
//! instead of an on-chip recirculation (≈75 ns). The optimizer minimizes a
//! weighted mix of on-chip recirculations and inter-switch hops, and a
//! latency estimator prices whole chains.

use crate::chain::{ChainPolicy, ChainSet};
use crate::placement::{Placement, PlacementError, PlacementProblem, TraversalCost};
use dejavu_asic::TimingModel;

/// Placement over a back-to-back cluster: one single-switch placement per
/// member, plus the switch each NF is pinned to.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterPlacement {
    /// Per-switch placements, indexed by position in the cluster chain.
    pub switches: Vec<Placement>,
}

impl ClusterPlacement {
    /// Which switch hosts an NF.
    pub fn switch_of(&self, nf: &str) -> Option<usize> {
        self.switches.iter().position(|p| p.location(nf).is_some())
    }
}

/// Cost of one chain over a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterCost {
    /// On-chip recirculations (sum across member switches).
    pub recirculations: u32,
    /// On-chip resubmissions.
    pub resubmissions: u32,
    /// Off-chip switch-to-switch hops.
    pub inter_switch_hops: u32,
}

impl ClusterCost {
    /// Latency contribution of the loops and hops under a timing model
    /// (pipe traversals excluded — those depend on chain length, not
    /// placement).
    pub fn loop_latency_ns(&self, t: &TimingModel) -> f64 {
        f64::from(self.recirculations) * t.recirc_on_chip_ns
            + f64::from(self.resubmissions) * t.resubmit_ns
            + f64::from(self.inter_switch_hops) * t.recirc_off_chip_ns
    }
}

/// A cluster placement problem: the single-switch surrogate applies per
/// member; chains may span switches in cluster order.
#[derive(Debug, Clone)]
pub struct ClusterProblem {
    /// The single-switch problem template (stage budgets, cost weights).
    pub template: PlacementProblem,
    /// Number of back-to-back switches.
    pub cluster_size: usize,
    /// Objective weight of one inter-switch hop relative to one on-chip
    /// recirculation. Off-chip hops cost bandwidth on inter-switch links
    /// and ≈2× the latency (Fig. 8(b)).
    pub hop_weight: f64,
}

impl ClusterProblem {
    /// New problem over `cluster_size` switches.
    pub fn new(template: PlacementProblem, cluster_size: usize) -> Self {
        ClusterProblem {
            template,
            cluster_size,
            hop_weight: 2.0,
        }
    }

    /// Evaluates one chain: per-switch traversal costs plus hops between
    /// consecutive switches in visit order. Chains must visit switches in
    /// monotonically non-decreasing cluster order (back-to-back wiring);
    /// each order violation costs a full round trip (2 hops).
    pub fn chain_cost(
        &self,
        chain: &ChainPolicy,
        placement: &ClusterPlacement,
    ) -> Result<ClusterCost, PlacementError> {
        let mut cost = ClusterCost::default();
        // Split the chain into per-switch segments.
        let mut segments: Vec<(usize, Vec<String>)> = Vec::new();
        for nf in &chain.nfs {
            let sw = placement
                .switch_of(nf)
                .ok_or_else(|| PlacementError::UnplacedNf(nf.clone()))?;
            match segments.last_mut() {
                Some((s, seg)) if *s == sw => seg.push(nf.clone()),
                _ => segments.push((sw, vec![nf.clone()])),
            }
        }
        // Inter-switch hops: 1 per forward transition, 2 per backward
        // (round trip through the chain of switches is modelled coarsely).
        for w in segments.windows(2) {
            let (a, b) = (w[0].0 as i64, w[1].0 as i64);
            cost.inter_switch_hops += if b >= a {
                (b - a).unsigned_abs() as u32
            } else {
                2 * (a - b).unsigned_abs() as u32
            };
        }
        // Per-switch: evaluate each segment with the single-switch model.
        for (i, (sw, seg)) in segments.iter().enumerate() {
            let sub_chain = ChainPolicy {
                path_id: chain.path_id,
                name: format!("{}#{}", chain.name, i),
                nfs: seg.clone(),
                weight: chain.weight,
            };
            // Entry/exit pipelines: use the template defaults; refining per
            // segment is future work mirrored from the paper's.
            let c: TraversalCost = crate::placement::traverse(
                &sub_chain,
                &placement.switches[*sw],
                self.template.entry_pipeline,
                self.template.exit_pipeline,
                false,
            )?;
            cost.recirculations += c.recirculations;
            cost.resubmissions += c.resubmissions;
        }
        Ok(cost)
    }

    /// Weighted objective over all chains.
    pub fn cost(
        &self,
        chains: &ChainSet,
        placement: &ClusterPlacement,
    ) -> Result<f64, PlacementError> {
        let mut total = 0.0;
        for chain in &chains.chains {
            let c = self.chain_cost(chain, placement)?;
            total += chain.weight
                * (f64::from(c.recirculations) * self.template.cost_model.recirc_weight
                    + f64::from(c.resubmissions) * self.template.cost_model.resub_weight
                    + f64::from(c.inter_switch_hops) * self.hop_weight);
        }
        Ok(total)
    }

    /// Greedy spill placement: fill switch 0's pipelets with the
    /// single-switch greedy optimizer over the NFs that fit; overflow NFs
    /// spill to the next switch, preserving chain order.
    pub fn greedy_spill(&self) -> Result<ClusterPlacement, PlacementError> {
        let order = self.template.canonical_order();
        let mut remaining: Vec<String> = order;
        let mut switches = Vec::new();
        for _ in 0..self.cluster_size {
            if remaining.is_empty() {
                switches.push(Placement::default());
                continue;
            }
            // Take the longest prefix of `remaining` that fits one switch
            // under the stage surrogate.
            let mut take = remaining.len();
            loop {
                let prefix: Vec<String> = remaining[..take].to_vec();
                if self.prefix_fits(&prefix) || take == 0 {
                    break;
                }
                take -= 1;
            }
            if take == 0 {
                return Err(PlacementError::Infeasible(
                    "an NF does not fit any single switch".into(),
                ));
            }
            let prefix: Vec<String> = remaining.drain(..take).collect();
            // Optimize this switch's sub-problem with the single-switch
            // machinery over sub-chains restricted to the prefix.
            let sub_chains = self.restrict_chains(&prefix);
            let mut sub_problem = self.template.clone();
            sub_problem.chains = sub_chains;
            sub_problem.nf_stages = prefix
                .iter()
                .map(|n| {
                    (
                        n.clone(),
                        self.template.nf_stages.get(n).copied().unwrap_or(1),
                    )
                })
                .collect();
            let placed = sub_problem.greedy()?;
            switches.push(placed);
        }
        if !remaining.is_empty() {
            return Err(PlacementError::Infeasible(format!(
                "{} NFs left over after {} switches",
                remaining.len(),
                self.cluster_size
            )));
        }
        Ok(ClusterPlacement { switches })
    }

    /// Do these NFs fit a single switch (stage surrogate, ignoring pipelet
    /// split granularity beyond the per-pipelet bound)?
    fn prefix_fits(&self, nfs: &[String]) -> bool {
        // First-fit-decreasing bin packing over the switch's pipelets, with
        // the same stage surrogate the single-switch optimizers use — a
        // conservative feasibility check so the per-switch greedy pass
        // cannot be handed an impossible prefix.
        let bins = 2 * self.template.pipelines;
        let cap = self
            .template
            .stages_per_pipelet
            .saturating_sub(self.template.framework_stages_fixed);
        let mut sizes: Vec<u32> = nfs
            .iter()
            .map(|n| {
                self.template.nf_stages.get(n).copied().unwrap_or(1)
                    + self.template.framework_stages_per_nf
            })
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let mut load = vec![0u32; bins];
        'items: for size in sizes {
            for slot in load.iter_mut() {
                if *slot + size <= cap {
                    *slot += size;
                    continue 'items;
                }
            }
            return false;
        }
        true
    }

    /// Restricts every chain to the NFs present in `subset`, keeping order.
    fn restrict_chains(&self, subset: &[String]) -> ChainSet {
        let chains: Vec<ChainPolicy> = self
            .template
            .chains
            .chains
            .iter()
            .filter_map(|c| {
                let nfs: Vec<String> = c
                    .nfs
                    .iter()
                    .filter(|n| subset.contains(n))
                    .cloned()
                    .collect();
                if nfs.is_empty() {
                    None
                } else {
                    Some(ChainPolicy {
                        path_id: c.path_id,
                        name: c.name.clone(),
                        nfs,
                        weight: c.weight,
                    })
                }
            })
            .collect();
        ChainSet { chains }
    }
}

/// Latency estimate for a chain over a cluster: per-pipelet traversals plus
/// loop/hop penalties from the cost breakdown.
pub fn chain_latency_ns(
    cost: &ClusterCost,
    pipelet_passes: u32,
    stages_per_pipelet: usize,
    timing: &TimingModel,
) -> f64 {
    timing.mac_rx_ns
        + timing.mac_tx_ns
        + f64::from(pipelet_passes) * (timing.pipelet_ns(stages_per_pipelet) + timing.tm_ns)
        + cost.loop_latency_ns(timing)
}

// ---------------------------------------------------------------------
// Physical cluster execution
// ---------------------------------------------------------------------

use crate::deploy::{deploy, DeployError, DeployOptions, Deployment};
use crate::nfmodule::NfModule;
use crate::routing::{RoutingConfig, SegmentOptions};
use crate::transport::cluster::{ClusterReport, PerSwitchReport};
use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PortId, Switch, TofinoProfile, Traversal};
use dejavu_p4ir::IrError as AsicIrError;
use std::collections::BTreeMap;
use std::fmt;

/// A cluster configuration rejected at build time — the typed face of the
/// checks [`ClusterWiring::new`], [`deploy_cluster`] and
/// [`spawn_cluster`](crate::transport::cluster::spawn_cluster) perform
/// before any switch is configured.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterConfigError {
    /// The placement has zero member switches.
    EmptyCluster,
    /// The egress and ingress link ports collide: a switch would receive
    /// chain traffic on the same port it forwards out of.
    LinkPortCollision {
        /// The port claimed by both roles.
        port: PortId,
    },
    /// A chain's exit port collides with the inter-switch cable ports; in a
    /// multi-switch cluster the wiring owns those ports exclusively.
    ExitPortCollision {
        /// The chain whose exit port collides.
        path_id: u16,
        /// The colliding port.
        port: PortId,
    },
    /// The cable latency is not a finite, non-negative number.
    BadCableLatency(f64),
    /// A chain names an NF no provided module implements.
    DanglingNf {
        /// The unknown NF name.
        nf: String,
        /// The chain that references it.
        path_id: u16,
    },
    /// An NF is placed on more than one member switch.
    DuplicatePlacement {
        /// The NF placed twice.
        nf: String,
        /// First switch hosting it.
        first: usize,
        /// Second switch hosting it.
        second: usize,
    },
    /// A chain visits switches against cluster order; the wiring is
    /// forward-only, so the NF must be re-placed.
    NonMonotoneChain {
        /// The offending chain.
        path_id: u16,
        /// The NF whose placement goes backwards.
        nf: String,
        /// The switch the chain was already on.
        from: usize,
        /// The earlier switch the chain would have to jump back to.
        to: usize,
    },
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterConfigError::EmptyCluster => write!(f, "cluster has no member switches"),
            ClusterConfigError::LinkPortCollision { port } => {
                write!(f, "egress and ingress link ports both claim port {port}")
            }
            ClusterConfigError::ExitPortCollision { path_id, port } => write!(
                f,
                "chain {path_id} exits on port {port}, which the inter-switch wiring owns"
            ),
            ClusterConfigError::BadCableLatency(ns) => {
                write!(
                    f,
                    "cable latency {ns} ns is not a finite non-negative number"
                )
            }
            ClusterConfigError::DanglingNf { nf, path_id } => {
                write!(
                    f,
                    "chain {path_id} names NF {nf}, but no module implements it"
                )
            }
            ClusterConfigError::DuplicatePlacement { nf, first, second } => write!(
                f,
                "NF {nf} is placed on both switch {first} and switch {second}"
            ),
            ClusterConfigError::NonMonotoneChain {
                path_id,
                nf,
                from,
                to,
            } => write!(
                f,
                "chain {path_id} visits switch {to} (NF {nf}) after switch {from}; \
                 forward-only wiring requires non-decreasing order — re-place NF {nf}"
            ),
        }
    }
}

impl std::error::Error for ClusterConfigError {}

impl From<ClusterConfigError> for DeployError {
    fn from(e: ClusterConfigError) -> Self {
        DeployError::ClusterConfig(e)
    }
}

/// How consecutive cluster switches are wired: one unidirectional cable per
/// hop, from `egress_link_port` of switch *s* into `ingress_link_port` of
/// switch *s+1*.
#[derive(Debug, Clone, Copy)]
pub struct ClusterWiring {
    /// Port each non-final switch forwards chain traffic out of.
    pub egress_link_port: PortId,
    /// Port each non-first switch receives chain traffic on.
    pub ingress_link_port: PortId,
    /// One-way cable latency in nanoseconds (1 m DAC ≈ 5 ns; SerDes are
    /// already in the per-switch MAC accounting).
    pub cable_ns: f64,
}

impl Default for ClusterWiring {
    fn default() -> Self {
        ClusterWiring {
            egress_link_port: 14,
            ingress_link_port: 13,
            cable_ns: 5.0,
        }
    }
}

impl ClusterWiring {
    /// Validating constructor: rejects wirings whose link ports collide or
    /// whose cable latency is not a finite non-negative number, so a bad
    /// wiring fails where it is written instead of at deploy time.
    pub fn new(
        egress_link_port: PortId,
        ingress_link_port: PortId,
        cable_ns: f64,
    ) -> Result<Self, ClusterConfigError> {
        let w = ClusterWiring {
            egress_link_port,
            ingress_link_port,
            cable_ns,
        };
        w.validate()?;
        Ok(w)
    }

    /// Re-checks the constructor invariants (useful for wirings built with
    /// struct literals or mutated after construction).
    pub fn validate(&self) -> Result<(), ClusterConfigError> {
        if self.egress_link_port == self.ingress_link_port {
            return Err(ClusterConfigError::LinkPortCollision {
                port: self.egress_link_port,
            });
        }
        if !self.cable_ns.is_finite() || self.cable_ns < 0.0 {
            return Err(ClusterConfigError::BadCableLatency(self.cable_ns));
        }
        Ok(())
    }
}

/// A deployed, wired, executable cluster of switches (§7: "multiple
/// switches can be chained back-to-back to provide the same bandwidth of a
/// single switch but with manyfold more MAU stages").
#[derive(Debug)]
pub struct ClusterNet {
    /// The live member switches, in cluster order.
    pub switches: Vec<Switch>,
    /// Per-switch deployment handles (for rule installation).
    pub deployments: Vec<Deployment>,
    links: BTreeMap<(usize, PortId), (usize, PortId)>,
    cable_ns: f64,
}

/// End-to-end result of driving a packet through the cluster.
#[derive(Debug)]
pub struct ClusterTraversal {
    /// Per-switch traversals, in visit order: `(switch index, traversal)`.
    pub hops: Vec<(usize, Traversal)>,
    /// Final disposition (of the last switch visited).
    pub disposition: Disposition,
    /// Final wire bytes.
    pub final_bytes: Vec<u8>,
    /// Total latency including cable hops.
    pub latency_ns: f64,
    /// Total on-chip recirculations across switches.
    pub recirculations: usize,
    /// Inter-switch hops taken.
    pub inter_switch_hops: usize,
}

impl ClusterNet {
    /// Injects a packet on `port` of switch 0 and follows it across the
    /// cluster until it leaves, drops, or punts.
    pub fn inject(
        &mut self,
        packet: impl Into<InjectedPacket>,
    ) -> Result<ClusterTraversal, AsicIrError> {
        let InjectedPacket { bytes, port } = packet.into();
        let mut cur = 0usize;
        let mut cur_port = port;
        let mut cur_bytes = bytes;
        let mut hops = Vec::new();
        let mut latency = 0.0;
        let mut recircs = 0usize;
        let mut wire_hops = 0usize;
        loop {
            let t = self.switches[cur].inject(InjectedPacket::new(cur_bytes, cur_port))?;
            latency += t.latency_ns;
            recircs += t.recirculations;
            let disposition = t.disposition;
            let final_bytes = t.final_bytes.clone();
            hops.push((cur, t));
            match disposition {
                Disposition::Emitted { port: out } => {
                    if let Some(&(next, next_port)) = self.links.get(&(cur, out)) {
                        latency += self.cable_ns;
                        wire_hops += 1;
                        cur = next;
                        cur_port = next_port;
                        cur_bytes = final_bytes;
                        continue;
                    }
                    return Ok(ClusterTraversal {
                        hops,
                        disposition,
                        final_bytes,
                        latency_ns: latency,
                        recirculations: recircs,
                        inter_switch_hops: wire_hops,
                    });
                }
                other => {
                    return Ok(ClusterTraversal {
                        hops,
                        disposition: other,
                        final_bytes,
                        latency_ns: latency,
                        recirculations: recircs,
                        inter_switch_hops: wire_hops,
                    })
                }
            }
        }
    }

    /// Installs an NF rule on whichever switch hosts the NF.
    pub fn install(
        &mut self,
        nf: &str,
        table: &str,
        entry: dejavu_p4ir::table::TableEntry,
    ) -> Result<(), AsicIrError> {
        for i in 0..self.deployments.len() {
            if self.deployments[i].nf_location(nf).is_some() {
                return self.deployments[i].install(&mut self.switches[i], nf, table, entry);
            }
        }
        Err(AsicIrError::Undefined {
            kind: "NF placement",
            name: nf.to_string(),
        })
    }

    /// Which switch hosts an NF.
    pub fn switch_of(&self, nf: &str) -> Option<usize> {
        self.deployments
            .iter()
            .position(|d| d.nf_location(nf).is_some())
    }

    // ------------------------------------------------- flow-state sync

    /// Advances logical time on every member switch in lockstep and
    /// returns the merged [`ClusterReport`] — evictions attributed to the
    /// switch they aged out on, in the same shape the event-driven
    /// [`ClusterHandle`](crate::transport::cluster::ClusterHandle) reports.
    /// Keeping cluster clocks synchronized means a flow pinned on switch 0
    /// and its return-path state on switch 2 expire together.
    pub fn advance_time(&mut self, ticks: u64) -> ClusterReport {
        let mut report = ClusterReport::sized(self.switches.len());
        for (i, sw) in self.switches.iter_mut().enumerate() {
            for (pipelet, ev) in sw.advance_time(ticks) {
                report.per_switch[i].evictions += 1;
                report.evictions.push((i, pipelet, ev));
            }
        }
        report
    }

    /// Runs one learning round across the cluster: drains every member
    /// switch's digest queues through the shared control plane, installing
    /// learned entries on whichever switch hosts the target NF. Returns the
    /// merged [`ClusterReport`] shared with the event-driven handle.
    pub fn process_digests(
        &mut self,
        cp: &mut crate::control_plane::ControlPlane,
    ) -> Result<ClusterReport, AsicIrError> {
        let mut report = ClusterReport::sized(self.switches.len());
        for (i, (sw, dep)) in self.switches.iter_mut().zip(&self.deployments).enumerate() {
            let (seen, installed) = cp.process_digests_counted(sw, dep)?;
            report.per_switch[i] = PerSwitchReport {
                switch: i,
                evictions: 0,
                digests: seen,
                installed,
            };
            report.digests_seen += seen;
            report.entries_installed += installed;
        }
        Ok(report)
    }

    /// Snapshots the dynamic state of every loaded pipelet across the
    /// cluster — the cluster-wide checkpoint a coordinated upgrade or
    /// cross-switch re-placement starts from.
    pub fn snapshot_state(
        &self,
    ) -> Vec<(usize, dejavu_asic::PipeletId, dejavu_asic::StateSnapshot)> {
        let mut snaps = Vec::new();
        for (i, sw) in self.switches.iter().enumerate() {
            for pipelet in sw.loaded_pipelets() {
                if let Some(snap) = sw.snapshot_state(pipelet) {
                    snaps.push((i, pipelet, snap));
                }
            }
        }
        snaps
    }
}

/// Validates a cluster configuration and deploys one `(Switch, Deployment)`
/// pair per member — the shared builder behind both the lockstep
/// [`deploy_cluster`] and the event-driven
/// [`spawn_cluster`](crate::transport::cluster::spawn_cluster), so the two
/// runtimes are guaranteed to deploy identical members.
///
/// Checks performed before any switch is configured (all typed,
/// [`ClusterConfigError`]): non-empty placement, valid wiring, no exit-port
/// collisions with the cable ports, every chained NF backed by a module and
/// placed on exactly one switch, and every chain visiting switches in
/// non-decreasing cluster order (the wiring is forward-only).
pub(crate) fn build_cluster_members(
    nfs: &[&NfModule],
    chains: &ChainSet,
    placement: &ClusterPlacement,
    profile: &TofinoProfile,
    exit_ports: BTreeMap<u16, PortId>,
    wiring: &ClusterWiring,
    options: &DeployOptions,
) -> Result<Vec<(Switch, Deployment)>, DeployError> {
    let n = placement.switches.len();
    if n == 0 {
        return Err(ClusterConfigError::EmptyCluster.into());
    }
    wiring.validate().map_err(DeployError::from)?;
    if n > 1 {
        for (&path_id, &port) in &exit_ports {
            if port == wiring.egress_link_port || port == wiring.ingress_link_port {
                return Err(ClusterConfigError::ExitPortCollision { path_id, port }.into());
            }
        }
    }

    // Every chained NF must be backed by a module (dangling names would
    // otherwise surface deep inside the merge pass, chain by chain).
    for chain in &chains.chains {
        for nf in &chain.nfs {
            if !nfs.iter().any(|m| m.name() == *nf) {
                return Err(ClusterConfigError::DanglingNf {
                    nf: nf.clone(),
                    path_id: chain.path_id,
                }
                .into());
            }
        }
    }

    // Every chained NF placed on exactly one switch.
    for nf in chains.all_nfs() {
        let hosts: Vec<usize> = placement
            .switches
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.location(&nf).map(|_| i))
            .collect();
        match hosts.as_slice() {
            [] => return Err(DeployError::UnplacedNf(nf)),
            [_] => {}
            [first, second, ..] => {
                return Err(ClusterConfigError::DuplicatePlacement {
                    nf,
                    first: *first,
                    second: *second,
                }
                .into())
            }
        }
    }

    // Validate monotone chain order.
    let switch_of = |nf: &str| placement.switch_of(nf);
    for chain in &chains.chains {
        let mut last = 0usize;
        for nf in &chain.nfs {
            let s = switch_of(nf).ok_or_else(|| DeployError::UnplacedNf(nf.clone()))?;
            if s < last {
                return Err(ClusterConfigError::NonMonotoneChain {
                    path_id: chain.path_id,
                    nf: nf.clone(),
                    from: last,
                    to: s,
                }
                .into());
            }
            last = s;
        }
    }
    let final_switch = chains
        .chains
        .iter()
        .flat_map(|c| c.nfs.iter())
        .filter_map(|nf| switch_of(nf))
        .max()
        .unwrap_or(0);

    let mut members = Vec::new();
    for s in 0..n {
        let local = &placement.switches[s];
        // Remote NFs reachable over the forward link.
        let mut remote_ports = BTreeMap::new();
        for nf in chains.all_nfs() {
            if local.location(&nf).is_none() {
                remote_ports.insert(nf, wiring.egress_link_port);
            }
        }
        let is_final = s == final_switch;
        let config = RoutingConfig {
            loopback_port: BTreeMap::new(), // dedicated recirc ports
            exit_ports: if is_final {
                exit_ports.clone()
            } else {
                chains
                    .chains
                    .iter()
                    .map(|c| (c.path_id, wiring.egress_link_port))
                    .collect()
            },
            honor_out_port: false,
        };
        let seg_options = DeployOptions {
            entry_nf: options.entry_nf.clone(),
            modes: options.modes.clone(),
            segment: Some(SegmentOptions {
                remote_ports,
                decap_on_exit: is_final,
            }),
        };
        members.push(deploy(nfs, chains, local, profile, &config, &seg_options)?);
    }
    Ok(members)
}

/// Deploys a chain set across a back-to-back cluster and wires it up as a
/// lockstep [`ClusterNet`] (the in-process execution path; see
/// [`spawn_cluster`](crate::transport::cluster::spawn_cluster) for the
/// transport-backed runtime sharing this validation and deployment logic).
pub fn deploy_cluster(
    nfs: &[&NfModule],
    chains: &ChainSet,
    placement: &ClusterPlacement,
    profile: &TofinoProfile,
    exit_ports: BTreeMap<u16, PortId>,
    wiring: &ClusterWiring,
    options: &DeployOptions,
) -> Result<ClusterNet, DeployError> {
    let members =
        build_cluster_members(nfs, chains, placement, profile, exit_ports, wiring, options)?;
    let n = members.len();
    let (switches, deployments): (Vec<Switch>, Vec<Deployment>) = members.into_iter().unzip();
    let mut links = BTreeMap::new();
    for s in 0..n.saturating_sub(1) {
        links.insert(
            (s, wiring.egress_link_port),
            (s + 1, wiring.ingress_link_port),
        );
    }
    Ok(ClusterNet {
        switches,
        deployments,
        links,
        cable_ns: wiring.cable_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn big_problem() -> PlacementProblem {
        // Ten NFs of 4 stages each: too big for one 2-pipeline/12-stage
        // switch (surrogate: per-pipelet 12 stages, 4 pipelets, framework
        // overhead 2/NF + 1/pipelet).
        let nfs: Vec<String> = (0..10).map(|i| format!("N{i}")).collect();
        let chains = ChainSet::new(vec![ChainPolicy {
            path_id: 1,
            name: "long".into(),
            nfs: nfs.clone(),
            weight: 1.0,
        }])
        .unwrap();
        let stages: Map<String, u32> = nfs.iter().map(|n| (n.clone(), 4u32)).collect();
        PlacementProblem::new(chains, stages)
    }

    #[test]
    fn long_chain_spills_to_second_switch() {
        let problem = ClusterProblem::new(big_problem(), 3);
        let placement = problem.greedy_spill().unwrap();
        // At least two switches used.
        let used = placement
            .switches
            .iter()
            .filter(|p| p.pipelets.values().any(|v| !v.is_empty()))
            .count();
        assert!(used >= 2, "expected spill, used {used} switches");
        // Every NF placed exactly once.
        for i in 0..10 {
            assert!(placement.switch_of(&format!("N{i}")).is_some());
        }
    }

    #[test]
    fn cluster_cost_counts_hops() {
        let problem = ClusterProblem::new(big_problem(), 3);
        let placement = problem.greedy_spill().unwrap();
        let cost = problem
            .chain_cost(&problem.template.chains.chains[0], &placement)
            .unwrap();
        // Chain order follows cluster order → hops = used switches − 1.
        let used = placement
            .switches
            .iter()
            .filter(|p| p.pipelets.values().any(|v| !v.is_empty()))
            .count();
        assert_eq!(cost.inter_switch_hops as usize, used - 1);
    }

    #[test]
    fn too_small_cluster_is_infeasible() {
        let problem = ClusterProblem::new(big_problem(), 1);
        assert!(matches!(
            problem.greedy_spill().unwrap_err(),
            PlacementError::Infeasible(_)
        ));
    }

    #[test]
    fn off_chip_hops_cost_more_latency_than_recircs() {
        let t = TimingModel::tofino();
        let on_chip = ClusterCost {
            recirculations: 1,
            ..Default::default()
        };
        let off_chip = ClusterCost {
            inter_switch_hops: 1,
            ..Default::default()
        };
        assert!(off_chip.loop_latency_ns(&t) > on_chip.loop_latency_ns(&t));
        // ≈2× per the paper's takeaway 3.
        let ratio = off_chip.loop_latency_ns(&t) / on_chip.loop_latency_ns(&t);
        assert!((ratio - 145.0 / 75.0).abs() < 1e-9);
    }

    #[test]
    fn backward_transitions_cost_double() {
        // Chain visiting switch order 0 → 1 → 0: 1 forward hop + 2 backward.
        let mut template = big_problem();
        template.chains = ChainSet::new(vec![ChainPolicy::new(
            1,
            "zigzag",
            vec!["N0", "N1", "N2"],
            1.0,
        )])
        .unwrap();
        let problem = ClusterProblem::new(template, 2);
        let placement = ClusterPlacement {
            switches: vec![
                Placement::sequential(vec![(dejavu_asic::PipeletId::ingress(0), vec!["N0", "N2"])]),
                Placement::sequential(vec![(dejavu_asic::PipeletId::ingress(0), vec!["N1"])]),
            ],
        };
        let cost = problem
            .chain_cost(&problem.template.chains.chains[0], &placement)
            .unwrap();
        assert_eq!(cost.inter_switch_hops, 3);
    }

    #[test]
    fn latency_estimator_monotone_in_hops() {
        let t = TimingModel::tofino();
        let base = chain_latency_ns(&ClusterCost::default(), 2, 12, &t);
        let hop = chain_latency_ns(
            &ClusterCost {
                inter_switch_hops: 1,
                ..Default::default()
            },
            2,
            12,
            &t,
        );
        assert!(hop > base);
        assert!((hop - base - 145.0).abs() < 1e-9);
    }
}
