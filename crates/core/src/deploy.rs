//! End-to-end deployment: NFs + chains + placement → a configured switch.
//!
//! [`deploy`] runs the full Dejavu tool flow the paper describes:
//!
//! 1. merge the NF programs into one namespace with a generic parser
//!    ([`crate::merge`]),
//! 2. build a pipelet plan from the placement and compose each pipelet's
//!    program ([`crate::compose`]),
//! 3. compile every pipelet against the ASIC profile — placements that
//!    exceed stage or resource budgets are rejected here
//!    (`dejavu_compiler`),
//! 4. load programs onto a simulated switch, configure loopback ports,
//! 5. synthesize and install all framework routing entries
//!    ([`crate::routing`]).
//!
//! The result is a live [`Switch`] plus a [`Deployment`] handle that the
//! control plane uses to translate per-NF API calls onto merged tables.

use crate::chain::ChainSet;
use crate::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};
use crate::merge::{merge_programs, MergeError, MergedProgram};
use crate::nfmodule::NfModule;
use crate::placement::Placement;
use crate::routing::{validate_config, RoutingConfig, RoutingError, RoutingSynthesis};
use dejavu_asic::{Gress, PipeletId, Switch, TofinoProfile};
use dejavu_compiler::{Allocation, CompileError, StageAllocator};
use std::collections::BTreeMap;
use std::fmt;

/// Deployment failure.
#[derive(Debug)]
pub enum DeployError {
    /// Program merging failed.
    Merge(MergeError),
    /// A pipelet program failed to compose or validate.
    Compose(dejavu_p4ir::IrError),
    /// A pipelet program does not fit its stages/resources.
    Compile {
        /// The pipelet.
        pipelet: PipeletId,
        /// The compiler error.
        error: CompileError,
    },
    /// Routing synthesis failed.
    Routing(RoutingError),
    /// Switch configuration failed.
    Switch(dejavu_p4ir::IrError),
    /// The placement misses an NF that some chain needs.
    UnplacedNf(String),
    /// A multi-switch cluster configuration constraint was violated (typed:
    /// see [`ClusterConfigError`](crate::multiswitch::ClusterConfigError)).
    ClusterConfig(crate::multiswitch::ClusterConfigError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Merge(e) => write!(f, "merge: {e}"),
            DeployError::Compose(e) => write!(f, "compose: {e}"),
            DeployError::Compile { pipelet, error } => write!(f, "compile {pipelet}: {error}"),
            DeployError::Routing(e) => write!(f, "routing: {e}"),
            DeployError::Switch(e) => write!(f, "switch: {e}"),
            DeployError::UnplacedNf(nf) => write!(f, "NF {nf} not placed"),
            DeployError::ClusterConfig(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// A deployed service chain set.
#[derive(Debug)]
pub struct Deployment {
    /// The merged program namespace.
    pub merged: MergedProgram,
    /// The placement used.
    pub placement: Placement,
    /// The chain policies.
    pub chains: ChainSet,
    /// Physical routing configuration.
    pub config: RoutingConfig,
    /// Per-pipelet compilation results (resource usage, stage maps).
    pub allocations: BTreeMap<PipeletId, Allocation>,
    /// The synthesized routing entries.
    pub synthesis: RoutingSynthesis,
    /// Name of the chain-entry NF (classifier), if any.
    pub entry_nf: Option<String>,
    /// The deployment options used (needed to recompose pipelets on
    /// upgrade).
    options: DeployOptions,
    /// The switch profile deployed against.
    profile: TofinoProfile,
}

impl Deployment {
    /// Pipelet hosting an NF.
    pub fn nf_location(&self, nf: &str) -> Option<PipeletId> {
        self.placement.location(nf)
    }

    /// Merged table name of an NF's table on its pipelet.
    pub fn nf_table(&self, nf: &str, table: &str) -> (Option<PipeletId>, String) {
        (self.nf_location(nf), crate::merge::scoped(nf, table))
    }

    /// Installs a table entry through the NF's original API view: both the
    /// table name and the entry's action name are translated into the
    /// merged `<nf>__<name>` namespace, and the entry lands on the pipelet
    /// hosting the NF. This is the per-entry face of the §7 control-plane
    /// translation layer.
    pub fn install(
        &self,
        switch: &mut Switch,
        nf: &str,
        table: &str,
        mut entry: dejavu_p4ir::table::TableEntry,
    ) -> Result<(), dejavu_p4ir::IrError> {
        let pipelet = self
            .nf_location(nf)
            .ok_or(dejavu_p4ir::IrError::Undefined {
                kind: "NF placement",
                name: nf.to_string(),
            })?;
        entry.action = crate::merge::scoped(nf, &entry.action);
        switch.install_entry(pipelet, &crate::merge::scoped(nf, table), entry)
    }

    /// True when the exact entry (translated into the merged namespace) is
    /// already installed — the idempotence check behind the learning loop,
    /// so a digest retransmitted before the first install landed (or after
    /// an aged-out entry was re-learned) never duplicates an entry.
    pub fn entry_installed(
        &self,
        switch: &Switch,
        nf: &str,
        table: &str,
        entry: &dejavu_p4ir::table::TableEntry,
    ) -> bool {
        let Some(pipelet) = self.nf_location(nf) else {
            return false;
        };
        let Some(state) = switch.tables(pipelet) else {
            return false;
        };
        let mut scoped = entry.clone();
        scoped.action = crate::merge::scoped(nf, &scoped.action);
        state.contains_entry(&crate::merge::scoped(nf, table), &scoped)
    }

    /// Configures the idle timeout of an NF's table through the NF's
    /// original API view (see [`Switch::set_idle_timeout`]).
    pub fn set_idle_timeout(
        &self,
        switch: &mut Switch,
        nf: &str,
        table: &str,
        timeout: Option<u64>,
    ) -> Result<(), dejavu_p4ir::IrError> {
        let pipelet = self
            .nf_location(nf)
            .ok_or(dejavu_p4ir::IrError::Undefined {
                kind: "NF placement",
                name: nf.to_string(),
            })?;
        switch.set_idle_timeout(pipelet, &crate::merge::scoped(nf, table), timeout)
    }
}

/// Why an in-place NF upgrade was refused.
#[derive(Debug)]
pub enum UpgradeError {
    /// The NF is not part of this deployment.
    UnknownNf(String),
    /// The new version changes the generic parser (new headers / vertices);
    /// other pipelets would diverge — a full redeploy is required. This
    /// mirrors the operational reality §7 notes: "data plane programs have
    /// a much higher loading cost and should be operated at a relatively
    /// larger timescale".
    ParserChanged,
    /// Recomposition / recompilation / reload of the pipelet failed.
    Deploy(DeployError),
}

impl fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpgradeError::UnknownNf(nf) => write!(f, "NF {nf} is not deployed"),
            UpgradeError::ParserChanged => {
                write!(
                    f,
                    "upgrade changes the generic parser; full redeploy required"
                )
            }
            UpgradeError::Deploy(e) => write!(f, "upgrade failed: {e}"),
        }
    }
}

impl std::error::Error for UpgradeError {}

/// Result of a successful in-place NF upgrade.
#[derive(Debug)]
pub struct UpgradeOutcome {
    /// NFs co-located on the reloaded pipelet. Their dynamic state was
    /// migrated; rules the migration *dropped* (see `migration`) must be
    /// reinstalled by their control planes.
    pub affected_nfs: Vec<String>,
    /// Accounting of the state migration across the program swap.
    pub migration: dejavu_asic::MigrationReport,
}

/// Options for [`deploy`].
#[derive(Debug, Clone, Default)]
pub struct DeployOptions {
    /// NF dispatched when a packet has no SFC header yet (the classifier).
    pub entry_nf: Option<String>,
    /// Composition mode overrides per pipelet (default sequential).
    pub modes: BTreeMap<PipeletId, CompositionMode>,
    /// Multi-switch segment options: NFs reachable over inter-switch links
    /// and whether exit ports decapsulate. `None` = single-switch deployment.
    pub segment: Option<crate::routing::SegmentOptions>,
}

impl Deployment {
    /// §7 "service upgrade and expansion": hot-swaps one NF's implementation
    /// in place. Only the pipelet hosting the NF is recomposed, recompiled
    /// and reloaded — every other pipelet is untouched. The reloaded
    /// pipelet's state is *migrated* across the swap: its dynamic table
    /// entries, aging configuration and register cells are snapshotted
    /// before the reload and remapped onto the new program by merged name,
    /// so live flows (learned NAT bindings, LB affinity, conntrack state)
    /// survive the upgrade. Entries the new program can no longer hold —
    /// table removed, action gone, key shape changed — are reported in the
    /// returned [`UpgradeOutcome::migration`], never silently dropped. The
    /// pipelet's framework entries are reinstalled automatically.
    ///
    /// Upgrades that would change the *generic parser* are refused with
    /// [`UpgradeError::ParserChanged`] — the other pipelets still run the
    /// old parser, so such changes need a full [`deploy`].
    pub fn upgrade_nf(
        &mut self,
        switch: &mut Switch,
        new_nf: &NfModule,
        all_nfs: &[&NfModule],
    ) -> Result<UpgradeOutcome, UpgradeError> {
        let name = new_nf.name().to_string();
        let pipelet = self
            .nf_location(&name)
            .ok_or_else(|| UpgradeError::UnknownNf(name.clone()))?;

        // Re-merge with the upgraded NF substituted in.
        let replaced: Vec<&NfModule> = all_nfs
            .iter()
            .map(|nf| if nf.name() == name { new_nf } else { *nf })
            .collect();
        let merged = merge_programs("dejavu", &replaced)
            .map_err(|e| UpgradeError::Deploy(DeployError::Merge(e)))?;
        if merged.program.parser != self.merged.program.parser {
            return Err(UpgradeError::ParserChanged);
        }

        // Recompose and recompile just this pipelet.
        let nf_names = self
            .placement
            .pipelets
            .get(&pipelet)
            .cloned()
            .unwrap_or_default();
        let planned: Vec<PlannedNf> = nf_names
            .iter()
            .map(|n| {
                if self.options.entry_nf.as_deref() == Some(n.as_str()) {
                    PlannedNf::entry(n.clone())
                } else {
                    PlannedNf::indexed(n.clone())
                }
            })
            .collect();
        let plan = PipeletPlan {
            pipelet,
            nfs: planned,
            mode: self
                .options
                .modes
                .get(&pipelet)
                .copied()
                .unwrap_or_else(|| self.placement.mode(pipelet)),
        };
        let program = compose_pipelet(&merged, &plan)
            .map_err(|e| UpgradeError::Deploy(DeployError::Compose(e)))?;
        let allocation = StageAllocator::new(self.profile.clone())
            .with_lint_config(crate::lint::pipelet_lint_config(&program, &plan))
            .compile(&program)
            .map_err(|error| UpgradeError::Deploy(DeployError::Compile { pipelet, error }))?;

        // Snapshot the pipelet's mutable state before the reload wipes it.
        let snapshot = switch.snapshot_state(pipelet);

        switch
            .load_program(pipelet, program)
            .map_err(|e| UpgradeError::Deploy(DeployError::Switch(e)))?;
        self.allocations.insert(pipelet, allocation);
        self.merged = merged;

        // Reinstall the framework entries of the reloaded pipelet.
        for (p, table, entry) in &self.synthesis.entries {
            if *p == pipelet {
                switch
                    .install_entry(*p, table, entry.clone())
                    .map_err(|e| UpgradeError::Deploy(DeployError::Switch(e)))?;
            }
        }

        // Migrate surviving state onto the new program. The restore skips
        // entries already present (the framework entries just reinstalled),
        // so nothing is duplicated.
        let migration = match &snapshot {
            Some(snap) => switch
                .restore_state(pipelet, snap)
                .map_err(|e| UpgradeError::Deploy(DeployError::Switch(e)))?,
            None => dejavu_asic::MigrationReport::default(),
        };
        Ok(UpgradeOutcome {
            affected_nfs: nf_names,
            migration,
        })
    }
}

impl Deployment {
    /// §7 "failure handling": reacts to a port link failure.
    ///
    /// * If the failed port was a configured **loopback** port, recirculation
    ///   for its pipeline falls back to the dedicated recirculation port.
    /// * If it was a chain's **exit** port, the chain is moved to
    ///   `replacement_exit` (required in that case — the control plane must
    ///   know an alternate uplink).
    ///
    /// The framework routing entries are re-synthesized and swapped in
    /// atomically (clear + reinstall); NF tables and register state are
    /// untouched.
    pub fn handle_port_failure(
        &mut self,
        switch: &mut Switch,
        port: dejavu_asic::PortId,
        replacement_exit: Option<dejavu_asic::PortId>,
    ) -> Result<(), DeployError> {
        switch.set_port_down(port, true);

        let mut config = self.config.clone();
        // Loopback fallback: dropping the entry makes loopback_of() use the
        // dedicated recirculation port.
        config.loopback_port.retain(|_, p| *p != port);
        // Exit-port replacement.
        let affected: Vec<u16> = config
            .exit_ports
            .iter()
            .filter(|(_, p)| **p == port)
            .map(|(path, _)| *path)
            .collect();
        if !affected.is_empty() {
            let replacement = replacement_exit.ok_or(DeployError::Routing(
                crate::routing::RoutingError::MissingExitPort {
                    path_id: affected[0],
                },
            ))?;
            for path in affected {
                config.exit_ports.insert(path, replacement);
            }
        }
        validate_config(&self.chains, &self.profile, &config).map_err(DeployError::Routing)?;

        let synthesis =
            RoutingSynthesis::synthesize(&self.placement, &self.chains, &self.profile, &config)
                .map_err(DeployError::Routing)?;
        // Swap: clear every framework table the old synthesis touched, then
        // install the new entries.
        let mut cleared = std::collections::BTreeSet::new();
        for (pipelet, table, _) in &self.synthesis.entries {
            if cleared.insert((*pipelet, table.clone())) {
                switch.clear_table(*pipelet, table);
            }
        }
        synthesis.apply(switch).map_err(DeployError::Switch)?;
        self.synthesis = synthesis;
        self.config = config;
        Ok(())
    }
}

/// Runs the full flow; returns the configured switch and the deployment
/// handle.
pub fn deploy(
    nfs: &[&NfModule],
    chains: &ChainSet,
    placement: &Placement,
    profile: &TofinoProfile,
    config: &RoutingConfig,
    options: &DeployOptions,
) -> Result<(Switch, Deployment), DeployError> {
    // Every chained NF must be placed — locally, or (in a cluster segment)
    // reachable over an inter-switch link.
    for nf in chains.all_nfs() {
        let remote = options
            .segment
            .as_ref()
            .is_some_and(|seg| seg.remote_ports.contains_key(&nf));
        if placement.location(&nf).is_none() && !remote {
            return Err(DeployError::UnplacedNf(nf));
        }
    }
    validate_config(chains, profile, config).map_err(DeployError::Routing)?;

    let merged = merge_programs("dejavu", nfs).map_err(DeployError::Merge)?;
    let allocator = StageAllocator::new(profile.clone());

    let mut switch = Switch::new(profile.clone());
    let mut allocations = BTreeMap::new();

    // Every pipelet gets a program: pipelets without NFs still need the
    // generic parser plus branching (ingress) / decap (egress) so that
    // pass-through and loopback traffic is routed correctly.
    for pipeline in 0..profile.pipelines {
        for gress in [Gress::Ingress, Gress::Egress] {
            let pipelet = PipeletId { pipeline, gress };
            let nf_names = placement
                .pipelets
                .get(&pipelet)
                .cloned()
                .unwrap_or_default();
            let planned: Vec<PlannedNf> = nf_names
                .iter()
                .map(|n| {
                    if options.entry_nf.as_deref() == Some(n.as_str()) {
                        PlannedNf::entry(n.clone())
                    } else {
                        PlannedNf::indexed(n.clone())
                    }
                })
                .collect();
            let plan = PipeletPlan {
                pipelet,
                nfs: planned,
                // Mode resolution: explicit option override, then the
                // placement's own mode, then sequential.
                mode: options
                    .modes
                    .get(&pipelet)
                    .copied()
                    .unwrap_or_else(|| placement.mode(pipelet)),
            };
            let program = compose_pipelet(&merged, &plan).map_err(DeployError::Compose)?;
            let allocation = allocator
                .clone()
                .with_lint_config(crate::lint::pipelet_lint_config(&program, &plan))
                .compile(&program)
                .map_err(|error| DeployError::Compile { pipelet, error })?;
            switch
                .load_program(pipelet, program)
                .map_err(DeployError::Switch)?;
            allocations.insert(pipelet, allocation);
        }
    }

    // Loopback ports.
    for (&_pipeline, &port) in &config.loopback_port {
        switch
            .set_loopback(port, true)
            .map_err(DeployError::Switch)?;
    }

    // Routing entries.
    let segment = options
        .segment
        .clone()
        .unwrap_or_else(crate::routing::SegmentOptions::single_switch);
    let synthesis =
        RoutingSynthesis::synthesize_segment(placement, chains, profile, config, &segment)
            .map_err(DeployError::Routing)?;
    synthesis.apply(&mut switch).map_err(DeployError::Switch)?;

    Ok((
        switch,
        Deployment {
            merged,
            placement: placement.clone(),
            chains: chains.clone(),
            config: config.clone(),
            allocations,
            synthesis,
            entry_nf: options.entry_nf.clone(),
            options: options.clone(),
            profile: profile.clone(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainPolicy;
    use crate::sfc::sfc_header_type;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::well_known;

    /// Marker NF: on any IPv4 packet, XORs a bit pattern into src_addr so
    /// traversal order is observable.
    fn marker_nf(name: &str, bit: u32) -> NfModule {
        let p = ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(sfc_header_type())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("mark")
                    .set(
                        fref("ipv4", "src_addr"),
                        dejavu_p4ir::Expr::Xor(
                            Box::new(dejavu_p4ir::Expr::field("ipv4", "src_addr")),
                            Box::new(dejavu_p4ir::Expr::val(1u128 << bit, 32)),
                        ),
                    )
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("work")
                    .key_exact(fref("ipv4", "protocol"))
                    .default_action("mark")
                    .action("pass")
                    .size(16)
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("work").build())
            .entry("ctrl")
            .build()
            .unwrap();
        NfModule::new(p).unwrap()
    }

    #[test]
    fn deploy_small_chain_succeeds() {
        let a = marker_nf("alpha", 0);
        let b = marker_nf("beta", 1);
        let chains =
            ChainSet::new(vec![ChainPolicy::new(1, "ab", vec!["alpha", "beta"], 1.0)]).unwrap();
        let placement = Placement::sequential(vec![
            (PipeletId::ingress(0), vec!["alpha"]),
            (PipeletId::egress(0), vec!["beta"]),
        ]);
        let config = RoutingConfig {
            loopback_port: [(0, 15), (1, 31)].into_iter().collect(),
            exit_ports: [(1u16, 2u16)].into_iter().collect(),
            ..Default::default()
        };
        let (switch, deployment) = deploy(
            &[&a, &b],
            &chains,
            &placement,
            &TofinoProfile::wedge_100b_32x(),
            &config,
            &DeployOptions::default(),
        )
        .unwrap();
        // Every pipelet carries a program.
        for p in 0..2 {
            assert!(switch.program(PipeletId::ingress(p)).is_some());
            assert!(switch.program(PipeletId::egress(p)).is_some());
        }
        assert_eq!(deployment.nf_location("alpha"), Some(PipeletId::ingress(0)));
        let (loc, table) = deployment.nf_table("alpha", "work");
        assert_eq!(loc, Some(PipeletId::ingress(0)));
        assert_eq!(table, "alpha__work");
        // Allocations recorded for all four pipelets.
        assert_eq!(deployment.allocations.len(), 4);
    }

    #[test]
    fn unplaced_nf_rejected() {
        let a = marker_nf("alpha", 0);
        let chains =
            ChainSet::new(vec![ChainPolicy::new(1, "ab", vec!["alpha", "ghost"], 1.0)]).unwrap();
        let placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["alpha"])]);
        let config = RoutingConfig {
            loopback_port: BTreeMap::new(),
            exit_ports: [(1u16, 2u16)].into_iter().collect(),
            ..Default::default()
        };
        let err = deploy(
            &[&a],
            &chains,
            &placement,
            &TofinoProfile::wedge_100b_32x(),
            &config,
            &DeployOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DeployError::UnplacedNf(_)));
    }

    #[test]
    fn oversized_placement_rejected_at_compile() {
        // A pipelet plan that cannot fit: an NF with a huge table chain on
        // the tiny profile.
        let a = marker_nf("alpha", 0);
        let b = marker_nf("beta", 1);
        let c = marker_nf("gamma", 2);
        let d = marker_nf("delta", 3);
        let chains = ChainSet::new(vec![ChainPolicy::new(
            1,
            "abcd",
            vec!["alpha", "beta", "gamma", "delta"],
            1.0,
        )])
        .unwrap();
        // All four sequential on one tiny pipelet (4 stages): the framework
        // dispatch chain alone needs 5 dependent stages.
        let placement = Placement::sequential(vec![(
            PipeletId::ingress(0),
            vec!["alpha", "beta", "gamma", "delta"],
        )]);
        let config = RoutingConfig {
            loopback_port: BTreeMap::new(),
            exit_ports: [(1u16, 2u16)].into_iter().collect(),
            ..Default::default()
        };
        let err = deploy(
            &[&a, &b, &c, &d],
            &chains,
            &placement,
            &TofinoProfile::tiny(),
            &config,
            &DeployOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DeployError::Compile { .. }), "got: {err}");
    }
}
