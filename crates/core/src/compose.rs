//! NF composition (paper §3.2, Fig. 5) and the framework data-plane logic.
//!
//! Given the merged program namespace and a *pipelet plan* (which NFs live
//! on this pipelet, in what order, composed how), this module generates the
//! pipelet's executable program:
//!
//! * **Sequential composition** places NFs back-to-back: every NF gets its
//!   own dispatch slot, so one pass can run several consecutive chain hops
//!   — at the price of the implicit dependency chain forcing separate MAU
//!   stages.
//! * **Parallel composition** places NFs side-by-side in an if/else-if
//!   ladder: at most one NF runs per pass (branch transitions need a
//!   resubmission or recirculation), but the branches can share stages.
//!
//! Around the NF calls the framework weaves its own tables — the three
//! table families §5 measures in Table 1:
//!
//! * `dv_check_next_nf_<k>` — per dispatch slot, matches
//!   `(sfc.path_id, sfc.service_index)` and decides whether slot *k*'s NF is
//!   the packet's next hop (an entry per (pathID, serviceIndex) pair),
//! * `dv_check_sfc_flags_<k>` — translates the SFC header's platform flags
//!   (set by NFs through the one-argument API) into real platform metadata
//!   (an entry per platform-metadata field),
//! * `dv_branching` — last slot of every **ingress** pipelet: routes the
//!   packet to its next NF's pipelet, resubmits, or forwards out
//!   (entries synthesized after placement by [`crate::routing`]),
//! * `dv_decap` — on every **egress** pipelet: removes the SFC header and
//!   restores the EtherType when the packet leaves through a non-loopback
//!   port (an entry per external port × next-protocol).

use crate::merge::MergedProgram;
use crate::sfc::sfc_field;
use dejavu_asic::{Gress, PipeletId};
use dejavu_p4ir::action::{ActionDef, Expr, PrimitiveOp};
use dejavu_p4ir::control::{BoolExpr, ControlBlock, Stmt};
use dejavu_p4ir::table::{TableDef, TableKey};
use dejavu_p4ir::{FieldRef, IrError, MatchKind, Program};

/// How NFs on a pipelet are composed (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositionMode {
    /// Back-to-back: several chain hops per pass, stages add up.
    Sequential,
    /// Side-by-side: one hop per pass, stages shared.
    Parallel,
}

/// How a planned NF is gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfGate {
    /// Normal: dispatched when `(path_id, service_index)` matches.
    Indexed,
    /// Chain entry (the Classifier): dispatched when the packet carries no
    /// SFC header yet.
    NoSfcHeader,
}

/// One NF assigned to a pipelet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedNf {
    /// NF name (as in the merged namespace).
    pub name: String,
    /// Dispatch gate.
    pub gate: NfGate,
}

impl PlannedNf {
    /// An index-gated NF.
    pub fn indexed(name: impl Into<String>) -> Self {
        PlannedNf {
            name: name.into(),
            gate: NfGate::Indexed,
        }
    }

    /// A chain-entry NF (classifier).
    pub fn entry(name: impl Into<String>) -> Self {
        PlannedNf {
            name: name.into(),
            gate: NfGate::NoSfcHeader,
        }
    }
}

/// Assignment of NFs to one pipelet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeletPlan {
    /// The pipelet.
    pub pipelet: PipeletId,
    /// NFs in composed order.
    pub nfs: Vec<PlannedNf>,
    /// Composition mode.
    pub mode: CompositionMode,
}

/// Framework table/action names.
pub mod names {
    /// Dispatch table of slot `k`.
    pub fn check_next_nf(k: usize) -> String {
        format!("dv_check_next_nf_{k}")
    }
    /// Flag-translation table of slot `k`.
    pub fn check_sfc_flags(k: usize) -> String {
        format!("dv_check_sfc_flags_{k}")
    }
    /// The branching table (ingress pipelets).
    pub const BRANCHING: &str = "dv_branching";
    /// The decapsulation table (egress pipelets).
    pub const DECAP: &str = "dv_decap";
    /// Dispatch-hit action.
    pub const PROCEED: &str = "dv_proceed";
    /// Dispatch-miss action.
    pub const SKIP: &str = "dv_skip";
    /// Forward-to-port branching action.
    pub const FWD: &str = "dv_fwd";
    /// Resubmit branching action.
    pub const RESUBMIT: &str = "dv_resubmit";
    /// Forward to `sfc.out_port` branching action.
    pub const FWD_OUT: &str = "dv_fwd_out_port";
    /// Punt-to-CPU action (branching default: unroutable → control plane).
    pub const TO_CPU: &str = "dv_to_cpu";
    /// Flag-translation actions.
    pub const FLAG_DROP: &str = "dv_flag_drop";
    /// Translate to-CPU flag.
    pub const FLAG_TO_CPU: &str = "dv_flag_to_cpu";
    /// Translate resubmit flag.
    pub const FLAG_RESUBMIT: &str = "dv_flag_resubmit";
    /// Translate mirror flag.
    pub const FLAG_MIRROR: &str = "dv_flag_mirror";
    /// No flag set.
    pub const FLAG_NONE: &str = "dv_flag_none";
    /// Decap action.
    pub const DO_DECAP: &str = "dv_do_decap";
    /// Decap no-op default.
    pub const NO_DECAP: &str = "dv_no_decap";
}

/// Default capacity of the dispatch/branching tables ("their sizes are
/// determined at compile time" — an entry per (pathID, serviceIndex) pair).
pub const DISPATCH_TABLE_SIZE: u32 = 256;

/// Generates the executable program of one pipelet from the merged
/// namespace and the pipelet's plan.
pub fn compose_pipelet(merged: &MergedProgram, plan: &PipeletPlan) -> Result<Program, IrError> {
    let mut program = merged.program.clone();
    program.name = format!("{}@{}", merged.program.name, plan.pipelet);

    add_framework_actions(&mut program);

    // Per-slot framework tables.
    for k in 0..plan.nfs.len() {
        program
            .tables
            .insert(names::check_next_nf(k), check_next_nf_table(k));
        program
            .tables
            .insert(names::check_sfc_flags(k), check_sfc_flags_table(k));
    }
    if plan.pipelet.gress == Gress::Ingress {
        program
            .tables
            .insert(names::BRANCHING.into(), branching_table());
    } else {
        program.tables.insert(names::DECAP.into(), decap_table());
    }

    // Entry control.
    let mut body: Vec<Stmt> = Vec::new();
    match plan.mode {
        CompositionMode::Sequential => {
            for (k, nf) in plan.nfs.iter().enumerate() {
                body.push(slot_stmt(merged, nf, k, true)?);
            }
        }
        CompositionMode::Parallel => {
            // if / else-if ladder, innermost-first construction.
            let mut ladder: Vec<Stmt> = Vec::new();
            for (k, nf) in plan.nfs.iter().enumerate().rev() {
                let slot = slot_stmt_parallel(merged, nf, k, ladder)?;
                ladder = vec![slot];
            }
            body.extend(ladder);
            // One flag check after whichever branch ran (Fig. 5 bottom).
            body.push(Stmt::Apply(names::check_sfc_flags(0)));
        }
    }
    match plan.pipelet.gress {
        Gress::Ingress => body.push(Stmt::Apply(names::BRANCHING.into())),
        Gress::Egress => body.push(Stmt::Apply(names::DECAP.into())),
    }

    let entry_name = "dv_pipelet_main".to_string();
    program.controls.insert(
        entry_name.clone(),
        ControlBlock::new(entry_name.clone(), body),
    );
    program.entry = entry_name;
    program.validate()?;
    Ok(program)
}

/// Sequential slot: gate (whose hit action advances the index), NF call,
/// flag check.
fn slot_stmt(
    merged: &MergedProgram,
    nf: &PlannedNf,
    k: usize,
    with_flags: bool,
) -> Result<Stmt, IrError> {
    let entry = nf_entry(merged, &nf.name)?;
    let mut hit: Vec<Stmt> = vec![Stmt::Call(entry)];
    match nf.gate {
        NfGate::Indexed => {
            if with_flags {
                hit.push(Stmt::Apply(names::check_sfc_flags(k)));
            }
            Ok(Stmt::ApplySelect {
                table: names::check_next_nf(k),
                arms: vec![(names::PROCEED.into(), hit)],
                default: vec![],
            })
        }
        NfGate::NoSfcHeader => {
            // Classifier: runs when no SFC header is present; it inserts the
            // header itself and sets service_index to 1 (hop 0 done).
            if with_flags {
                hit.push(Stmt::Apply(names::check_sfc_flags(k)));
            }
            Ok(Stmt::If {
                cond: BoolExpr::Not(Box::new(BoolExpr::Valid(crate::sfc::SFC_HEADER.into()))),
                then_branch: hit,
                else_branch: vec![],
            })
        }
    }
}

/// Parallel slot: gate with the rest of the ladder as the else branch.
fn slot_stmt_parallel(
    merged: &MergedProgram,
    nf: &PlannedNf,
    k: usize,
    else_branch: Vec<Stmt>,
) -> Result<Stmt, IrError> {
    let entry = nf_entry(merged, &nf.name)?;
    let hit = vec![Stmt::Call(entry)];
    match nf.gate {
        NfGate::Indexed => Ok(Stmt::ApplySelect {
            table: names::check_next_nf(k),
            arms: vec![(names::PROCEED.into(), hit)],
            default: else_branch,
        }),
        NfGate::NoSfcHeader => Ok(Stmt::If {
            cond: BoolExpr::Not(Box::new(BoolExpr::Valid(crate::sfc::SFC_HEADER.into()))),
            then_branch: vec![Stmt::Call(nf_entry(merged, &nf.name)?)],
            else_branch,
        }),
    }
}

fn nf_entry(merged: &MergedProgram, nf: &str) -> Result<String, IrError> {
    merged
        .nf_entries
        .get(nf)
        .cloned()
        .ok_or(IrError::Undefined {
            kind: "NF",
            name: nf.to_string(),
        })
}

fn add_framework_actions(program: &mut Program) {
    let mut add = |a: ActionDef| {
        program.actions.insert(a.name.clone(), a);
    };
    // The dispatch-hit action advances the service index — this is the
    // data dependency that forces consecutive Dejavu dispatch tables into
    // separate MAU stages (the paper's Table 1 observation).
    add(ActionDef::simple(
        names::PROCEED,
        vec![PrimitiveOp::Set {
            dst: sfc_field("service_index"),
            value: Expr::Add(
                Box::new(Expr::Field(sfc_field("service_index"))),
                Box::new(Expr::val(1, 8)),
            ),
        }],
    ));
    add(ActionDef::simple(names::SKIP, vec![PrimitiveOp::NoOp]));
    // Flag translations: SFC header flag → platform metadata. Each
    // translation *consumes* the in-band flag (clears it) so a request is
    // honored exactly once — otherwise every later pipelet would re-apply
    // it (e.g. mirroring the packet once per pipe).
    let flag_action = |name: &str, meta_flag: &str, sfc_flag: &str| {
        ActionDef::simple(
            name,
            vec![
                PrimitiveOp::Set {
                    dst: FieldRef::meta(meta_flag),
                    value: Expr::val(1, 1),
                },
                PrimitiveOp::Set {
                    dst: sfc_field(sfc_flag),
                    value: Expr::val(0, 1),
                },
            ],
        )
    };
    add(flag_action(names::FLAG_DROP, "drop_flag", "drop_flag"));
    add(flag_action(
        names::FLAG_TO_CPU,
        "to_cpu_flag",
        "to_cpu_flag",
    ));
    add(flag_action(
        names::FLAG_RESUBMIT,
        "resubmit_flag",
        "resub_flag",
    ));
    add(flag_action(
        names::FLAG_MIRROR,
        "mirror_flag",
        "mirror_flag",
    ));
    add(ActionDef::simple(names::FLAG_NONE, vec![PrimitiveOp::NoOp]));
    // Branching actions.
    add(ActionDef {
        name: names::FWD.into(),
        params: vec![("port".into(), 16)],
        ops: vec![PrimitiveOp::Set {
            dst: FieldRef::meta("egress_spec"),
            value: Expr::Param("port".into()),
        }],
    });
    add(ActionDef::simple(
        names::RESUBMIT,
        vec![PrimitiveOp::Set {
            dst: FieldRef::meta("resubmit_flag"),
            value: Expr::val(1, 1),
        }],
    ));
    add(ActionDef::simple(
        names::FWD_OUT,
        vec![PrimitiveOp::Set {
            dst: FieldRef::meta("egress_spec"),
            value: Expr::Field(sfc_field("out_port")),
        }],
    ));
    add(ActionDef::simple(
        names::TO_CPU,
        vec![PrimitiveOp::Set {
            dst: FieldRef::meta("to_cpu_flag"),
            value: Expr::val(1, 1),
        }],
    ));
    // Decap.
    add(ActionDef {
        name: names::DO_DECAP.into(),
        params: vec![("ethertype".into(), 16)],
        ops: vec![
            PrimitiveOp::Set {
                dst: dejavu_p4ir::fref("ethernet", "ether_type"),
                value: Expr::Param("ethertype".into()),
            },
            PrimitiveOp::RemoveHeader {
                header: crate::sfc::SFC_HEADER.into(),
            },
        ],
    });
    add(ActionDef::simple(names::NO_DECAP, vec![PrimitiveOp::NoOp]));
}

fn check_next_nf_table(k: usize) -> TableDef {
    TableDef {
        name: names::check_next_nf(k),
        keys: vec![
            TableKey {
                field: sfc_field("path_id"),
                kind: MatchKind::Exact,
            },
            TableKey {
                field: sfc_field("service_index"),
                kind: MatchKind::Exact,
            },
        ],
        actions: vec![names::PROCEED.into(), names::SKIP.into()],
        default_action: names::SKIP.into(),
        default_action_args: vec![],
        size: DISPATCH_TABLE_SIZE,
    }
}

fn check_sfc_flags_table(k: usize) -> TableDef {
    TableDef {
        name: names::check_sfc_flags(k),
        keys: vec![
            TableKey {
                field: sfc_field("drop_flag"),
                kind: MatchKind::Ternary,
            },
            TableKey {
                field: sfc_field("to_cpu_flag"),
                kind: MatchKind::Ternary,
            },
            TableKey {
                field: sfc_field("resub_flag"),
                kind: MatchKind::Ternary,
            },
            TableKey {
                field: sfc_field("mirror_flag"),
                kind: MatchKind::Ternary,
            },
        ],
        actions: vec![
            names::FLAG_DROP.into(),
            names::FLAG_TO_CPU.into(),
            names::FLAG_RESUBMIT.into(),
            names::FLAG_MIRROR.into(),
            names::FLAG_NONE.into(),
        ],
        default_action: names::FLAG_NONE.into(),
        default_action_args: vec![],
        size: 8,
    }
}

fn branching_table() -> TableDef {
    TableDef {
        name: names::BRANCHING.into(),
        keys: vec![
            TableKey {
                field: sfc_field("path_id"),
                kind: MatchKind::Exact,
            },
            TableKey {
                field: sfc_field("service_index"),
                kind: MatchKind::Exact,
            },
        ],
        actions: vec![
            names::FWD.into(),
            names::RESUBMIT.into(),
            names::FWD_OUT.into(),
            names::TO_CPU.into(),
        ],
        default_action: names::TO_CPU.into(),
        default_action_args: vec![],
        size: DISPATCH_TABLE_SIZE,
    }
}

fn decap_table() -> TableDef {
    TableDef {
        name: names::DECAP.into(),
        keys: vec![
            TableKey {
                field: FieldRef::meta("egress_spec"),
                kind: MatchKind::Exact,
            },
            TableKey {
                field: sfc_field("next_protocol"),
                kind: MatchKind::Exact,
            },
        ],
        actions: vec![names::DO_DECAP.into(), names::NO_DECAP.into()],
        default_action: names::NO_DECAP.into(),
        default_action_args: vec![],
        size: 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_programs;
    use crate::nfmodule::NfModule;
    use crate::sfc::sfc_header_type;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::fref;
    use dejavu_p4ir::well_known;

    /// A minimal indexed NF: bumps ipv4.ttl-like marker via a table.
    fn mini_nf(name: &str) -> NfModule {
        let p = ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(sfc_header_type())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("mark")
                    .set(fref("ipv4", "dscp"), Expr::val(7, 6))
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("work")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("mark")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("work").build())
            .entry("ctrl")
            .build()
            .unwrap();
        NfModule::new(p).unwrap()
    }

    fn merged_two() -> crate::merge::MergedProgram {
        let a = mini_nf("alpha");
        let b = mini_nf("beta");
        merge_programs("sfc_demo", &[&a, &b]).unwrap()
    }

    #[test]
    fn sequential_ingress_pipelet_validates() {
        let merged = merged_two();
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::indexed("alpha"), PlannedNf::indexed("beta")],
            mode: CompositionMode::Sequential,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        // Framework tables present.
        assert!(program.tables.contains_key("dv_check_next_nf_0"));
        assert!(program.tables.contains_key("dv_check_next_nf_1"));
        assert!(program.tables.contains_key("dv_check_sfc_flags_0"));
        assert!(program.tables.contains_key(names::BRANCHING));
        assert!(!program.tables.contains_key(names::DECAP));
        // NF tables carried over with namespacing.
        assert!(program.tables.contains_key("alpha__work"));
        assert!(program.tables.contains_key("beta__work"));
        // Branching is applied last.
        let order = program.tables_in_order();
        assert_eq!(order.last().unwrap(), names::BRANCHING);
    }

    #[test]
    fn egress_pipelet_has_decap_not_branching() {
        let merged = merged_two();
        let plan = PipeletPlan {
            pipelet: PipeletId::egress(1),
            nfs: vec![PlannedNf::indexed("alpha")],
            mode: CompositionMode::Sequential,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        assert!(program.tables.contains_key(names::DECAP));
        assert!(!program.tables.contains_key(names::BRANCHING));
    }

    #[test]
    fn parallel_mode_shares_one_flag_check() {
        let merged = merged_two();
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::indexed("alpha"), PlannedNf::indexed("beta")],
            mode: CompositionMode::Parallel,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        // Only slot 0's flag table exists in parallel mode.
        assert!(program.tables.contains_key("dv_check_sfc_flags_0"));
        // The dispatch ladder nests beta's check inside alpha's default arm:
        // both tables exist.
        assert!(program.tables.contains_key("dv_check_next_nf_0"));
        assert!(program.tables.contains_key("dv_check_next_nf_1"));
        program.validate().unwrap();
    }

    #[test]
    fn sequential_has_deeper_dependency_chain_than_parallel() {
        // The paper's trade-off: sequential composition imposes implicit
        // dependencies (more stages); parallel shares stages.
        use dejavu_p4ir::DependencyGraph;
        let merged = merged_two();
        let seq = compose_pipelet(
            &merged,
            &PipeletPlan {
                pipelet: PipeletId::ingress(0),
                nfs: vec![PlannedNf::indexed("alpha"), PlannedNf::indexed("beta")],
                mode: CompositionMode::Sequential,
            },
        )
        .unwrap();
        let par = compose_pipelet(
            &merged,
            &PipeletPlan {
                pipelet: PipeletId::ingress(0),
                nfs: vec![PlannedNf::indexed("alpha"), PlannedNf::indexed("beta")],
                mode: CompositionMode::Parallel,
            },
        )
        .unwrap();
        let seq_stages = DependencyGraph::build(&seq).min_stages();
        let par_stages = DependencyGraph::build(&par).min_stages();
        assert!(
            seq_stages >= par_stages,
            "sequential {seq_stages} < parallel {par_stages}"
        );
    }

    #[test]
    fn entry_gate_wraps_classifier() {
        let merged = merged_two();
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::entry("alpha"), PlannedNf::indexed("beta")],
            mode: CompositionMode::Sequential,
        };
        let program = compose_pipelet(&merged, &plan).unwrap();
        // Slot 0 is an If on sfc validity, so check_next_nf_0 exists but is
        // not applied.
        let order = program.tables_in_order();
        assert!(!order.contains(&"dv_check_next_nf_0".to_string()));
        assert!(order.contains(&"dv_check_next_nf_1".to_string()));
    }

    #[test]
    fn unknown_nf_is_an_error() {
        let merged = merged_two();
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::indexed("ghost")],
            mode: CompositionMode::Sequential,
        };
        assert!(compose_pipelet(&merged, &plan).is_err());
    }
}
