//! The one Ingress story: how packets enter a Dejavu data plane.
//!
//! The simulator grew four injection entry points over time; this module is
//! the map that relates them, so a caller picks by *need* instead of by
//! archaeology. All of them consume the same unit of work — an
//! [`InjectedPacket`] (wire bytes + arrival port), built with
//! [`InjectedPacket::new`] — and all enforce the same port rules (loopback
//! ports take no external traffic, down links reject).
//!
//! | Entry point | Returns | Use when |
//! |---|---|---|
//! | [`Switch::inject`] | [`Traversal`] | You want the full per-packet story: events, disposition, latency, recirculations. The default. |
//! | [`Switch::inject_batch`] | [`BatchStats`] | Replay throughput: aggregate counters only, traces forced off, per-packet errors tallied not raised. |
//! | [`Switch::inject_buf`] | [`BufOutcome`](dejavu_asic::switch::BufOutcome) | The zero-allocation run-to-completion path: your buffer in, final bytes out, compiled engine only. |
//! | [`RtcSession::run`](dejavu_asic::rtc::RtcSession::run) | [`RtcReport`](dejavu_asic::rtc::RtcReport) | Sharded multi-worker replay over pooled buffers (rings of `inject_buf`-style passes). |
//!
//! Beyond a single switch, the same packet shape feeds the cluster paths:
//!
//! * [`ClusterNet::inject`](crate::multiswitch::ClusterNet::inject) — the
//!   lockstep in-process cluster; follows the packet across members in one
//!   call stack and returns a
//!   [`ClusterTraversal`](crate::multiswitch::ClusterTraversal).
//! * [`ClusterHandle::inject`](crate::transport::cluster::ClusterHandle::inject)
//!   / [`inject_async`](crate::transport::cluster::ClusterHandle::inject_async)
//!   — the transport-backed runtime: the packet crosses real worker
//!   threads (and, over
//!   [`TcpTransport`](crate::transport::tcp::TcpTransport), real sockets)
//!   and comes back as a
//!   [`WireTraversal`](crate::transport::cluster::WireTraversal).
//!
//! Historical note: `Switch::inject` once also accepted a bare
//! `(Vec<u8>, PortId)` tuple via a `From` impl. That shim is gone —
//! construct an [`InjectedPacket`] explicitly; the `impl Into` bound
//! remains so call sites stay terse and future packet carriers can opt in.

pub use dejavu_asic::switch::{BatchStats, Traversal};
pub use dejavu_asic::{InjectedPacket, PortId, Switch};
