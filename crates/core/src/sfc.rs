//! The Dejavu SFC header (paper Fig. 3).
//!
//! A 20-byte header based on the IETF NSH proposal (RFC 8300), embedded
//! *between the Ethernet and IP headers* and announced by a dedicated
//! EtherType. Layout:
//!
//! ```text
//! ┌───────────────┬──────────────┬───────────────────┬──────────────┬──────────────┐
//! │ service path  │ service      │ platform metadata │ context data │ next         │
//! │ ID (2 B)      │ index (1 B)  │ (4 B)             │ (12 B)       │ protocol(1 B)│
//! └───────────────┴──────────────┴───────────────────┴──────────────┴──────────────┘
//! ```
//!
//! * `(path_id, service_index)` uniquely identify the next NF for a packet;
//!   the index advances after each NF.
//! * The platform-metadata bytes mirror the switch intrinsic state the NF
//!   API shields: `in_port` (13 bits), `out_port` (13 bits), and the
//!   resubmission / recirculation / drop / mirror / to-CPU flags (1 bit
//!   each, 1 bit pad). The paper lists these exact fields.
//! * Context data is four key-value pairs (1-byte key, 2-byte value)
//!   carrying tenant ID, application ID, debugging info, … along the path.
//! * `next_protocol` records what followed the SFC header so the Router can
//!   restore the Ethernet EtherType on removal.

use dejavu_asic::ParsedPacket;
use dejavu_p4ir::{fref, FieldRef, HeaderType, Value};

/// EtherType announcing the SFC header (experimental range).
pub const SFC_ETHERTYPE: u16 = 0x88B5;
/// Name of the SFC header type in programs.
pub const SFC_HEADER: &str = "sfc";
/// `out_port` value meaning "not yet set" (13 bits, all ones).
pub const SFC_PORT_UNSET: u16 = 0x1fff;
/// `next_protocol` value for IPv4.
pub const NEXT_PROTO_IPV4: u8 = 0x01;
/// `next_protocol` value for "none/unknown".
pub const NEXT_PROTO_NONE: u8 = 0x00;
/// Number of context key-value pairs.
pub const CTX_SLOTS: usize = 4;

/// Well-known context keys used by the example NFs.
pub mod ctx_keys {
    /// Tenant identifier.
    pub const TENANT_ID: u8 = 0x01;
    /// Application identifier.
    pub const APP_ID: u8 = 0x02;
    /// Debugging breadcrumb.
    pub const DEBUG: u8 = 0x03;
    /// VXLAN virtual network identifier (set by the virtualization gateway).
    pub const VNI: u8 = 0x04;
}

/// The IR header type of the SFC header — 160 bits, byte-aligned.
pub fn sfc_header_type() -> HeaderType {
    HeaderType::new(
        SFC_HEADER,
        vec![
            ("path_id", 16u16),
            ("service_index", 8),
            // platform metadata: 4 bytes
            ("in_port", 13),
            ("out_port", 13),
            ("resub_flag", 1),
            ("recirc_flag", 1),
            ("drop_flag", 1),
            ("mirror_flag", 1),
            ("to_cpu_flag", 1),
            ("pad", 1),
            // context data: 4 × (key 8, value 16)
            ("ctx_key0", 8),
            ("ctx_val0", 16),
            ("ctx_key1", 8),
            ("ctx_val1", 16),
            ("ctx_key2", 8),
            ("ctx_val2", 16),
            ("ctx_key3", 8),
            ("ctx_val3", 16),
            ("next_protocol", 8),
        ],
    )
    .expect("sfc header is well-formed")
}

/// Field reference into the SFC header, e.g. `sfc_field("path_id")`.
pub fn sfc_field(field: &str) -> FieldRef {
    fref(SFC_HEADER, field)
}

/// A decoded SFC header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SfcHeader {
    /// Service path identifier.
    pub path_id: u16,
    /// Index of the next NF on the path.
    pub service_index: u8,
    /// Physical ingress port recorded at classification.
    pub in_port: u16,
    /// Physical egress port, [`SFC_PORT_UNSET`] until routed.
    pub out_port: u16,
    /// Request resubmission.
    pub resub_flag: bool,
    /// Request recirculation.
    pub recirc_flag: bool,
    /// Request drop.
    pub drop_flag: bool,
    /// Request mirroring.
    pub mirror_flag: bool,
    /// Request punt to CPU.
    pub to_cpu_flag: bool,
    /// Context key-value pairs.
    pub context: [(u8, u16); CTX_SLOTS],
    /// Protocol following the SFC header.
    pub next_protocol: u8,
}

impl SfcHeader {
    /// A fresh header for a path, index 0, ports unset.
    pub fn for_path(path_id: u16) -> Self {
        SfcHeader {
            path_id,
            out_port: SFC_PORT_UNSET,
            next_protocol: NEXT_PROTO_IPV4,
            ..Default::default()
        }
    }

    /// Reads the SFC header out of a parsed packet, if present.
    pub fn read(pp: &ParsedPacket) -> Option<SfcHeader> {
        let g = |f: &str| pp.get(&sfc_field(f)).map(|v| v.raw());
        Some(SfcHeader {
            path_id: g("path_id")? as u16,
            service_index: g("service_index")? as u8,
            in_port: g("in_port")? as u16,
            out_port: g("out_port")? as u16,
            resub_flag: g("resub_flag")? != 0,
            recirc_flag: g("recirc_flag")? != 0,
            drop_flag: g("drop_flag")? != 0,
            mirror_flag: g("mirror_flag")? != 0,
            to_cpu_flag: g("to_cpu_flag")? != 0,
            context: [
                (g("ctx_key0")? as u8, g("ctx_val0")? as u16),
                (g("ctx_key1")? as u8, g("ctx_val1")? as u16),
                (g("ctx_key2")? as u8, g("ctx_val2")? as u16),
                (g("ctx_key3")? as u8, g("ctx_val3")? as u16),
            ],
            next_protocol: g("next_protocol")? as u8,
        })
    }

    /// Writes this header's fields into a parsed packet (the `sfc` instance
    /// must already be present). Returns false when it is absent.
    pub fn write(&self, pp: &mut ParsedPacket) -> bool {
        if !pp.is_valid(SFC_HEADER) {
            return false;
        }
        let mut s = |f: &str, v: u128, bits: u16| {
            pp.set(&sfc_field(f), Value::new(v, bits));
        };
        s("path_id", u128::from(self.path_id), 16);
        s("service_index", u128::from(self.service_index), 8);
        s("in_port", u128::from(self.in_port), 13);
        s("out_port", u128::from(self.out_port), 13);
        s("resub_flag", u128::from(self.resub_flag), 1);
        s("recirc_flag", u128::from(self.recirc_flag), 1);
        s("drop_flag", u128::from(self.drop_flag), 1);
        s("mirror_flag", u128::from(self.mirror_flag), 1);
        s("to_cpu_flag", u128::from(self.to_cpu_flag), 1);
        for (i, (k, v)) in self.context.iter().enumerate() {
            s(&format!("ctx_key{i}"), u128::from(*k), 8);
            s(&format!("ctx_val{i}"), u128::from(*v), 16);
        }
        s("next_protocol", u128::from(self.next_protocol), 8);
        true
    }

    /// Looks up a context value by key (first matching slot).
    pub fn context_get(&self, key: u8) -> Option<u16> {
        self.context
            .iter()
            .find(|(k, _)| *k == key && key != 0)
            .map(|(_, v)| *v)
    }

    /// Sets a context value, reusing the key's slot or claiming the first
    /// empty (key 0) slot. Returns false when all slots are taken by other
    /// keys.
    pub fn context_set(&mut self, key: u8, value: u16) -> bool {
        assert_ne!(key, 0, "context key 0 is the empty marker");
        if let Some(slot) = self.context.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
            return true;
        }
        if let Some(slot) = self.context.iter_mut().find(|(k, _)| *k == 0) {
            *slot = (key, value);
            return true;
        }
        false
    }

    /// Serializes to the 20-byte wire format (used by traffic generators
    /// building pre-classified packets).
    pub fn to_bytes(&self) -> [u8; 20] {
        let ht = sfc_header_type();
        let mut inst = dejavu_asic::HeaderInstance::zeroed(&ht);
        let mut set = |f: &str, v: u128, bits: u16| {
            inst.fields.insert(f.to_string(), Value::new(v, bits));
        };
        set("path_id", u128::from(self.path_id), 16);
        set("service_index", u128::from(self.service_index), 8);
        set("in_port", u128::from(self.in_port), 13);
        set("out_port", u128::from(self.out_port), 13);
        set("resub_flag", u128::from(self.resub_flag), 1);
        set("recirc_flag", u128::from(self.recirc_flag), 1);
        set("drop_flag", u128::from(self.drop_flag), 1);
        set("mirror_flag", u128::from(self.mirror_flag), 1);
        set("to_cpu_flag", u128::from(self.to_cpu_flag), 1);
        for (i, (k, v)) in self.context.iter().enumerate() {
            set(&format!("ctx_key{i}"), u128::from(*k), 8);
            set(&format!("ctx_val{i}"), u128::from(*v), 16);
        }
        set("next_protocol", u128::from(self.next_protocol), 8);
        let bytes = inst.serialize(&ht);
        bytes.try_into().expect("sfc header is 20 bytes")
    }

    /// Parses the 20-byte wire format.
    pub fn from_bytes(bytes: &[u8; 20]) -> Self {
        use dejavu_p4ir::extract_bits;
        let ht = sfc_header_type();
        let mut fields = std::collections::BTreeMap::new();
        let mut off = 0u64;
        for f in &ht.fields {
            fields.insert(f.name.clone(), extract_bits(bytes, off, f.bits));
            off += u64::from(f.bits);
        }
        let g = |f: &str| fields[f].raw();
        SfcHeader {
            path_id: g("path_id") as u16,
            service_index: g("service_index") as u8,
            in_port: g("in_port") as u16,
            out_port: g("out_port") as u16,
            resub_flag: g("resub_flag") != 0,
            recirc_flag: g("recirc_flag") != 0,
            drop_flag: g("drop_flag") != 0,
            mirror_flag: g("mirror_flag") != 0,
            to_cpu_flag: g("to_cpu_flag") != 0,
            context: [
                (g("ctx_key0") as u8, g("ctx_val0") as u16),
                (g("ctx_key1") as u8, g("ctx_val1") as u16),
                (g("ctx_key2") as u8, g("ctx_val2") as u16),
                (g("ctx_key3") as u8, g("ctx_val3") as u16),
            ],
            next_protocol: g("next_protocol") as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_type_is_20_bytes() {
        assert_eq!(sfc_header_type().total_bytes(), 20);
        assert_eq!(sfc_header_type().total_bits(), 160);
    }

    #[test]
    fn wire_roundtrip() {
        let mut h = SfcHeader::for_path(0x0203);
        h.service_index = 4;
        h.in_port = 17;
        h.out_port = 0x1fff;
        h.to_cpu_flag = true;
        h.context_set(ctx_keys::TENANT_ID, 0xbeef);
        h.next_protocol = NEXT_PROTO_IPV4;
        let bytes = h.to_bytes();
        assert_eq!(SfcHeader::from_bytes(&bytes), h);
    }

    #[test]
    fn fresh_header_defaults() {
        let h = SfcHeader::for_path(9);
        assert_eq!(h.path_id, 9);
        assert_eq!(h.service_index, 0);
        assert_eq!(h.out_port, SFC_PORT_UNSET);
        assert!(!h.drop_flag);
        assert_eq!(h.next_protocol, NEXT_PROTO_IPV4);
    }

    #[test]
    fn context_slots() {
        let mut h = SfcHeader::for_path(1);
        assert!(h.context_set(ctx_keys::TENANT_ID, 100));
        assert!(h.context_set(ctx_keys::APP_ID, 200));
        assert_eq!(h.context_get(ctx_keys::TENANT_ID), Some(100));
        assert_eq!(h.context_get(ctx_keys::APP_ID), Some(200));
        assert_eq!(h.context_get(ctx_keys::DEBUG), None);
        // Updating an existing key reuses its slot.
        assert!(h.context_set(ctx_keys::TENANT_ID, 101));
        assert_eq!(h.context_get(ctx_keys::TENANT_ID), Some(101));
        // Fill remaining slots, then overflow.
        assert!(h.context_set(0x10, 1));
        assert!(h.context_set(0x11, 2));
        assert!(!h.context_set(0x12, 3));
    }

    #[test]
    #[should_panic(expected = "context key 0")]
    fn context_key_zero_rejected() {
        SfcHeader::for_path(1).context_set(0, 1);
    }

    #[test]
    fn parsed_packet_read_write() {
        use dejavu_p4ir::well_known;
        let cat: std::collections::HashMap<_, _> = [well_known::ethernet(), sfc_header_type()]
            .into_iter()
            .map(|h| (h.name.clone(), h))
            .collect();
        let mut pp = ParsedPacket::default();
        pp.add_header(&cat["ethernet"], None);
        assert_eq!(SfcHeader::read(&pp), None);
        pp.add_header(&cat[SFC_HEADER], None);
        let mut h = SfcHeader::for_path(7);
        h.service_index = 2;
        h.drop_flag = true;
        assert!(h.write(&mut pp));
        let back = SfcHeader::read(&pp).unwrap();
        assert_eq!(back, h);
        // Round-trip through bytes too.
        let bytes = pp.deparse(&cat).unwrap();
        assert_eq!(bytes.len(), 34);
    }
}
