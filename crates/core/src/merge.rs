//! The generic parser and program merging (paper §3).
//!
//! > "To enable the co-location of multiple NFs, we merge the parsers of
//! > individual NFs and generate a generic parser. … we consider
//! > representing vertices in the DAG as (header_type, offset) tuples so
//! > that two vertices are equivalent only when their headers have the same
//! > type and appear at the same location offset. We create a lookup table
//! > that maps each such tuple to a global ID."
//!
//! This module implements exactly that:
//!
//! * [`GlobalIdTable`] — the `(header_type, offset) → global ID` lookup
//!   table,
//! * [`merge_parsers`] — DAG union over tuple identities, with conflict
//!   detection (same vertex selecting on different fields, same select case
//!   leading to different vertices, contradictory defaults),
//! * [`encapsulate_for_sfc`] — rewrites an NF parser into its SFC-
//!   encapsulated twin: the 20-byte SFC header sits between Ethernet and
//!   the rest, so every non-Ethernet vertex shifts by 20 bytes and the
//!   Ethernet select gains the SFC EtherType case. Merging the raw and
//!   encapsulated twins of every NF parser yields the *generic parser* that
//!   accepts both pre-classification and in-chain packets,
//! * [`merge_programs`] — whole-program merging: unified header catalog
//!   (same name ⇒ identical layout), per-NF namespacing of actions, tables,
//!   controls, and local metadata (`<nf>__<name>`), producing the base
//!   program that [`crate::compose`] wraps with framework logic.

use crate::nfmodule::NfModule;
use crate::sfc::{sfc_header_type, NEXT_PROTO_IPV4, SFC_ETHERTYPE, SFC_HEADER};
use dejavu_p4ir::action::{ActionDef, Expr, PrimitiveOp};
use dejavu_p4ir::control::{BoolExpr, ControlBlock, Stmt};
use dejavu_p4ir::parser::{ParseNode, ParserDag, Target, Transition};
use dejavu_p4ir::{FieldDef, FieldRef, HeaderType, Program, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Merge failure.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Two NFs define the same header type with different layouts.
    HeaderLayoutConflict {
        /// The conflicting type name.
        header: String,
    },
    /// The same parser vertex selects on different fields in different NFs.
    SelectFieldConflict {
        /// Vertex `(header_type, offset)`.
        vertex: (String, u32),
        /// The two fields.
        fields: (String, String),
    },
    /// The same select case leads to different vertices.
    CaseConflict {
        /// Vertex where the case lives.
        vertex: (String, u32),
        /// The conflicting case value.
        case: Value,
    },
    /// Contradictory defaults / unconditional continuations at a vertex.
    DefaultConflict {
        /// Vertex `(header_type, offset)`.
        vertex: (String, u32),
    },
    /// Parsers begin at different vertices.
    StartConflict,
    /// A vertex mixes an unconditional continuation to another header with
    /// a select — the continuation would be silently lost.
    MixedTransitionConflict {
        /// Vertex `(header_type, offset)`.
        vertex: (String, u32),
    },
    /// An EtherType with no next-protocol code for SFC encapsulation.
    UnsupportedEtherType {
        /// The EtherType value.
        ether_type: u128,
    },
    /// Underlying IR error.
    Ir(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::HeaderLayoutConflict { header } => {
                write!(f, "header type {header} has conflicting layouts across NFs")
            }
            MergeError::SelectFieldConflict { vertex, fields } => write!(
                f,
                "vertex ({}, {}) selects on both {} and {}",
                vertex.0, vertex.1, fields.0, fields.1
            ),
            MergeError::CaseConflict { vertex, case } => {
                write!(
                    f,
                    "vertex ({}, {}) maps case {case} to different targets",
                    vertex.0, vertex.1
                )
            }
            MergeError::DefaultConflict { vertex } => {
                write!(
                    f,
                    "vertex ({}, {}) has contradictory defaults",
                    vertex.0, vertex.1
                )
            }
            MergeError::StartConflict => write!(f, "parsers start at different vertices"),
            MergeError::MixedTransitionConflict { vertex } => write!(
                f,
                "vertex ({}, {}) mixes unconditional continuation with a select",
                vertex.0, vertex.1
            ),
            MergeError::UnsupportedEtherType { ether_type } => {
                write!(f, "no SFC next-protocol code for EtherType {ether_type:#x}")
            }
            MergeError::Ir(m) => write!(f, "IR error: {m}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Vertex identity: `(header_type, byte offset)`.
pub type VertexKey = (String, u32);

/// The paper's tuple → global ID lookup table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalIdTable {
    ids: BTreeMap<VertexKey, u32>,
}

impl GlobalIdTable {
    /// Assigns (or returns) the global ID of a vertex.
    pub fn intern(&mut self, key: VertexKey) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(key).or_insert(next)
    }

    /// Looks up a vertex's global ID.
    pub fn get(&self, header_type: &str, offset: u32) -> Option<u32> {
        self.ids.get(&(header_type.to_string(), offset)).copied()
    }

    /// Number of interned vertices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no vertices have been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(vertex, id)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&VertexKey, &u32)> {
        self.ids.iter()
    }
}

/// Key-space target used while merging.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum KTarget {
    Key(VertexKey),
    Accept,
    Reject,
}

/// Default-merging precedence: continuing to a vertex beats accepting,
/// accepting beats rejecting; two different vertices conflict.
fn merge_default(a: KTarget, b: KTarget, vertex: &VertexKey) -> Result<KTarget, MergeError> {
    use KTarget::*;
    Ok(match (a, b) {
        (Key(x), Key(y)) => {
            if x == y {
                Key(x)
            } else {
                return Err(MergeError::DefaultConflict {
                    vertex: vertex.clone(),
                });
            }
        }
        (Key(x), _) | (_, Key(x)) => Key(x),
        (Accept, _) | (_, Accept) => Accept,
        (Reject, Reject) => Reject,
    })
}

/// Merged transition in key space.
#[derive(Debug, Clone, PartialEq)]
enum KTransition {
    Unconditional(KTarget),
    Select {
        field: String,
        cases: BTreeMap<Value, KTarget>,
        default: KTarget,
    },
}

fn to_key_target(t: Target, dag: &ParserDag) -> KTarget {
    match t {
        Target::Accept => KTarget::Accept,
        Target::Reject => KTarget::Reject,
        Target::Node(i) => {
            let n = &dag.nodes[i];
            KTarget::Key((n.header_type.clone(), n.offset))
        }
    }
}

/// Merges several parser DAGs into one generic parser, returning the merged
/// DAG and the global-ID table. Inputs are `(nf_name, dag)` pairs — the name
/// is only used for deterministic ordering and error messages.
pub fn merge_parsers(
    inputs: &[(&str, &ParserDag)],
) -> Result<(ParserDag, GlobalIdTable), MergeError> {
    let mut vertices: BTreeMap<VertexKey, (String, Option<KTransition>)> = BTreeMap::new();
    let mut start: Option<KTarget> = None;

    for (_, dag) in inputs {
        // Start target.
        if let Some(s) = dag.start {
            let ks = to_key_target(s, dag);
            match &start {
                None => start = Some(ks),
                Some(existing) => {
                    if *existing != ks {
                        return Err(MergeError::StartConflict);
                    }
                }
            }
        }
        for node in &dag.nodes {
            let key = (node.header_type.clone(), node.offset);
            let kt = match &node.transition {
                Transition::Unconditional(t) => KTransition::Unconditional(to_key_target(*t, dag)),
                Transition::Select {
                    field,
                    cases,
                    default,
                } => KTransition::Select {
                    field: field.clone(),
                    cases: cases
                        .iter()
                        .map(|(v, t)| (*v, to_key_target(*t, dag)))
                        .collect(),
                    default: to_key_target(*default, dag),
                },
            };
            let entry = vertices
                .entry(key.clone())
                .or_insert_with(|| (node.header_type.clone(), None));
            entry.1 = Some(match entry.1.take() {
                None => kt,
                Some(existing) => merge_transitions(existing, kt, &key)?,
            });
        }
    }

    // Materialize: deterministic node order = sorted keys; intern global IDs
    // in the same order.
    let mut ids = GlobalIdTable::default();
    let keys: Vec<VertexKey> = vertices.keys().cloned().collect();
    for k in &keys {
        ids.intern(k.clone());
    }
    let index_of = |kt: &KTarget| -> Target {
        match kt {
            KTarget::Accept => Target::Accept,
            KTarget::Reject => Target::Reject,
            KTarget::Key(k) => Target::Node(
                keys.iter()
                    .position(|x| x == k)
                    .expect("merged target key exists"),
            ),
        }
    };
    let mut dag = ParserDag::new();
    for k in &keys {
        let (header_type, transition) = &vertices[k];
        let transition = match transition.as_ref().expect("every vertex got a transition") {
            KTransition::Unconditional(t) => Transition::Unconditional(index_of(t)),
            KTransition::Select {
                field,
                cases,
                default,
            } => Transition::Select {
                field: field.clone(),
                cases: cases.iter().map(|(v, t)| (*v, index_of(t))).collect(),
                default: index_of(default),
            },
        };
        dag.add_node(ParseNode {
            header_type: header_type.clone(),
            offset: k.1,
            transition,
        });
    }
    dag.start = start.as_ref().map(index_of);
    Ok((dag, ids))
}

fn merge_transitions(
    a: KTransition,
    b: KTransition,
    vertex: &VertexKey,
) -> Result<KTransition, MergeError> {
    use KTransition::*;
    Ok(match (a, b) {
        (Unconditional(x), Unconditional(y)) => Unconditional(merge_default(x, y, vertex)?),
        (
            Select {
                field,
                cases,
                default,
            },
            Unconditional(u),
        )
        | (
            Unconditional(u),
            Select {
                field,
                cases,
                default,
            },
        ) => {
            // An unconditional continuation to another header cannot be
            // reconciled with a select — packets matching a case would skip
            // it. Unconditional Accept/Reject folds into the default.
            if matches!(u, KTarget::Key(_)) {
                return Err(MergeError::MixedTransitionConflict {
                    vertex: vertex.clone(),
                });
            }
            let default = merge_default(default, u, vertex)?;
            Select {
                field,
                cases,
                default,
            }
        }
        (
            Select {
                field: fa,
                cases: ca,
                default: da,
            },
            Select {
                field: fb,
                cases: cb,
                default: db,
            },
        ) => {
            if fa != fb {
                return Err(MergeError::SelectFieldConflict {
                    vertex: vertex.clone(),
                    fields: (fa, fb),
                });
            }
            let mut cases = ca;
            for (v, t) in cb {
                match cases.get(&v) {
                    None => {
                        cases.insert(v, t);
                    }
                    Some(existing) if *existing == t => {}
                    Some(_) => {
                        return Err(MergeError::CaseConflict {
                            vertex: vertex.clone(),
                            case: v,
                        })
                    }
                }
            }
            Select {
                field: fa,
                cases,
                default: merge_default(da, db, vertex)?,
            }
        }
    })
}

/// Next-protocol code carried in the SFC header for a given EtherType.
pub fn next_proto_for_ethertype(ether_type: u128) -> Result<u8, MergeError> {
    match ether_type {
        0x0800 => Ok(NEXT_PROTO_IPV4),
        0x0806 => Ok(0x02), // ARP
        0x86dd => Ok(0x03), // IPv6
        other => Err(MergeError::UnsupportedEtherType { ether_type: other }),
    }
}

/// Rewrites an NF parser into its SFC-encapsulated twin.
///
/// The SFC header occupies bytes 14..34 (between Ethernet and what
/// followed), so every non-Ethernet vertex shifts 20 bytes right; the
/// Ethernet select is replaced by the single SFC EtherType case leading to
/// the `sfc` vertex, which selects on `next_protocol` to reach the shifted
/// continuations of the original Ethernet cases.
pub fn encapsulate_for_sfc(dag: &ParserDag) -> Result<ParserDag, MergeError> {
    const SFC_LEN: u32 = 20;
    let eth_idx = dag
        .find("ethernet", 0)
        .ok_or_else(|| MergeError::Ir("NF parser does not start with ethernet@0".into()))?;

    let mut out = ParserDag::new();
    // Copy non-ethernet nodes, shifted; remember old-index → new-index.
    let mut remap: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, node) in dag.nodes.iter().enumerate() {
        if i == eth_idx {
            continue;
        }
        let idx = out.add_node(ParseNode {
            header_type: node.header_type.clone(),
            offset: node.offset + SFC_LEN,
            transition: Transition::Unconditional(Target::Accept), // patched below
        });
        remap.insert(i, idx);
    }
    let patch = |t: Target| -> Target {
        match t {
            Target::Node(i) => Target::Node(remap[&i]),
            other => other,
        }
    };
    for (i, node) in dag.nodes.iter().enumerate() {
        if i == eth_idx {
            continue;
        }
        let new_t = match &node.transition {
            Transition::Unconditional(t) => Transition::Unconditional(patch(*t)),
            Transition::Select {
                field,
                cases,
                default,
            } => Transition::Select {
                field: field.clone(),
                cases: cases.iter().map(|(v, t)| (*v, patch(*t))).collect(),
                default: patch(*default),
            },
        };
        out.nodes[remap[&i]].transition = new_t;
    }

    // The sfc vertex: select on next_protocol → shifted continuations of the
    // original ethernet cases.
    let sfc_cases: Vec<(Value, Target)> = match &dag.nodes[eth_idx].transition {
        Transition::Unconditional(_) => Vec::new(),
        Transition::Select { cases, .. } => cases
            .iter()
            .map(|(v, t)| {
                let code = next_proto_for_ethertype(v.raw())?;
                Ok((Value::new(u128::from(code), 8), patch(*t)))
            })
            .collect::<Result<_, MergeError>>()?,
    };
    let sfc_default = match &dag.nodes[eth_idx].transition {
        Transition::Unconditional(t) => patch(*t),
        Transition::Select { default, .. } => patch(*default),
    };
    let sfc_idx = out.add_node(ParseNode {
        header_type: SFC_HEADER.to_string(),
        offset: 14,
        transition: if sfc_cases.is_empty() {
            Transition::Unconditional(sfc_default)
        } else {
            Transition::Select {
                field: "next_protocol".into(),
                cases: sfc_cases,
                default: sfc_default,
            }
        },
    });

    // New ethernet vertex: only the SFC EtherType case (the raw twin covers
    // everything else after merging).
    let eth_new = out.add_node(ParseNode {
        header_type: "ethernet".into(),
        offset: 0,
        transition: Transition::Select {
            field: "ether_type".into(),
            cases: vec![(
                Value::new(u128::from(SFC_ETHERTYPE), 16),
                Target::Node(sfc_idx),
            )],
            default: Target::Accept,
        },
    });
    out.start = Some(Target::Node(eth_new));
    Ok(out)
}

/// Builds the generic parser for a set of NFs: the merge of every NF's raw
/// parser and its SFC-encapsulated twin.
pub fn generic_parser(nfs: &[&NfModule]) -> Result<(ParserDag, GlobalIdTable), MergeError> {
    let mut encapsulated: Vec<(String, ParserDag)> = Vec::new();
    for nf in nfs {
        encapsulated.push((
            format!("{}+sfc", nf.name()),
            encapsulate_for_sfc(&nf.program().parser)?,
        ));
    }
    let mut inputs: Vec<(&str, &ParserDag)> = Vec::new();
    for nf in nfs {
        inputs.push((nf.name(), &nf.program().parser));
    }
    for (name, dag) in &encapsulated {
        inputs.push((name.as_str(), dag));
    }
    merge_parsers(&inputs)
}

/// Result of merging NF programs into one namespace.
#[derive(Debug, Clone)]
pub struct MergedProgram {
    /// The merged program: generic parser, unified headers, namespaced
    /// actions/tables/controls. Has **no entry control yet** — composition
    /// adds the framework wrapper per pipelet.
    pub program: Program,
    /// Entry control of each NF in the merged namespace.
    pub nf_entries: BTreeMap<String, String>,
    /// The paper's global-ID lookup table for parser vertices.
    pub global_ids: GlobalIdTable,
}

/// Namespaces a name under its NF: `<nf>__<name>`.
pub fn scoped(nf: &str, name: &str) -> String {
    format!("{nf}__{name}")
}

/// Merges NF programs: header catalog union (layout conflicts rejected),
/// generic parser construction, and per-NF namespacing.
pub fn merge_programs(name: &str, nfs: &[&NfModule]) -> Result<MergedProgram, MergeError> {
    let mut program = Program::new(name);

    // Header catalog: union with layout-conflict detection, plus the SFC
    // header (the framework always needs it).
    let mut add_header = |ht: &HeaderType| -> Result<(), MergeError> {
        match program.header_types.get(&ht.name) {
            None => {
                program.header_types.insert(ht.name.clone(), ht.clone());
                Ok(())
            }
            Some(existing) if existing == ht => Ok(()),
            Some(_) => Err(MergeError::HeaderLayoutConflict {
                header: ht.name.clone(),
            }),
        }
    };
    add_header(&sfc_header_type())?;
    for nf in nfs {
        for ht in nf.program().header_types.values() {
            add_header(ht)?;
        }
    }

    // Generic parser.
    let (parser, global_ids) = generic_parser(nfs)?;
    program.parser = parser;

    // Namespaced metadata, actions, tables, controls.
    let mut nf_entries = BTreeMap::new();
    for nf in nfs {
        let p = nf.program();
        let local_meta: Vec<&FieldDef> = p.meta_fields.iter().collect();
        let rename_meta = |fr: &FieldRef| -> FieldRef {
            if fr.is_meta() && local_meta.iter().any(|f| f.name == fr.field) {
                FieldRef::meta(scoped(nf.name(), &fr.field))
            } else {
                fr.clone()
            }
        };
        for f in &p.meta_fields {
            program.meta_fields.push(FieldDef {
                name: scoped(nf.name(), &f.name),
                bits: f.bits,
            });
        }
        for act in p.actions.values() {
            program.actions.insert(
                scoped(nf.name(), &act.name),
                rename_action(act, nf.name(), &rename_meta),
            );
        }
        for r in p.registers.values() {
            let mut r2 = r.clone();
            r2.name = scoped(nf.name(), &r.name);
            program.registers.insert(r2.name.clone(), r2);
        }
        for t in p.tables.values() {
            let mut t2 = t.clone();
            t2.name = scoped(nf.name(), &t.name);
            for k in &mut t2.keys {
                k.field = rename_meta(&k.field);
            }
            t2.actions = t2.actions.iter().map(|a| scoped(nf.name(), a)).collect();
            t2.default_action = scoped(nf.name(), &t2.default_action);
            program.tables.insert(t2.name.clone(), t2);
        }
        for cb in p.controls.values() {
            let body = cb
                .body
                .iter()
                .map(|s| rename_stmt(s, nf.name(), &rename_meta))
                .collect();
            let new_name = scoped(nf.name(), &cb.name);
            program
                .controls
                .insert(new_name.clone(), ControlBlock::new(new_name, body));
        }
        nf_entries.insert(nf.name().to_string(), scoped(nf.name(), &p.entry));
    }

    Ok(MergedProgram {
        program,
        nf_entries,
        global_ids,
    })
}

fn rename_action(
    act: &ActionDef,
    nf: &str,
    rename_meta: &dyn Fn(&FieldRef) -> FieldRef,
) -> ActionDef {
    ActionDef {
        name: scoped(nf, &act.name),
        params: act.params.clone(),
        ops: act
            .ops
            .iter()
            .map(|op| match op {
                PrimitiveOp::Set { dst, value } => PrimitiveOp::Set {
                    dst: rename_meta(dst),
                    value: rename_expr(value, rename_meta),
                },
                PrimitiveOp::Hash { dst, algo, inputs } => PrimitiveOp::Hash {
                    dst: rename_meta(dst),
                    algo: *algo,
                    inputs: inputs.iter().map(|e| rename_expr(e, rename_meta)).collect(),
                },
                PrimitiveOp::RegisterRead {
                    dst,
                    register,
                    index,
                } => PrimitiveOp::RegisterRead {
                    dst: rename_meta(dst),
                    register: scoped(nf, register),
                    index: rename_expr(index, rename_meta),
                },
                PrimitiveOp::RegisterWrite {
                    register,
                    index,
                    value,
                } => PrimitiveOp::RegisterWrite {
                    register: scoped(nf, register),
                    index: rename_expr(index, rename_meta),
                    value: rename_expr(value, rename_meta),
                },
                PrimitiveOp::Digest { name, fields } => PrimitiveOp::Digest {
                    name: scoped(nf, name),
                    fields: fields.iter().map(|e| rename_expr(e, rename_meta)).collect(),
                },
                other => other.clone(),
            })
            .collect(),
    }
}

fn rename_expr(e: &Expr, rename_meta: &dyn Fn(&FieldRef) -> FieldRef) -> Expr {
    match e {
        Expr::Field(fr) => Expr::Field(rename_meta(fr)),
        Expr::Const(_) | Expr::Param(_) => e.clone(),
        Expr::Add(a, b) => Expr::Add(
            Box::new(rename_expr(a, rename_meta)),
            Box::new(rename_expr(b, rename_meta)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(rename_expr(a, rename_meta)),
            Box::new(rename_expr(b, rename_meta)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(rename_expr(a, rename_meta)),
            Box::new(rename_expr(b, rename_meta)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(rename_expr(a, rename_meta)),
            Box::new(rename_expr(b, rename_meta)),
        ),
        Expr::Xor(a, b) => Expr::Xor(
            Box::new(rename_expr(a, rename_meta)),
            Box::new(rename_expr(b, rename_meta)),
        ),
        Expr::Shl(a, n) => Expr::Shl(Box::new(rename_expr(a, rename_meta)), *n),
        Expr::Shr(a, n) => Expr::Shr(Box::new(rename_expr(a, rename_meta)), *n),
    }
}

fn rename_bool(b: &BoolExpr, rename_meta: &dyn Fn(&FieldRef) -> FieldRef) -> BoolExpr {
    match b {
        BoolExpr::Cmp(a, op, c) => BoolExpr::Cmp(
            rename_expr(a, rename_meta),
            *op,
            rename_expr(c, rename_meta),
        ),
        BoolExpr::And(x, y) => BoolExpr::And(
            Box::new(rename_bool(x, rename_meta)),
            Box::new(rename_bool(y, rename_meta)),
        ),
        BoolExpr::Or(x, y) => BoolExpr::Or(
            Box::new(rename_bool(x, rename_meta)),
            Box::new(rename_bool(y, rename_meta)),
        ),
        BoolExpr::Not(x) => BoolExpr::Not(Box::new(rename_bool(x, rename_meta))),
        BoolExpr::Valid(h) => BoolExpr::Valid(h.clone()),
    }
}

fn rename_stmt(s: &Stmt, nf: &str, rename_meta: &dyn Fn(&FieldRef) -> FieldRef) -> Stmt {
    match s {
        Stmt::Apply(t) => Stmt::Apply(scoped(nf, t)),
        Stmt::ApplySelect {
            table,
            arms,
            default,
        } => Stmt::ApplySelect {
            table: scoped(nf, table),
            arms: arms
                .iter()
                .map(|(a, b)| {
                    (
                        scoped(nf, a),
                        b.iter().map(|s| rename_stmt(s, nf, rename_meta)).collect(),
                    )
                })
                .collect(),
            default: default
                .iter()
                .map(|s| rename_stmt(s, nf, rename_meta))
                .collect(),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: rename_bool(cond, rename_meta),
            then_branch: then_branch
                .iter()
                .map(|s| rename_stmt(s, nf, rename_meta))
                .collect(),
            else_branch: else_branch
                .iter()
                .map(|s| rename_stmt(s, nf, rename_meta))
                .collect(),
        },
        Stmt::Do(a) => Stmt::Do(scoped(nf, a)),
        Stmt::Call(c) => Stmt::Call(scoped(nf, c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::well_known;
    use std::collections::HashMap;

    fn headers_map(program_less: bool) -> HashMap<String, HeaderType> {
        let mut m: HashMap<String, HeaderType> = [
            well_known::ethernet(),
            well_known::ipv4(),
            well_known::tcp(),
            well_known::udp(),
        ]
        .into_iter()
        .map(|h| (h.name.clone(), h))
        .collect();
        if !program_less {
            m.insert(SFC_HEADER.into(), sfc_header_type());
        }
        m
    }

    /// eth → ipv4 parser.
    fn ip_parser() -> ParserDag {
        ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 14)
            .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
            .accept("ip")
            .start("eth")
            .build()
            .unwrap()
    }

    /// eth → ipv4 → tcp parser.
    fn tcp_parser() -> ParserDag {
        ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 14)
            .node("tcp", "tcp", 34)
            .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
            .select("ip", "protocol", 8, vec![(6, "tcp")])
            .accept("tcp")
            .start("eth")
            .build()
            .unwrap()
    }

    #[test]
    fn merge_is_union_of_vertices() {
        let a = ip_parser();
        let b = tcp_parser();
        let (merged, ids) = merge_parsers(&[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(merged.nodes.len(), 3); // eth@0, ipv4@14, tcp@34
        assert_eq!(ids.len(), 3);
        assert!(ids.get("ethernet", 0).is_some());
        assert!(ids.get("tcp", 34).is_some());
        merged.validate(&headers_map(true)).unwrap();
    }

    #[test]
    fn merged_parser_accepts_all_input_paths() {
        let a = ip_parser();
        let b = tcp_parser();
        let (merged, _) = merge_parsers(&[("a", &a), ("b", &b)]).unwrap();
        let cat = headers_map(true);
        // TCP packet: full three-header path.
        let mut tcp_pkt = vec![0u8; 54];
        tcp_pkt[12] = 0x08;
        tcp_pkt[23] = 6;
        let path = merged.parse(&cat, &tcp_pkt).unwrap();
        assert_eq!(path.len(), 3);
        // UDP packet: parser a accepted at ipv4; merged must too (default
        // accept at the ip select).
        let mut udp_pkt = vec![0u8; 42];
        udp_pkt[12] = 0x08;
        udp_pkt[23] = 17;
        let path = merged.parse(&cat, &udp_pkt).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn same_case_same_target_ok_conflict_detected() {
        let a = ip_parser();
        // A parser mapping 0x0800 to a *different* vertex (ipv4 at offset 18).
        let b = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 18)
            .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
            .accept("ip")
            .start("eth")
            .build()
            .unwrap();
        let err = merge_parsers(&[("a", &a), ("b", &b)]).unwrap_err();
        assert!(matches!(err, MergeError::CaseConflict { .. }));
    }

    #[test]
    fn select_field_conflict_detected() {
        let a = ip_parser();
        let b = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 14)
            .select("eth", "src_mac", 48, vec![(1, "ip")])
            .accept("ip")
            .start("eth")
            .build()
            .unwrap();
        let err = merge_parsers(&[("a", &a), ("b", &b)]).unwrap_err();
        assert!(matches!(err, MergeError::SelectFieldConflict { .. }));
    }

    #[test]
    fn mixed_transition_conflict_detected() {
        let a = ip_parser();
        // Unconditionally continue into ipv4 (no select).
        let b = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 14)
            .goto("eth", "ip")
            .accept("ip")
            .start("eth")
            .build()
            .unwrap();
        let err = merge_parsers(&[("a", &a), ("b", &b)]).unwrap_err();
        assert!(matches!(err, MergeError::MixedTransitionConflict { .. }));
    }

    #[test]
    fn encapsulated_parser_shifts_and_splices() {
        let enc = encapsulate_for_sfc(&tcp_parser()).unwrap();
        let cat = headers_map(false);
        enc.validate(&cat).unwrap();
        // Build an SFC-encapsulated TCP packet: eth(SFC ethertype) + sfc(20,
        // next_proto=ipv4) + ipv4 + tcp.
        let mut pkt = vec![0u8; 74];
        pkt[12] = 0x88;
        pkt[13] = 0xb5;
        pkt[33] = NEXT_PROTO_IPV4; // sfc.next_protocol is the 20th byte of sfc
        pkt[43] = 6; // ipv4.protocol at 34+9
        let path = enc.parse(&cat, &pkt).unwrap();
        assert_eq!(
            path,
            vec![
                ("ethernet".to_string(), 0),
                (SFC_HEADER.to_string(), 14),
                ("ipv4".to_string(), 34),
                ("tcp".to_string(), 54),
            ]
        );
    }

    #[test]
    fn generic_parser_accepts_raw_and_encapsulated() {
        let raw = tcp_parser();
        let enc = encapsulate_for_sfc(&raw).unwrap();
        let (merged, ids) = merge_parsers(&[("raw", &raw), ("enc", &enc)]).unwrap();
        let cat = headers_map(false);
        merged.validate(&cat).unwrap();
        // Raw TCP.
        let mut tcp_pkt = vec![0u8; 54];
        tcp_pkt[12] = 0x08;
        tcp_pkt[23] = 6;
        assert_eq!(merged.parse(&cat, &tcp_pkt).unwrap().len(), 3);
        // Encapsulated TCP.
        let mut pkt = vec![0u8; 74];
        pkt[12] = 0x88;
        pkt[13] = 0xb5;
        pkt[33] = NEXT_PROTO_IPV4;
        pkt[43] = 6;
        assert_eq!(merged.parse(&cat, &pkt).unwrap().len(), 4);
        // Both ipv4@14 (raw) and ipv4@34 (encapsulated) exist as distinct
        // vertices — the tuple identity at work.
        assert!(ids.get("ipv4", 14).is_some());
        assert!(ids.get("ipv4", 34).is_some());
    }

    #[test]
    fn unsupported_ethertype_encapsulation_rejected() {
        let dag = ParserBuilder::new()
            .node("eth", "ethernet", 0)
            .node("ip", "ipv4", 14)
            .select("eth", "ether_type", 16, vec![(0x9999, "ip")])
            .accept("ip")
            .start("eth")
            .build()
            .unwrap();
        assert!(matches!(
            encapsulate_for_sfc(&dag).unwrap_err(),
            MergeError::UnsupportedEtherType { .. }
        ));
    }

    #[test]
    fn scoped_names() {
        assert_eq!(scoped("lb", "lb_session"), "lb__lb_session");
    }
}
