//! In-memory transport over `std::sync::mpsc` channels.
//!
//! The deterministic reference implementation: zero OS surface, perfect
//! for tests, and still honest — every frame is fully encoded to bytes and
//! decoded again on arrival, so the wire format is on the hot path even in
//! unit tests.

use super::{Endpoint, FrameSink, Link, PeerAddr, Transport, TransportError};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Sender};

/// Transport whose "network" is a registry of named mpsc channels.
#[derive(Debug, Default)]
pub struct ChannelTransport {
    inboxes: BTreeMap<String, Sender<Vec<u8>>>,
}

impl ChannelTransport {
    /// A transport with no endpoints yet.
    pub fn new() -> Self {
        ChannelTransport::default()
    }
}

struct ChannelSink(Sender<Vec<u8>>);

impl FrameSink for ChannelSink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.0
            .send(frame.to_vec())
            .map_err(|_| TransportError::Disconnected)
    }
}

impl Transport for ChannelTransport {
    fn kind(&self) -> &'static str {
        "channel"
    }

    fn bind(&mut self, label: &str) -> Result<Endpoint, TransportError> {
        let (tx, rx) = channel();
        self.inboxes.insert(label.to_string(), tx);
        Ok(Endpoint::from_parts(
            PeerAddr::Channel(label.to_string()),
            rx,
        ))
    }

    fn connect(&mut self, peer: &PeerAddr) -> Result<Link, TransportError> {
        match peer {
            PeerAddr::Channel(label) => {
                let tx = self
                    .inboxes
                    .get(label)
                    .ok_or_else(|| TransportError::UnsupportedPeer(peer.to_string()))?
                    .clone();
                Ok(Link::from_sink(Box::new(ChannelSink(tx))))
            }
            other => Err(TransportError::UnsupportedPeer(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::wire::{ControlMsg, Message};

    #[test]
    fn bind_connect_roundtrip() {
        let mut t = ChannelTransport::new();
        let ep = t.bind("w0").unwrap();
        let mut link = t.connect(&ep.addr().clone()).unwrap();
        link.send(&Message::Control(ControlMsg::Shutdown { seq: 2 }))
            .unwrap();
        let got = ep.recv().unwrap();
        assert_eq!(got, Message::Control(ControlMsg::Shutdown { seq: 2 }));
    }

    #[test]
    fn connecting_to_unknown_label_fails() {
        let mut t = ChannelTransport::new();
        assert!(t.connect(&PeerAddr::Channel("ghost".into())).is_err());
        assert!(t.connect(&PeerAddr::Tcp("127.0.0.1:1".into())).is_err());
    }
}
