//! Per-switch worker: one event loop owning one [`Switch`] and its
//! [`Deployment`].
//!
//! A worker is the unit the cluster runtime deploys — a thread (or, with a
//! TCP transport, potentially a process on another machine) that:
//!
//! * executes arriving [`DataMsg`] packets on its switch, appending a
//!   [`HopSummary`] and forwarding the packet over
//!   the outgoing wire for its egress port, or reporting it
//!   [`Delivered`](TelemetryMsg::Delivered) upstream when it leaves the
//!   cluster;
//! * executes [`ControlMsg`] commands (installs, removals, idle timeouts,
//!   clock advances, snapshot/restore) and acks them;
//! * pushes learn digests upstream **eagerly** after every packet — the
//!   control plane learns while traffic keeps flowing, instead of waiting
//!   for a lockstep "process digests now" call.

use super::wire::{ControlMsg, DataMsg, HopSummary, Message, TelemetryMsg};
use super::{Endpoint, Link, TransportError};
use crate::deploy::Deployment;
use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PortId, StateSnapshot, Switch};
use std::collections::BTreeMap;
use std::sync::mpsc::Receiver;

/// One cluster member: a switch plus the machinery to talk to its peers
/// and its controller. Constructed by
/// [`spawn_cluster`](super::cluster::spawn_cluster); run with
/// [`SwitchWorker::run`] on its own thread.
pub struct SwitchWorker {
    /// Position in the cluster chain.
    pub index: usize,
    /// The member switch (owned — nobody else touches it).
    pub switch: Switch,
    /// The deployment handle translating NF-view table names.
    pub deployment: Deployment,
    /// The single inbox all peers and the controller deliver into.
    pub inbox: Endpoint,
    /// Link to the controller (telemetry, digests, acks, deliveries).
    pub upstream: Link,
    /// Outgoing wiring: egress port → (link to the next switch, the port
    /// the packet arrives on over there).
    pub links: BTreeMap<PortId, (Link, PortId)>,
    /// One-way cable latency added per forwarded packet, in nanoseconds.
    pub cable_ns: f64,
    /// In-process side channel for live member replacement: the controller
    /// stages a freshly built `(Switch, Deployment)` pair here, then sends
    /// [`ControlMsg::SwapMember`] over the wire to make the worker adopt
    /// it. `Switch` is not wire-serializable, so a genuinely remote worker
    /// (no side channel sender alive) nacks the swap — live re-placement
    /// over real process boundaries needs a program-shipping bootstrap
    /// protocol (ROADMAP).
    pub swap_rx: Receiver<(Switch, Deployment)>,
}

impl SwitchWorker {
    /// Runs the event loop until a [`ControlMsg::Shutdown`] arrives or the
    /// inbox disconnects. Consumes the worker; its switch state lives (and
    /// dies) with the loop, reachable only through messages.
    pub fn run(mut self) {
        loop {
            let msg = match self.inbox.recv() {
                Ok(msg) => msg,
                // A corrupt payload costs one frame, not the member: skip
                // it (as the controller does) and keep serving traffic.
                Err(TransportError::Wire(_)) => continue,
                // Every sender gone: the cluster is tearing down.
                Err(_) => break,
            };
            match msg {
                Message::Data(d) => self.on_data(d),
                Message::Control(c) => {
                    if self.on_control(c) {
                        break;
                    }
                }
                // Workers never receive telemetry; ignore stray frames
                // rather than crash the member.
                Message::Telemetry(_) => {}
            }
        }
    }

    fn send_up(&mut self, msg: TelemetryMsg) {
        // An unreachable controller is unrecoverable mid-run; drop the
        // report rather than wedge the data path.
        let _ = self.upstream.send(&Message::Telemetry(msg));
    }

    /// Executes one packet and either forwards it down the wire or reports
    /// delivery upstream.
    fn on_data(&mut self, mut d: DataMsg) {
        let bytes = std::mem::take(&mut d.bytes);
        let t = match self.switch.inject(InjectedPacket::new(bytes, d.port)) {
            Ok(t) => t,
            Err(e) => {
                let trace = d.trace;
                self.send_up(TelemetryMsg::Nack {
                    seq: trace,
                    error: format!("switch {}: {e}", self.index),
                });
                return;
            }
        };
        d.latency_ns += t.latency_ns;
        d.hops.push(HopSummary {
            switch: self.index as u32,
            latency_ns: t.latency_ns,
            recirculations: t.recirculations as u32,
            resubmissions: t.resubmissions as u32,
            tables_applied: t.tables_applied().iter().map(|s| s.to_string()).collect(),
            tables_hit: t.tables_hit().iter().map(|s| s.to_string()).collect(),
        });
        let disposition = t.disposition;
        let final_bytes = t.final_bytes;
        // Learn path: push any digests this packet produced upstream right
        // away, so the controller can learn concurrently with traffic.
        self.push_digests();
        match disposition {
            Disposition::Emitted { port } if self.links.contains_key(&port) => {
                d.bytes = final_bytes;
                d.latency_ns += self.cable_ns;
                d.inter_switch_hops += 1;
                let (link, in_port) = self.links.get_mut(&port).expect("checked above");
                d.port = *in_port;
                let trace = d.trace;
                if link.send(&Message::Data(d)).is_err() {
                    // Next hop gone: the packet is lost on the wire. Nack
                    // its (odd) trace id so the controller routes a failed
                    // delivery to the injector instead of leaving it
                    // waiting forever.
                    self.send_up(TelemetryMsg::Nack {
                        seq: trace,
                        error: "downstream link closed".to_string(),
                    });
                }
            }
            other => {
                d.bytes = final_bytes;
                self.send_up(TelemetryMsg::Delivered {
                    disposition: other,
                    data: d,
                });
            }
        }
    }

    /// Drains the switch's digest queues upstream. Returns how many digests
    /// were flushed.
    fn push_digests(&mut self) -> u64 {
        let digests = self.switch.drain_digests();
        if digests.is_empty() {
            return 0;
        }
        let n = digests.len() as u64;
        let records = digests
            .into_iter()
            .map(|(pipeline, record)| (pipeline as u32, record))
            .collect();
        let switch = self.index as u32;
        self.send_up(TelemetryMsg::Digests { switch, records });
        n
    }

    /// Executes one control command; `true` means shut down.
    fn on_control(&mut self, c: ControlMsg) -> bool {
        let seq = c.seq();
        match c {
            ControlMsg::Install {
                nf, table, entry, ..
            } => {
                if self
                    .deployment
                    .entry_installed(&self.switch, &nf, &table, &entry)
                {
                    self.send_up(TelemetryMsg::Ack { seq, info: 0 });
                } else {
                    match self
                        .deployment
                        .install(&mut self.switch, &nf, &table, entry)
                    {
                        Ok(()) => self.send_up(TelemetryMsg::Ack { seq, info: 1 }),
                        Err(e) => self.nack(seq, &e.to_string()),
                    }
                }
            }
            ControlMsg::Remove {
                nf, table, entry, ..
            } => {
                let (pipelet, merged) = self.deployment.nf_table(&nf, &table);
                let Some(pipelet) = pipelet else {
                    self.nack(seq, &format!("NF {nf} not placed on switch {}", self.index));
                    return false;
                };
                let mut scoped = entry;
                scoped.action = crate::merge::scoped(&nf, &scoped.action);
                match self.switch.remove_entry(pipelet, &merged, &scoped) {
                    Ok(removed) => self.send_up(TelemetryMsg::Ack {
                        seq,
                        info: u64::from(removed),
                    }),
                    Err(e) => self.nack(seq, &e.to_string()),
                }
            }
            ControlMsg::SetIdleTimeout {
                nf, table, ticks, ..
            } => {
                match self
                    .deployment
                    .set_idle_timeout(&mut self.switch, &nf, &table, ticks)
                {
                    Ok(()) => self.send_up(TelemetryMsg::Ack { seq, info: 0 }),
                    Err(e) => self.nack(seq, &e.to_string()),
                }
            }
            ControlMsg::AdvanceTime { ticks, .. } => {
                let evictions = self.switch.advance_time(ticks);
                self.send_up(TelemetryMsg::Evictions { seq, evictions });
            }
            ControlMsg::DrainDigests { .. } => {
                let digests = self.push_digests();
                self.send_up(TelemetryMsg::DrainDone { seq, digests });
            }
            ControlMsg::ScrapeMetrics { .. } => {
                let snap = self.switch.metrics_snapshot();
                let json = dejavu_asic::telemetry::to_json_string(&snap);
                self.send_up(TelemetryMsg::Metrics { seq, json });
            }
            ControlMsg::SnapshotState { .. } => {
                let mut items = Vec::new();
                for pipelet in self.switch.loaded_pipelets() {
                    if let Some(snap) = self.switch.snapshot_state(pipelet) {
                        items.push((pipelet, snap.to_json()));
                    }
                }
                self.send_up(TelemetryMsg::Snapshot { seq, items });
            }
            ControlMsg::RestoreState { pipelet, json, .. } => {
                match StateSnapshot::from_json(&json) {
                    Ok(snap) => match self.switch.restore_state(pipelet, &snap) {
                        Ok(report) => self.send_up(TelemetryMsg::Ack {
                            seq,
                            info: report.restored_entries as u64,
                        }),
                        Err(e) => self.nack(seq, &e.to_string()),
                    },
                    Err(e) => self.nack(seq, &e),
                }
            }
            ControlMsg::SwapMember { .. } => {
                // The staged member was sent on the side channel before the
                // wire command, so it is already queued (or will never
                // arrive: nack rather than block the data path).
                match self.swap_rx.try_recv() {
                    Ok((switch, deployment)) => {
                        self.switch = switch;
                        self.deployment = deployment;
                        self.send_up(TelemetryMsg::Ack { seq, info: 0 });
                    }
                    Err(_) => self.nack(seq, "no staged member to swap in"),
                }
            }
            ControlMsg::Shutdown { .. } => {
                self.send_up(TelemetryMsg::Ack { seq, info: 0 });
                return true;
            }
        }
        false
    }

    fn nack(&mut self, seq: u64, error: &str) {
        let error = format!("switch {}: {error}", self.index);
        self.send_up(TelemetryMsg::Nack { seq, error });
    }
}
