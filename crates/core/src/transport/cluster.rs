//! The cluster runtime: communicating switch workers under an event-driven
//! control plane.
//!
//! [`spawn_cluster`] deploys a chain set across a back-to-back cluster
//! (exactly like [`deploy_cluster`](crate::multiswitch::deploy_cluster))
//! but instead of returning a lockstep object it boots one
//! [`SwitchWorker`](super::worker::SwitchWorker) thread per member, wires
//! them over a pluggable [`Transport`], and starts a **controller thread**
//! that runs concurrently with traffic:
//!
//! * learn digests pushed upstream by workers are dispatched to
//!   [`LearnPolicy`]s and turned into table installs *while packets keep
//!   flowing* — no lockstep "process digests now" call required;
//! * table updates, idle timeouts, clock advances, metrics scrapes and
//!   state snapshots are request/reply command round trips;
//! * finished packets come back as [`Delivery`] records carrying the whole
//!   multi-switch flight summary.
//!
//! [`ClusterHandle`] is the synchronous facade over that machinery: its
//! methods (`inject`, `install`, `advance_time`, `process_digests`,
//! `snapshot_state`) mirror the lockstep `ClusterNet` surface one-for-one,
//! so call sites migrate mechanically — while `inject_async` /
//! `recv_delivered` expose the pipelined path underneath.

use super::wire::{ControlMsg, DataMsg, HopSummary, Message, TelemetryMsg};
use super::{Link, Transport, TransportError};
use crate::chain::ChainSet;
use crate::control_plane::LearnPolicy;
use crate::deploy::{DeployError, DeployOptions, Deployment};
use crate::multiswitch::{build_cluster_members, ClusterPlacement, ClusterWiring};
use crate::nfmodule::NfModule;
use dejavu_asic::switch::Disposition;
use dejavu_asic::tables::Eviction;
use dejavu_asic::telemetry::{parse_json, snapshot_from_json};
use dejavu_asic::{
    ExecMode, InjectedPacket, MetricsSnapshot, PipeletId, PortId, StateSnapshot, Switch,
    TofinoProfile,
};
use dejavu_p4ir::table::TableEntry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::{self, JoinHandle};
use std::time::Duration;

// ---------------------------------------------------------------------
// Public result / report types
// ---------------------------------------------------------------------

/// Cluster runtime failure.
#[derive(Debug)]
pub enum ClusterError {
    /// Deployment failed before any worker was spawned.
    Deploy(DeployError),
    /// The transport failed while wiring the cluster.
    Transport(TransportError),
    /// A worker reported a failure executing a command or packet.
    Remote(String),
    /// A command round trip exceeded the configured timeout.
    Timeout(&'static str),
    /// The cluster was already shut down.
    Closed,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Deploy(e) => write!(f, "deploy: {e}"),
            ClusterError::Transport(e) => write!(f, "transport: {e}"),
            ClusterError::Remote(m) => write!(f, "remote: {m}"),
            ClusterError::Timeout(op) => write!(f, "timed out waiting for {op}"),
            ClusterError::Closed => write!(f, "cluster already shut down"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<DeployError> for ClusterError {
    fn from(e: DeployError) -> Self {
        ClusterError::Deploy(e)
    }
}

impl From<TransportError> for ClusterError {
    fn from(e: TransportError) -> Self {
        ClusterError::Transport(e)
    }
}

/// Spawn-time runtime configuration.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Enable telemetry on every member switch.
    pub telemetry: bool,
    /// Override the execution engine on every member switch.
    pub exec_mode: Option<ExecMode>,
    /// How long synchronous facade calls wait for their round trip.
    pub op_timeout: Duration,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            telemetry: false,
            exec_mode: None,
            op_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-member slice of a [`ClusterReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerSwitchReport {
    /// Cluster index of the member.
    pub switch: usize,
    /// Entries evicted on this member.
    pub evictions: usize,
    /// Digests this member emitted.
    pub digests: usize,
    /// Entries installed on this member.
    pub installed: usize,
}

/// Merged outcome of a cluster-wide maintenance operation — the one report
/// type shared by the event-driven [`ClusterHandle`] and the lockstep
/// [`ClusterNet`](crate::multiswitch::ClusterNet) facade, so callers read
/// per-switch outcomes the same way on either path.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Evicted entries, attributed to the switch and pipelet they aged out
    /// on.
    pub evictions: Vec<(usize, PipeletId, Eviction)>,
    /// Digests consumed cluster-wide.
    pub digests_seen: usize,
    /// Entries installed cluster-wide (excludes idempotent re-learns).
    pub entries_installed: usize,
    /// Per-member breakdown, indexed by cluster position.
    pub per_switch: Vec<PerSwitchReport>,
}

impl ClusterReport {
    pub(crate) fn sized(n: usize) -> Self {
        ClusterReport {
            per_switch: (0..n)
                .map(|switch| PerSwitchReport {
                    switch,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    /// Total evictions across the cluster.
    pub fn evicted(&self) -> usize {
        self.evictions.len()
    }
}

/// Merged + per-member metrics, as returned by
/// [`ClusterHandle::metrics_snapshot`].
#[derive(Debug, Clone, Default)]
pub struct ClusterScrape {
    /// All member snapshots merged (counters summed, histograms pooled).
    pub merged: MetricsSnapshot,
    /// Per-member snapshots, indexed by cluster position.
    pub per_switch: Vec<MetricsSnapshot>,
}

/// End-to-end record of one packet's flight across the cluster — the
/// transport-path analogue of
/// [`ClusterTraversal`](crate::multiswitch::ClusterTraversal), built from
/// the [`HopSummary`] postcards the packet accumulated in-band.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTraversal {
    /// Per-switch summaries, in visit order.
    pub hops: Vec<HopSummary>,
    /// Final disposition (on the last switch visited).
    pub disposition: Disposition,
    /// Final wire bytes.
    pub final_bytes: Vec<u8>,
    /// Total latency including cable hops.
    pub latency_ns: f64,
    /// Total on-chip recirculations across switches.
    pub recirculations: usize,
    /// Total resubmissions across switches.
    pub resubmissions: usize,
    /// Inter-switch wire hops taken.
    pub inter_switch_hops: usize,
}

impl WireTraversal {
    fn from_delivery(disposition: Disposition, data: DataMsg) -> Self {
        let recirculations = data.hops.iter().map(|h| h.recirculations as usize).sum();
        let resubmissions = data.hops.iter().map(|h| h.resubmissions as usize).sum();
        WireTraversal {
            disposition,
            final_bytes: data.bytes,
            latency_ns: data.latency_ns,
            recirculations,
            resubmissions,
            inter_switch_hops: data.inter_switch_hops as usize,
            hops: data.hops,
        }
    }

    /// Every table applied across the whole flight, in order.
    pub fn tables_applied(&self) -> Vec<&str> {
        self.hops
            .iter()
            .flat_map(|h| h.tables_applied.iter().map(String::as_str))
            .collect()
    }

    /// Every table that hit an entry across the whole flight, in order.
    pub fn tables_hit(&self) -> Vec<&str> {
        self.hops
            .iter()
            .flat_map(|h| h.tables_hit.iter().map(String::as_str))
            .collect()
    }
}

/// One finished packet, as surfaced by [`ClusterHandle::recv_delivered`].
#[derive(Debug)]
pub struct Delivery {
    /// The trace id [`ClusterHandle::inject_async`] returned.
    pub trace: u64,
    /// The flight record, or the remote failure that ended it.
    pub result: Result<WireTraversal, String>,
}

// ---------------------------------------------------------------------
// Controller internals
// ---------------------------------------------------------------------

enum Request {
    Data(DataMsg),
    Install {
        nf: String,
        table: String,
        entry: TableEntry,
        reply: Sender<Result<u64, ClusterError>>,
    },
    Remove {
        nf: String,
        table: String,
        entry: TableEntry,
        reply: Sender<Result<u64, ClusterError>>,
    },
    SetIdleTimeout {
        nf: String,
        table: String,
        ticks: Option<u64>,
        reply: Sender<Result<u64, ClusterError>>,
    },
    AdvanceTime {
        ticks: u64,
        reply: Sender<Result<ClusterReport, ClusterError>>,
    },
    Flush {
        reply: Sender<Result<ClusterReport, ClusterError>>,
    },
    Scrape {
        reply: Sender<Result<ClusterScrape, ClusterError>>,
    },
    Snapshot {
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<Vec<(usize, PipeletId, StateSnapshot)>, ClusterError>>,
    },
    Restore {
        switch: usize,
        pipelet: PipeletId,
        json: String,
        reply: Sender<Result<u64, ClusterError>>,
    },
    RegisterPolicy {
        stream: String,
        policy: Box<dyn LearnPolicy>,
    },
    /// Park new ingress packets and reply once every in-flight packet has
    /// been delivered or nacked (the migration quiesce barrier). Replies
    /// with the number of packets that were still in flight when the pause
    /// was requested.
    PauseIngress {
        reply: Sender<Result<u64, ClusterError>>,
    },
    /// Release parked ingress packets and resume normal injection. Replies
    /// with the number of packets released.
    ResumeIngress {
        reply: Sender<Result<u64, ClusterError>>,
    },
    /// Stage a freshly built member on a worker's side channel and command
    /// the swap over the wire.
    SwapMember {
        switch: usize,
        member: Box<(Switch, Deployment)>,
        reply: Sender<Result<u64, ClusterError>>,
    },
    /// Replace the NF → switch routing map after a re-placement.
    Remap {
        nf_switch: BTreeMap<String, usize>,
        reply: Sender<Result<u64, ClusterError>>,
    },
    Shutdown {
        reply: Sender<Result<(), ClusterError>>,
    },
}

enum CtrlEvent {
    Frame(Vec<u8>),
    PumpClosed,
    Request(Request),
}

enum Pending {
    /// Reply `info` straight to the caller (Ack) or the error (Nack).
    Simple(Sender<Result<u64, ClusterError>>),
    /// A learned install triggered by a digest; on ack, account it to the
    /// switch and release the flush barrier if one is waiting.
    Learned { switch: usize },
    /// Part of a broadcast; the id indexes `Controller::gathers`.
    Gather { id: u64, switch: usize },
    /// A shutdown ack.
    Bye,
}

enum GatherAcc {
    Evictions {
        acc: Vec<(usize, PipeletId, Eviction)>,
        reply: Sender<Result<ClusterReport, ClusterError>>,
    },
    Metrics {
        acc: Vec<MetricsSnapshot>,
        reply: Sender<Result<ClusterScrape, ClusterError>>,
    },
    Snapshot {
        acc: Vec<(usize, PipeletId, StateSnapshot)>,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<Vec<(usize, PipeletId, StateSnapshot)>, ClusterError>>,
    },
    Drain {
        reply: Sender<Result<ClusterReport, ClusterError>>,
    },
}

struct Gather {
    expect: usize,
    acc: GatherAcc,
}

struct Controller {
    n: usize,
    events: Receiver<CtrlEvent>,
    links: Vec<Link>,
    nf_switch: BTreeMap<String, usize>,
    policies: BTreeMap<String, Box<dyn LearnPolicy>>,
    delivered_tx: Sender<Delivery>,
    next_seq: u64,
    pending: BTreeMap<u64, Pending>,
    gathers: BTreeMap<u64, Gather>,
    next_gather: u64,
    /// Learned installs sent but not yet acked.
    learn_outstanding: usize,
    /// Digest / learned-install counters since the last flush report.
    digests_per_switch: Vec<usize>,
    installed_per_switch: Vec<usize>,
    /// A `process_digests` barrier waiting for quiescence.
    flush: Option<Sender<Result<ClusterReport, ClusterError>>>,
    /// Ingress pause state: while `true`, new data requests are parked
    /// instead of sent to worker 0 (the migration window).
    paused: bool,
    /// Packets parked while paused, released in arrival order on resume.
    parked: Vec<DataMsg>,
    /// Packets injected but not yet delivered or nacked.
    in_flight: usize,
    /// A `pause_ingress` barrier waiting for `in_flight` to drain.
    quiesce: Option<(u64, Sender<Result<u64, ClusterError>>)>,
    /// Per-worker side channels for staging live member swaps.
    swap_txs: Vec<Sender<(Switch, Deployment)>>,
    /// Outstanding shutdown acks; reply once all workers said goodbye.
    bye: Option<(usize, Sender<Result<(), ClusterError>>)>,
    op_timeout: Duration,
}

impl Controller {
    fn seq(&mut self) -> u64 {
        self.next_seq += 2; // Even: can never collide with odd trace ids.
        self.next_seq
    }

    fn send_to(&mut self, switch: usize, msg: Message) -> Result<(), ClusterError> {
        self.links[switch].send(&msg).map_err(ClusterError::from)
    }

    fn run(mut self) {
        loop {
            let ev = match self.events.recv_timeout(self.op_timeout) {
                Ok(ev) => ev,
                Err(RecvTimeoutError::Timeout) => {
                    if self.bye.is_some() {
                        // Workers never acked shutdown; stop waiting.
                        if let Some((_, reply)) = self.bye.take() {
                            let _ = reply.send(Ok(()));
                        }
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            };
            match ev {
                CtrlEvent::Frame(frame) => match super::wire::decode(&frame) {
                    Ok(Message::Telemetry(t)) => self.on_telemetry(t),
                    Ok(_) => {}  // Workers only send telemetry upstream.
                    Err(_) => {} // Corrupt frame: already a typed error; skip.
                },
                CtrlEvent::PumpClosed => {
                    if self.bye.is_some() {
                        if let Some((_, reply)) = self.bye.take() {
                            let _ = reply.send(Ok(()));
                        }
                        return;
                    }
                }
                CtrlEvent::Request(req) => {
                    self.on_request(req);
                }
            }
            if self.bye.as_ref().is_some_and(|(left, _)| *left == 0) {
                if let Some((_, reply)) = self.bye.take() {
                    let _ = reply.send(Ok(()));
                }
                return;
            }
        }
    }

    fn on_request(&mut self, req: Request) {
        match req {
            Request::Data(d) => {
                if self.paused {
                    // Migration window: hold the packet, deliver it after
                    // the new placement is live. The injector's trace id
                    // stays valid — parked, not dropped.
                    self.parked.push(d);
                } else if self.send_to(0, Message::Data(d)).is_ok() {
                    self.in_flight += 1;
                }
                // Worker 0 unreachable: nothing to deliver.
            }
            Request::Install {
                nf,
                table,
                entry,
                reply,
            } => self.command_for_nf(&nf, reply, |seq, nf, _| ControlMsg::Install {
                seq,
                nf,
                table,
                entry,
            }),
            Request::Remove {
                nf,
                table,
                entry,
                reply,
            } => self.command_for_nf(&nf, reply, |seq, nf, _| ControlMsg::Remove {
                seq,
                nf,
                table,
                entry,
            }),
            Request::SetIdleTimeout {
                nf,
                table,
                ticks,
                reply,
            } => self.command_for_nf(&nf, reply, |seq, nf, _| ControlMsg::SetIdleTimeout {
                seq,
                nf,
                table,
                ticks,
            }),
            Request::AdvanceTime { ticks, reply } => {
                let id = self.new_gather(GatherAcc::Evictions {
                    acc: Vec::new(),
                    reply,
                });
                for switch in 0..self.n {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Gather { id, switch });
                    let _ = self.send_to(
                        switch,
                        Message::Control(ControlMsg::AdvanceTime { seq, ticks }),
                    );
                }
            }
            Request::Flush { reply } => {
                let id = self.new_gather(GatherAcc::Drain { reply });
                for switch in 0..self.n {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Gather { id, switch });
                    let _ =
                        self.send_to(switch, Message::Control(ControlMsg::DrainDigests { seq }));
                }
            }
            Request::Scrape { reply } => {
                let id = self.new_gather(GatherAcc::Metrics {
                    acc: Vec::new(),
                    reply,
                });
                for switch in 0..self.n {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Gather { id, switch });
                    let _ =
                        self.send_to(switch, Message::Control(ControlMsg::ScrapeMetrics { seq }));
                }
            }
            Request::Snapshot { reply } => {
                let id = self.new_gather(GatherAcc::Snapshot {
                    acc: Vec::new(),
                    reply,
                });
                for switch in 0..self.n {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Gather { id, switch });
                    let _ =
                        self.send_to(switch, Message::Control(ControlMsg::SnapshotState { seq }));
                }
            }
            Request::Restore {
                switch,
                pipelet,
                json,
                reply,
            } => {
                if switch >= self.n {
                    let _ = reply.send(Err(ClusterError::Remote(format!(
                        "no switch {switch} in a cluster of {}",
                        self.n
                    ))));
                } else {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Simple(reply));
                    let _ = self.send_to(
                        switch,
                        Message::Control(ControlMsg::RestoreState { seq, pipelet, json }),
                    );
                }
            }
            Request::RegisterPolicy { stream, policy } => {
                self.policies.insert(stream, policy);
            }
            Request::PauseIngress { reply } => {
                self.paused = true;
                let outstanding = self.in_flight as u64;
                if outstanding == 0 {
                    let _ = reply.send(Ok(0));
                } else {
                    // Park the reply; the last delivery/nack releases it.
                    self.quiesce = Some((outstanding, reply));
                }
            }
            Request::ResumeIngress { reply } => {
                self.paused = false;
                let released = self.parked.len() as u64;
                for d in std::mem::take(&mut self.parked) {
                    if self.send_to(0, Message::Data(d)).is_ok() {
                        self.in_flight += 1;
                    }
                }
                let _ = reply.send(Ok(released));
            }
            Request::SwapMember {
                switch,
                member,
                reply,
            } => {
                if switch >= self.n {
                    let _ = reply.send(Err(ClusterError::Remote(format!(
                        "no switch {switch} in a cluster of {}",
                        self.n
                    ))));
                } else if self.swap_txs[switch].send(*member).is_err() {
                    let _ = reply.send(Err(ClusterError::Remote(format!(
                        "switch {switch}: side channel closed (worker gone?)"
                    ))));
                } else {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Simple(reply));
                    let _ = self.send_to(switch, Message::Control(ControlMsg::SwapMember { seq }));
                }
            }
            Request::Remap { nf_switch, reply } => {
                if let Some((nf, &sw)) = nf_switch.iter().find(|(_, &sw)| sw >= self.n) {
                    let _ = reply.send(Err(ClusterError::Remote(format!(
                        "NF {nf} mapped to switch {sw} in a cluster of {}",
                        self.n
                    ))));
                } else {
                    self.nf_switch = nf_switch;
                    let _ = reply.send(Ok(0));
                }
            }
            Request::Shutdown { reply } => {
                let mut sent = 0usize;
                for switch in 0..self.n {
                    let seq = self.seq();
                    self.pending.insert(seq, Pending::Bye);
                    if self
                        .send_to(switch, Message::Control(ControlMsg::Shutdown { seq }))
                        .is_ok()
                    {
                        sent += 1;
                    }
                }
                self.bye = Some((sent, reply));
            }
        }
    }

    /// Sends a single-worker command routed by NF placement.
    fn command_for_nf(
        &mut self,
        nf: &str,
        reply: Sender<Result<u64, ClusterError>>,
        make: impl FnOnce(u64, String, usize) -> ControlMsg,
    ) {
        let Some(&switch) = self.nf_switch.get(nf) else {
            let _ = reply.send(Err(ClusterError::Remote(format!(
                "NF {nf} is not placed on any cluster member"
            ))));
            return;
        };
        let seq = self.seq();
        let msg = make(seq, nf.to_string(), switch);
        self.pending.insert(seq, Pending::Simple(reply));
        let _ = self.send_to(switch, Message::Control(msg));
    }

    fn new_gather(&mut self, acc: GatherAcc) -> u64 {
        self.next_gather += 1;
        let id = self.next_gather;
        self.gathers.insert(
            id,
            Gather {
                expect: self.n,
                acc,
            },
        );
        id
    }

    fn on_telemetry(&mut self, t: TelemetryMsg) {
        match t {
            TelemetryMsg::Ack { seq, info } => self.settle(seq, Ok(info)),
            TelemetryMsg::Nack { seq, error } => {
                if seq % 2 == 1 {
                    // Odd: a data-plane trace failed mid-flight.
                    let _ = self.delivered_tx.send(Delivery {
                        trace: seq,
                        result: Err(error),
                    });
                    self.on_packet_done();
                } else {
                    self.settle(seq, Err(ClusterError::Remote(error)));
                }
            }
            TelemetryMsg::Digests { switch, records } => {
                let switch = switch as usize;
                for (pipeline, record) in records {
                    let Some(policy) = self.policies.get_mut(&record.name) else {
                        continue; // No policy: dropped, like a learn filter.
                    };
                    if let Some(slot) = self.digests_per_switch.get_mut(switch) {
                        *slot += 1;
                    }
                    let resp = policy.on_digest(pipeline as usize, &record.values);
                    for (nf, table, entry) in resp.install {
                        let Some(&target) = self.nf_switch.get(&nf) else {
                            continue;
                        };
                        let seq = self.seq();
                        let sent = self.send_to(
                            target,
                            Message::Control(ControlMsg::Install {
                                seq,
                                nf,
                                table,
                                entry,
                            }),
                        );
                        // Track only sends that can still produce an ack: a
                        // dead link yields no ack, and an undrainable
                        // learn_outstanding would park every later flush
                        // barrier forever.
                        if sent.is_ok() {
                            self.pending
                                .insert(seq, Pending::Learned { switch: target });
                            self.learn_outstanding += 1;
                        }
                    }
                }
            }
            TelemetryMsg::DrainDone { seq, digests: _ } => {
                // The digests themselves arrived (and were dispatched) just
                // before this marker on the same FIFO link.
                self.settle(seq, Ok(0));
            }
            TelemetryMsg::Metrics { seq, json } => {
                let snap = parse_json(&json)
                    .and_then(|v| snapshot_from_json(&v))
                    .unwrap_or_default();
                self.settle_metrics(seq, snap);
            }
            TelemetryMsg::Snapshot { seq, items } => self.settle_snapshot(seq, items),
            TelemetryMsg::Evictions { seq, evictions } => self.settle_evictions(seq, evictions),
            TelemetryMsg::Delivered { disposition, data } => {
                let _ = self.delivered_tx.send(Delivery {
                    trace: data.trace,
                    result: Ok(WireTraversal::from_delivery(disposition, data)),
                });
                self.on_packet_done();
            }
        }
        self.maybe_finish_flush();
    }

    /// Resolves one pending command with an ack (`Ok(info)`) or nack.
    fn settle(&mut self, seq: u64, outcome: Result<u64, ClusterError>) {
        match self.pending.remove(&seq) {
            Some(Pending::Simple(reply)) => {
                let _ = reply.send(outcome);
            }
            Some(Pending::Learned { switch }) => {
                self.learn_outstanding = self.learn_outstanding.saturating_sub(1);
                if matches!(outcome, Ok(1)) {
                    if let Some(slot) = self.installed_per_switch.get_mut(switch) {
                        *slot += 1;
                    }
                }
            }
            Some(Pending::Gather { id, switch: _ }) => {
                // DrainDone (or a nack standing in for a structured reply):
                // nothing to accumulate, just count the arrival.
                self.gather_done(seq, id);
            }
            Some(Pending::Bye) => {
                if let Some((left, _)) = self.bye.as_mut() {
                    *left = left.saturating_sub(1);
                }
            }
            None => {}
        }
    }

    fn settle_metrics(&mut self, seq: u64, snap: MetricsSnapshot) {
        if let Some(Pending::Gather { id, switch }) = self.pending.remove(&seq) {
            if let Some(g) = self.gathers.get_mut(&id) {
                if let GatherAcc::Metrics { acc, .. } = &mut g.acc {
                    // Keep per-switch order stable regardless of arrival order.
                    while acc.len() <= switch {
                        acc.push(MetricsSnapshot::default());
                    }
                    acc[switch] = snap;
                }
            }
            self.gather_done(seq, id);
        }
    }

    fn settle_snapshot(&mut self, seq: u64, items: Vec<(PipeletId, String)>) {
        if let Some(Pending::Gather { id, switch }) = self.pending.remove(&seq) {
            if let Some(g) = self.gathers.get_mut(&id) {
                if let GatherAcc::Snapshot { acc, .. } = &mut g.acc {
                    for (pipelet, json) in items {
                        if let Ok(snap) = StateSnapshot::from_json(&json) {
                            acc.push((switch, pipelet, snap));
                        }
                    }
                }
            }
            self.gather_done(seq, id);
        }
    }

    fn settle_evictions(&mut self, seq: u64, evictions: Vec<(PipeletId, Eviction)>) {
        if let Some(Pending::Gather { id, switch }) = self.pending.remove(&seq) {
            if let Some(g) = self.gathers.get_mut(&id) {
                if let GatherAcc::Evictions { acc, .. } = &mut g.acc {
                    for (pipelet, ev) in evictions {
                        acc.push((switch, pipelet, ev));
                    }
                }
            }
            self.gather_done(seq, id);
        }
    }

    fn gather_done(&mut self, _seq: u64, id: u64) {
        let finished = {
            let Some(g) = self.gathers.get_mut(&id) else {
                return;
            };
            g.expect = g.expect.saturating_sub(1);
            g.expect == 0
        };
        if !finished {
            return;
        }
        let g = self.gathers.remove(&id).expect("present");
        match g.acc {
            GatherAcc::Evictions { acc, reply } => {
                let mut report = ClusterReport::sized(self.n);
                for (switch, _, _) in &acc {
                    if let Some(p) = report.per_switch.get_mut(*switch) {
                        p.evictions += 1;
                    }
                }
                report.evictions = acc;
                let _ = reply.send(Ok(report));
            }
            GatherAcc::Metrics { mut acc, reply } => {
                while acc.len() < self.n {
                    acc.push(MetricsSnapshot::default());
                }
                let mut merged = MetricsSnapshot::default();
                for s in &acc {
                    merged.merge(s);
                }
                let _ = reply.send(Ok(ClusterScrape {
                    merged,
                    per_switch: acc,
                }));
            }
            GatherAcc::Snapshot { acc, reply } => {
                let _ = reply.send(Ok(acc));
            }
            GatherAcc::Drain { reply } => {
                // All workers flushed. Learned installs may still be in
                // flight; park the reply until they are acked.
                self.flush = Some(reply);
            }
        }
    }

    /// One in-flight packet finished (delivered or nacked mid-flight);
    /// releases a waiting quiesce barrier when the last one lands.
    fn on_packet_done(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if self.in_flight == 0 {
            if let Some((outstanding, reply)) = self.quiesce.take() {
                let _ = reply.send(Ok(outstanding));
            }
        }
    }

    /// Completes a parked `process_digests` barrier once every learned
    /// install has been acked.
    fn maybe_finish_flush(&mut self) {
        if self.learn_outstanding > 0 {
            return;
        }
        let Some(reply) = self.flush.take() else {
            return;
        };
        let mut report = ClusterReport::sized(self.n);
        for (i, p) in report.per_switch.iter_mut().enumerate() {
            p.digests = self.digests_per_switch[i];
            p.installed = self.installed_per_switch[i];
            report.digests_seen += p.digests;
            report.entries_installed += p.installed;
        }
        self.digests_per_switch.iter_mut().for_each(|d| *d = 0);
        self.installed_per_switch.iter_mut().for_each(|d| *d = 0);
        let _ = reply.send(Ok(report));
    }
}

// ---------------------------------------------------------------------
// The handle
// ---------------------------------------------------------------------

/// Owner's view of a running cluster: synchronous facade methods mirroring
/// the lockstep `ClusterNet` surface, plus the pipelined
/// [`inject_async`](ClusterHandle::inject_async) /
/// [`recv_delivered`](ClusterHandle::recv_delivered) pair. Dropping the
/// handle shuts the cluster down.
pub struct ClusterHandle {
    events_tx: Sender<CtrlEvent>,
    delivered_rx: Receiver<Delivery>,
    stashed: Vec<Delivery>,
    nf_switch: BTreeMap<String, usize>,
    n: usize,
    kind: &'static str,
    next_trace: u64,
    op_timeout: Duration,
    options: ClusterOptions,
    workers: Vec<JoinHandle<()>>,
    controller: Option<JoinHandle<()>>,
    closed: bool,
}

impl fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("members", &self.n)
            .field("transport", &self.kind)
            .field("closed", &self.closed)
            .finish_non_exhaustive()
    }
}

impl ClusterHandle {
    /// Number of member switches.
    pub fn members(&self) -> usize {
        self.n
    }

    /// The transport kind this cluster runs over (`"channel"`, `"tcp"`, …).
    pub fn transport_kind(&self) -> &'static str {
        self.kind
    }

    /// Which cluster member hosts an NF.
    pub fn switch_of(&self, nf: &str) -> Option<usize> {
        self.nf_switch.get(nf).copied()
    }

    fn request(&self, req: Request) -> Result<(), ClusterError> {
        if self.closed {
            return Err(ClusterError::Closed);
        }
        self.events_tx
            .send(CtrlEvent::Request(req))
            .map_err(|_| ClusterError::Closed)
    }

    fn wait<T>(
        &self,
        rx: Receiver<Result<T, ClusterError>>,
        op: &'static str,
    ) -> Result<T, ClusterError> {
        match rx.recv_timeout(self.op_timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout(op)),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::Closed),
        }
    }

    /// Injects a packet at switch 0 and returns its trace id immediately;
    /// the flight record arrives later via
    /// [`recv_delivered`](ClusterHandle::recv_delivered). This is the
    /// pipelined path: many packets can be in flight across the cluster at
    /// once, while the control plane learns from their digests in parallel.
    pub fn inject_async(&mut self, packet: impl Into<InjectedPacket>) -> Result<u64, ClusterError> {
        let InjectedPacket { bytes, port } = packet.into();
        self.next_trace += 2; // Odd: distinct from even command seqs.
        let trace = self.next_trace;
        self.request(Request::Data(DataMsg {
            trace,
            port,
            latency_ns: 0.0,
            inter_switch_hops: 0,
            hops: Vec::new(),
            bytes,
        }))?;
        Ok(trace)
    }

    /// Waits for the next finished packet. `Ok(None)` when nothing arrived
    /// within `timeout`.
    pub fn recv_delivered(&mut self, timeout: Duration) -> Result<Option<Delivery>, ClusterError> {
        if !self.stashed.is_empty() {
            return Ok(Some(self.stashed.remove(0)));
        }
        match self.delivered_rx.recv_timeout(timeout) {
            Ok(d) => Ok(Some(d)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::Closed),
        }
    }

    /// Synchronous facade: injects on `port` of switch 0 and blocks until
    /// this packet's flight record comes back — the drop-in replacement for
    /// the lockstep `ClusterNet::inject`.
    pub fn inject(
        &mut self,
        packet: impl Into<InjectedPacket>,
    ) -> Result<WireTraversal, ClusterError> {
        let trace = self.inject_async(packet)?;
        // An earlier waiter may have pulled this packet's delivery off the
        // channel and stashed it already.
        if let Some(pos) = self.stashed.iter().position(|d| d.trace == trace) {
            let d = self.stashed.remove(pos);
            return d.result.map_err(ClusterError::Remote);
        }
        let deadline = std::time::Instant::now() + self.op_timeout;
        loop {
            let left = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(ClusterError::Timeout("packet delivery"))?;
            // Read the channel directly: the stash holds only foreign
            // deliveries (checked above), so going through recv_delivered
            // here would cycle pop/re-push on the stash without ever
            // blocking on the channel.
            match self.delivered_rx.recv_timeout(left) {
                Ok(d) if d.trace == trace => return d.result.map_err(ClusterError::Remote),
                // A concurrent packet finished first; keep it for its waiter.
                Ok(d) => self.stashed.push(d),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ClusterError::Timeout("packet delivery"))
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ClusterError::Closed),
            }
        }
    }

    /// Installs an NF rule on whichever switch hosts the NF (the same
    /// translation the lockstep `ClusterNet::install` performs).
    pub fn install(
        &mut self,
        nf: &str,
        table: &str,
        entry: TableEntry,
    ) -> Result<(), ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Install {
            nf: nf.to_string(),
            table: table.to_string(),
            entry,
            reply: tx,
        })?;
        self.wait(rx, "install").map(|_| ())
    }

    /// Removes a previously installed entry; `Ok(true)` when it existed.
    pub fn remove(
        &mut self,
        nf: &str,
        table: &str,
        entry: TableEntry,
    ) -> Result<bool, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Remove {
            nf: nf.to_string(),
            table: table.to_string(),
            entry,
            reply: tx,
        })?;
        self.wait(rx, "remove").map(|info| info == 1)
    }

    /// Sets or clears a table's idle timeout through the NF's API view.
    pub fn set_idle_timeout(
        &mut self,
        nf: &str,
        table: &str,
        ticks: Option<u64>,
    ) -> Result<(), ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::SetIdleTimeout {
            nf: nf.to_string(),
            table: table.to_string(),
            ticks,
            reply: tx,
        })?;
        self.wait(rx, "set_idle_timeout").map(|_| ())
    }

    /// Advances logical time on every member and returns the merged
    /// eviction report. Clocks stay synchronized: every member advances by
    /// the same ticks before this returns.
    pub fn advance_time(&mut self, ticks: u64) -> Result<ClusterReport, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::AdvanceTime { ticks, reply: tx })?;
        self.wait(rx, "advance_time")
    }

    /// Flushes every member's digest queues and waits until all resulting
    /// learned installs have been acked — the synchronous face of the
    /// always-on learning loop. The report covers **all** digest activity
    /// since the previous call (the controller learns continuously, not
    /// just inside this call).
    pub fn process_digests(&mut self) -> Result<ClusterReport, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Flush { reply: tx })?;
        self.wait(rx, "process_digests")
    }

    /// Registers the learn policy for an NF's digest stream on the
    /// controller (see
    /// [`ControlPlane::register_learn_policy`](crate::control_plane::ControlPlane::register_learn_policy)).
    pub fn register_learn_policy(
        &mut self,
        nf: &str,
        stream: &str,
        policy: Box<dyn LearnPolicy>,
    ) -> Result<(), ClusterError> {
        self.request(Request::RegisterPolicy {
            stream: crate::merge::scoped(nf, stream),
            policy,
        })
    }

    /// Scrapes every member's metrics and returns merged + per-member
    /// snapshots.
    pub fn metrics_snapshot(&mut self) -> Result<ClusterScrape, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Scrape { reply: tx })?;
        self.wait(rx, "metrics_snapshot")
    }

    /// Snapshots the dynamic state of every loaded pipelet across the
    /// cluster (the cluster-wide checkpoint).
    #[allow(clippy::type_complexity)]
    pub fn snapshot_state(
        &mut self,
    ) -> Result<Vec<(usize, PipeletId, StateSnapshot)>, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Snapshot { reply: tx })?;
        self.wait(rx, "snapshot_state")
    }

    /// Restores a state snapshot onto one member's pipelet; returns the
    /// number of entries restored.
    pub fn restore_state(
        &mut self,
        switch: usize,
        pipelet: PipeletId,
        snapshot: &StateSnapshot,
    ) -> Result<usize, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Restore {
            switch,
            pipelet,
            json: snapshot.to_json(),
            reply: tx,
        })?;
        self.wait(rx, "restore_state").map(|n| n as usize)
    }

    // ------------------------------------------------------------------
    // Migration verbs (the hitless re-placement window; see
    // `crate::orchestrator::migrate` for the driver that sequences them).
    // ------------------------------------------------------------------

    /// Parks new ingress traffic and blocks until every in-flight packet
    /// has finished its cluster flight (delivered or nacked) — the quiesce
    /// barrier opening a migration window. Packets injected while paused
    /// are queued, not rejected: their trace ids resolve after
    /// [`resume_ingress`](Self::resume_ingress). Returns how many packets
    /// were still in flight when the pause took effect.
    pub fn pause_ingress(&mut self) -> Result<u64, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::PauseIngress { reply: tx })?;
        self.wait(rx, "pause_ingress")
    }

    /// Releases traffic parked by [`pause_ingress`](Self::pause_ingress)
    /// in arrival order and resumes normal injection. Returns the number
    /// of packets released.
    pub fn resume_ingress(&mut self) -> Result<u64, ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::ResumeIngress { reply: tx })?;
        self.wait(rx, "resume_ingress")
    }

    /// Replaces one member's switch and deployment with a freshly built
    /// pair, live. The spawn-time runtime options (telemetry, exec mode)
    /// are re-applied so the new member behaves like the one it replaces.
    /// The swap is transparent to peers — wiring, inboxes and links are
    /// untouched — but the new member starts with empty dynamic state and
    /// a zero clock: callers are expected to quiesce first and restore
    /// state after (the orchestrator's migration driver sequences this).
    pub fn swap_member(
        &mut self,
        switch: usize,
        mut member_switch: Switch,
        deployment: Deployment,
    ) -> Result<(), ClusterError> {
        if self.options.telemetry {
            member_switch.set_telemetry(true);
        }
        if let Some(mode) = self.options.exec_mode {
            member_switch.set_exec_mode(mode);
        }
        let (tx, rx) = channel();
        self.request(Request::SwapMember {
            switch,
            member: Box::new((member_switch, deployment)),
            reply: tx,
        })?;
        self.wait(rx, "swap_member").map(|_| ())
    }

    /// Replaces the NF → switch routing map (both the controller's copy,
    /// which routes installs and learned entries, and this handle's copy
    /// behind [`switch_of`](Self::switch_of)) after members were swapped
    /// to a new placement.
    pub fn remap_nfs(&mut self, nf_switch: BTreeMap<String, usize>) -> Result<(), ClusterError> {
        let (tx, rx) = channel();
        self.request(Request::Remap {
            nf_switch: nf_switch.clone(),
            reply: tx,
        })?;
        self.wait(rx, "remap_nfs")?;
        self.nf_switch = nf_switch;
        Ok(())
    }

    /// Stops every worker and the controller. Idempotent; also invoked on
    /// drop.
    pub fn shutdown(&mut self) -> Result<(), ClusterError> {
        if self.closed {
            return Ok(());
        }
        let (tx, rx) = channel();
        let sent = self.request(Request::Shutdown { reply: tx });
        self.closed = true;
        if sent.is_ok() {
            let _ = self.wait(rx, "shutdown");
        }
        if let Some(c) = self.controller.take() {
            let _ = c.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        Ok(())
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------

/// Deploys a chain set across a back-to-back cluster and boots it as
/// communicating workers over `transport` — the event-driven sibling of
/// [`deploy_cluster`](crate::multiswitch::deploy_cluster), sharing its
/// validation and per-member deployment logic.
#[allow(clippy::too_many_arguments)]
pub fn spawn_cluster(
    nfs: &[&NfModule],
    chains: &ChainSet,
    placement: &ClusterPlacement,
    profile: &TofinoProfile,
    exit_ports: BTreeMap<u16, PortId>,
    wiring: &ClusterWiring,
    deploy_options: &DeployOptions,
    transport: &mut dyn Transport,
    options: &ClusterOptions,
) -> Result<ClusterHandle, ClusterError> {
    let members = build_cluster_members(
        nfs,
        chains,
        placement,
        profile,
        exit_ports,
        wiring,
        deploy_options,
    )?;
    let n = members.len();
    let kind = transport.kind();

    // NF → switch routing map, captured before deployments move away.
    let mut nf_switch = BTreeMap::new();
    for (i, (_, dep)) in members.iter().enumerate() {
        for nf in chains.all_nfs() {
            if dep.nf_location(&nf).is_some() {
                nf_switch.entry(nf).or_insert(i);
            }
        }
    }

    // Bind everyone first so links can be connected in one pass.
    let ctrl_inbox = transport.bind("ctrl")?;
    let ctrl_addr = ctrl_inbox.addr().clone();
    let mut worker_inboxes = Vec::with_capacity(n);
    for i in 0..n {
        worker_inboxes.push(transport.bind(&format!("w{i}"))?);
    }
    let worker_addrs: Vec<_> = worker_inboxes.iter().map(|e| e.addr().clone()).collect();

    // Controller-side links (control + ingress data for worker 0).
    let mut ctrl_links = Vec::with_capacity(n);
    for addr in &worker_addrs {
        ctrl_links.push(transport.connect(addr)?);
    }

    // Boot the workers.
    let mut workers = Vec::with_capacity(n);
    let mut swap_txs = Vec::with_capacity(n);
    for (i, ((mut switch, deployment), inbox)) in
        members.into_iter().zip(worker_inboxes).enumerate()
    {
        if options.telemetry {
            switch.set_telemetry(true);
        }
        if let Some(mode) = options.exec_mode {
            switch.set_exec_mode(mode);
        }
        let upstream = transport.connect(&ctrl_addr)?;
        let mut links = BTreeMap::new();
        if i + 1 < n {
            let next = transport.connect(&worker_addrs[i + 1])?;
            links.insert(wiring.egress_link_port, (next, wiring.ingress_link_port));
        }
        let (swap_tx, swap_rx) = channel();
        swap_txs.push(swap_tx);
        let worker = super::worker::SwitchWorker {
            index: i,
            switch,
            deployment,
            inbox,
            upstream,
            links,
            cable_ns: wiring.cable_ns,
            swap_rx,
        };
        let handle = thread::Builder::new()
            .name(format!("dejavu-worker-{i}"))
            .spawn(move || worker.run())
            .map_err(|e| ClusterError::Transport(TransportError::Io(e.to_string())))?;
        workers.push(handle);
    }

    // Event plumbing: the pump forwards upstream frames into the unified
    // controller queue, where they interleave with facade requests.
    let (events_tx, events_rx) = channel();
    let pump_tx = events_tx.clone();
    thread::Builder::new()
        .name("dejavu-ctrl-pump".to_string())
        .spawn(move || loop {
            match ctrl_inbox.recv_raw() {
                Ok(frame) => {
                    if pump_tx.send(CtrlEvent::Frame(frame)).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    let _ = pump_tx.send(CtrlEvent::PumpClosed);
                    return;
                }
            }
        })
        .map_err(|e| ClusterError::Transport(TransportError::Io(e.to_string())))?;

    let (delivered_tx, delivered_rx) = channel();
    let controller = Controller {
        n,
        events: events_rx,
        links: ctrl_links,
        nf_switch: nf_switch.clone(),
        policies: BTreeMap::new(),
        delivered_tx,
        next_seq: 0,
        pending: BTreeMap::new(),
        gathers: BTreeMap::new(),
        next_gather: 0,
        learn_outstanding: 0,
        digests_per_switch: vec![0; n],
        installed_per_switch: vec![0; n],
        flush: None,
        paused: false,
        parked: Vec::new(),
        in_flight: 0,
        quiesce: None,
        swap_txs,
        bye: None,
        op_timeout: options.op_timeout,
    };
    let controller = thread::Builder::new()
        .name("dejavu-ctrl".to_string())
        .spawn(move || controller.run())
        .map_err(|e| ClusterError::Transport(TransportError::Io(e.to_string())))?;

    Ok(ClusterHandle {
        events_tx,
        delivered_rx,
        stashed: Vec::new(),
        nf_switch,
        n,
        kind,
        next_trace: 1,
        op_timeout: options.op_timeout,
        options: options.clone(),
        workers,
        controller: Some(controller),
        closed: false,
    })
}
