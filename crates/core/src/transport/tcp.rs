//! Framed TCP transport: cluster members as real communicating peers.
//!
//! [`TcpTransport::bind`] opens a `TcpListener` (by default on an
//! OS-assigned localhost port) and spawns an accept loop; every accepted
//! connection gets a reader thread that reassembles length-prefixed frames
//! (validating magic, version and the [`MAX_PAYLOAD`] bound **before**
//! allocating) and feeds them into the endpoint's inbox. [`connect`]
//! opens a `TcpStream` with `TCP_NODELAY` so small control frames don't sit
//! in Nagle buffers behind data traffic.
//!
//! Lifecycle: reader threads exit when their socket closes or the inbox's
//! receiver is dropped. The accept thread parks in `accept(2)` until the
//! process exits — binding is cheap and the cluster runtime binds once per
//! member, so no teardown protocol is needed for the simulator's lifetime.
//!
//! [`MAX_PAYLOAD`]: super::wire::MAX_PAYLOAD
//! [`connect`]: TcpTransport::connect

use super::wire::{payload_len, HEADER_LEN};
use super::{Endpoint, FrameSink, Link, PeerAddr, Transport, TransportError};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Sender};
use std::thread;

/// Transport whose links are real TCP connections carrying the framed wire
/// format.
#[derive(Debug)]
pub struct TcpTransport {
    bind_host: String,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Binds endpoints on `127.0.0.1` with OS-assigned ports.
    pub fn new() -> Self {
        TcpTransport {
            bind_host: "127.0.0.1".to_string(),
        }
    }

    /// Binds endpoints on a specific host (e.g. `0.0.0.0` to accept
    /// workers from other machines).
    pub fn with_host(host: &str) -> Self {
        TcpTransport {
            bind_host: host.to_string(),
        }
    }
}

/// Reads frames off one accepted connection until EOF, socket error, a
/// malformed header, or the inbox going away.
fn pump_frames(mut stream: TcpStream, tx: Sender<Vec<u8>>) {
    let mut header = [0u8; HEADER_LEN];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // EOF or reset: the peer is done.
        }
        let len = match payload_len(&header) {
            Ok(len) => len,
            Err(_) => return, // Corrupt stream: drop the connection.
        };
        let mut frame = vec![0u8; HEADER_LEN + len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        if stream.read_exact(&mut frame[HEADER_LEN..]).is_err() {
            return;
        }
        if tx.send(frame).is_err() {
            return; // Endpoint dropped: nobody is listening.
        }
    }
}

struct TcpSink(TcpStream);

impl FrameSink for TcpSink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.0
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

impl Transport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn bind(&mut self, _label: &str) -> Result<Endpoint, TransportError> {
        let listener = TcpListener::bind((self.bind_host.as_str(), 0))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let (tx, rx) = channel();
        thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { return };
                let tx = tx.clone();
                thread::spawn(move || pump_frames(stream, tx));
            }
        });
        Ok(Endpoint::from_parts(PeerAddr::Tcp(addr.to_string()), rx))
    }

    fn connect(&mut self, peer: &PeerAddr) -> Result<Link, TransportError> {
        match peer {
            PeerAddr::Tcp(addr) => {
                let stream =
                    TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
                let _ = stream.set_nodelay(true);
                Ok(Link::from_sink(Box::new(TcpSink(stream))))
            }
            other => Err(TransportError::UnsupportedPeer(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::wire::{ControlMsg, Message, TelemetryMsg};

    #[test]
    fn frames_cross_a_real_socket() {
        let mut t = TcpTransport::new();
        let ep = t.bind("w0").unwrap();
        let mut link = t.connect(&ep.addr().clone()).unwrap();
        link.send(&Message::Control(ControlMsg::AdvanceTime {
            seq: 2,
            ticks: 5,
        }))
        .unwrap();
        link.send(&Message::Telemetry(TelemetryMsg::Ack { seq: 2, info: 0 }))
            .unwrap();
        assert_eq!(
            ep.recv().unwrap(),
            Message::Control(ControlMsg::AdvanceTime { seq: 2, ticks: 5 })
        );
        assert_eq!(
            ep.recv().unwrap(),
            Message::Telemetry(TelemetryMsg::Ack { seq: 2, info: 0 })
        );
    }

    #[test]
    fn two_links_multiplex_into_one_inbox() {
        let mut t = TcpTransport::new();
        let ep = t.bind("w0").unwrap();
        let mut a = t.connect(&ep.addr().clone()).unwrap();
        let mut b = t.connect(&ep.addr().clone()).unwrap();
        a.send(&Message::Control(ControlMsg::Shutdown { seq: 2 }))
            .unwrap();
        b.send(&Message::Control(ControlMsg::Shutdown { seq: 4 }))
            .unwrap();
        let mut seqs = vec![];
        for _ in 0..2 {
            if let Message::Control(ControlMsg::Shutdown { seq }) = ep.recv().unwrap() {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![2, 4]);
    }
}
