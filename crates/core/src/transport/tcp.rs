//! Framed TCP transport: cluster members as real communicating peers.
//!
//! [`TcpTransport::bind`] opens a `TcpListener` (by default on an
//! OS-assigned localhost port) and spawns an accept loop; every accepted
//! connection gets a reader thread that reassembles length-prefixed frames
//! (validating magic, version and the [`MAX_PAYLOAD`] bound **before**
//! allocating) and feeds them into the endpoint's inbox. [`connect`]
//! opens a `TcpStream` with `TCP_NODELAY` so small control frames don't sit
//! in Nagle buffers behind data traffic.
//!
//! Lifecycle: reader threads exit when their socket closes or the inbox's
//! receiver is dropped. The accept thread is tied to the [`Endpoint`]: a
//! guard attached at bind time sets a stop flag and self-connects on drop,
//! waking `accept(2)` so the loop observes the flag, returns, and releases
//! the listener socket — long-lived processes that spawn many clusters do
//! not accumulate parked accept threads.
//!
//! [`MAX_PAYLOAD`]: super::wire::MAX_PAYLOAD
//! [`connect`]: TcpTransport::connect

use super::wire::{payload_len, HEADER_LEN};
use super::{Endpoint, FrameSink, Link, PeerAddr, Transport, TransportError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;

/// Transport whose links are real TCP connections carrying the framed wire
/// format.
#[derive(Debug)]
pub struct TcpTransport {
    bind_host: String,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Binds endpoints on `127.0.0.1` with OS-assigned ports.
    pub fn new() -> Self {
        TcpTransport {
            bind_host: "127.0.0.1".to_string(),
        }
    }

    /// Binds endpoints on a specific host (e.g. `0.0.0.0` to accept
    /// workers from other machines).
    pub fn with_host(host: &str) -> Self {
        TcpTransport {
            bind_host: host.to_string(),
        }
    }
}

/// Reads frames off one accepted connection until EOF, socket error, a
/// malformed header, or the inbox going away.
fn pump_frames(mut stream: TcpStream, tx: Sender<Vec<u8>>) {
    let mut header = [0u8; HEADER_LEN];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // EOF or reset: the peer is done.
        }
        let len = match payload_len(&header) {
            Ok(len) => len,
            Err(_) => return, // Corrupt stream: drop the connection.
        };
        let mut frame = vec![0u8; HEADER_LEN + len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        if stream.read_exact(&mut frame[HEADER_LEN..]).is_err() {
            return;
        }
        if tx.send(frame).is_err() {
            return; // Endpoint dropped: nobody is listening.
        }
    }
}

/// Shuts the accept loop down with the endpoint it serves: sets the stop
/// flag, then self-connects so the thread parked in `accept(2)` wakes up,
/// observes the flag and drops the listener.
struct AcceptGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl Drop for AcceptGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

struct TcpSink(TcpStream);

impl FrameSink for TcpSink {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.0
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

impl Transport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn bind(&mut self, _label: &str) -> Result<Endpoint, TransportError> {
        let listener = TcpListener::bind((self.bind_host.as_str(), 0))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let (tx, rx) = channel();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    return; // Returning drops the listener and its port.
                }
                let Ok(stream) = conn else { return };
                let tx = tx.clone();
                thread::spawn(move || pump_frames(stream, tx));
            }
        });
        Ok(Endpoint::from_parts(PeerAddr::Tcp(addr.to_string()), rx)
            .with_guard(Box::new(AcceptGuard { addr, stop })))
    }

    fn connect(&mut self, peer: &PeerAddr) -> Result<Link, TransportError> {
        match peer {
            PeerAddr::Tcp(addr) => {
                let stream =
                    TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
                let _ = stream.set_nodelay(true);
                Ok(Link::from_sink(Box::new(TcpSink(stream))))
            }
            other => Err(TransportError::UnsupportedPeer(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::wire::{ControlMsg, Message, TelemetryMsg};

    #[test]
    fn frames_cross_a_real_socket() {
        let mut t = TcpTransport::new();
        let ep = t.bind("w0").unwrap();
        let mut link = t.connect(&ep.addr().clone()).unwrap();
        link.send(&Message::Control(ControlMsg::AdvanceTime {
            seq: 2,
            ticks: 5,
        }))
        .unwrap();
        link.send(&Message::Telemetry(TelemetryMsg::Ack { seq: 2, info: 0 }))
            .unwrap();
        assert_eq!(
            ep.recv().unwrap(),
            Message::Control(ControlMsg::AdvanceTime { seq: 2, ticks: 5 })
        );
        assert_eq!(
            ep.recv().unwrap(),
            Message::Telemetry(TelemetryMsg::Ack { seq: 2, info: 0 })
        );
    }

    #[test]
    fn two_links_multiplex_into_one_inbox() {
        let mut t = TcpTransport::new();
        let ep = t.bind("w0").unwrap();
        let mut a = t.connect(&ep.addr().clone()).unwrap();
        let mut b = t.connect(&ep.addr().clone()).unwrap();
        a.send(&Message::Control(ControlMsg::Shutdown { seq: 2 }))
            .unwrap();
        b.send(&Message::Control(ControlMsg::Shutdown { seq: 4 }))
            .unwrap();
        let mut seqs = vec![];
        for _ in 0..2 {
            if let Message::Control(ControlMsg::Shutdown { seq }) = ep.recv().unwrap() {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![2, 4]);
    }

    #[test]
    fn dropping_the_endpoint_stops_the_accept_loop() {
        let mut t = TcpTransport::new();
        let ep = t.bind("w0").unwrap();
        let PeerAddr::Tcp(addr) = ep.addr().clone() else {
            unreachable!("tcp transport binds tcp addresses")
        };
        drop(ep);
        // The guard wakes accept(2); once the loop exits the listener is
        // gone and fresh connections are refused. Poll briefly — the
        // accept thread needs a moment to observe the flag.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while TcpStream::connect(&addr).is_ok() {
            assert!(
                std::time::Instant::now() < deadline,
                "accept loop still alive after endpoint drop"
            );
            thread::sleep(std::time::Duration::from_millis(10));
        }
    }
}
