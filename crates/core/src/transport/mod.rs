//! Pluggable cluster transports (ROADMAP: "cluster as real processes").
//!
//! The multi-switch runtime no longer assumes its members live in one call
//! stack. A [`Transport`] hands out connected endpoints; everything above it
//! — the per-switch [`worker`] event loops and the [`cluster`] control
//! plane — is transport-agnostic and speaks only the versioned,
//! length-prefixed [`wire`] format.
//!
//! Two implementations ship:
//!
//! * [`ChannelTransport`] — in-memory
//!   `std::sync::mpsc` channels. Deterministic, dependency-free, used by
//!   the test suites. Frames are still fully encoded and decoded, so the
//!   wire format is exercised on every test run.
//! * [`TcpTransport`] — framed TCP over localhost (or
//!   any reachable address): each worker is a real thread owning one
//!   [`Switch`](dejavu_asic::Switch), and every message crosses a socket.
//!
//! The addressing model is deliberately minimal: [`Transport::bind`]
//! creates an [`Endpoint`] (one inbox, many senders — workers multiplex
//! data, control and telemetry on a single inbox, since frames are
//! self-describing), and [`Transport::connect`] opens a [`Link`] to a
//! previously bound endpoint's [`PeerAddr`].

pub mod channel;
pub mod cluster;
pub mod tcp;
pub mod wire;
pub mod worker;

pub use channel::ChannelTransport;
pub use cluster::{
    spawn_cluster, ClusterError, ClusterHandle, ClusterOptions, ClusterReport, ClusterScrape,
    Delivery, PerSwitchReport, WireTraversal,
};
pub use tcp::TcpTransport;
pub use wire::{ControlMsg, DataMsg, HopSummary, Message, TelemetryMsg, WireError};

use std::fmt;
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::Duration;

/// Transport-layer failure.
#[derive(Debug)]
pub enum TransportError {
    /// A frame failed to encode or decode.
    Wire(WireError),
    /// The peer is gone (channel closed / socket reset).
    Disconnected,
    /// An OS-level I/O error (TCP only).
    Io(String),
    /// The peer address belongs to a different transport kind.
    UnsupportedPeer(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Wire(e) => write!(f, "wire: {e}"),
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Io(e) => write!(f, "io: {e}"),
            TransportError::UnsupportedPeer(a) => write!(f, "unsupported peer address {a}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Where a bound [`Endpoint`] can be reached from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerAddr {
    /// A named in-process channel (see [`channel::ChannelTransport`]).
    Channel(String),
    /// A TCP socket address, e.g. `127.0.0.1:49152`.
    Tcp(String),
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerAddr::Channel(l) => write!(f, "channel://{l}"),
            PeerAddr::Tcp(a) => write!(f, "tcp://{a}"),
        }
    }
}

/// The receive half of one bound inbox. All links connected to this
/// endpoint's address deliver into the same queue; frames are
/// self-describing, so a worker needs exactly one endpoint for data,
/// control and everything else.
pub struct Endpoint {
    addr: PeerAddr,
    rx: Receiver<Vec<u8>>,
    /// Transport-specific resources tied to this inbox's lifetime (e.g. the
    /// TCP accept-loop shutdown handle); their `Drop` runs when the
    /// endpoint is dropped.
    _guard: Option<Box<dyn Send>>,
}

impl Endpoint {
    /// Builds an endpoint from a bound address and its frame queue.
    /// Transport implementations call this; user code receives endpoints
    /// from [`Transport::bind`].
    pub fn from_parts(addr: PeerAddr, rx: Receiver<Vec<u8>>) -> Self {
        Endpoint {
            addr,
            rx,
            _guard: None,
        }
    }

    /// Attaches a resource that must not outlive the endpoint — dropping
    /// the endpoint drops the guard, letting transports tear down listener
    /// threads and sockets instead of leaking them for the process
    /// lifetime.
    pub fn with_guard(mut self, guard: Box<dyn Send>) -> Self {
        self._guard = Some(guard);
        self
    }

    /// The address peers connect to.
    pub fn addr(&self) -> &PeerAddr {
        &self.addr
    }

    /// Blocks until one raw frame arrives. `Err(Disconnected)` when every
    /// sender is gone.
    pub fn recv_raw(&self) -> Result<Vec<u8>, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Blocks until one message arrives and decodes it.
    pub fn recv(&self) -> Result<Message, TransportError> {
        Ok(wire::decode(&self.recv_raw()?)?)
    }

    /// Waits up to `timeout` for a message; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(wire::decode(&frame)?)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    /// Non-blocking poll; `Ok(None)` when the inbox is empty.
    pub fn try_recv(&self) -> Result<Option<Message>, TransportError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(wire::decode(&frame)?)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// The send half of one connection: frames written here arrive at the
/// endpoint this link was connected to, in order.
pub struct Link {
    sink: Box<dyn FrameSink>,
}

impl Link {
    /// Wraps a transport-specific sink.
    pub fn from_sink(sink: Box<dyn FrameSink>) -> Self {
        Link { sink }
    }

    /// Encodes and sends one message.
    pub fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let frame = wire::encode(msg);
        self.sink.send_frame(&frame)
    }
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link").finish_non_exhaustive()
    }
}

/// Transport-specific frame writer backing a [`Link`].
pub trait FrameSink: Send {
    /// Delivers one already-encoded frame to the peer, preserving order
    /// with respect to previous frames on this link.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError>;
}

/// A way to create endpoints and connect links between cluster members.
///
/// Contract (what [`worker`] and [`cluster`] rely on):
///
/// * frames sent on one link arrive **in order** and **intact** (the wire
///   format's framing is the unit of delivery);
/// * a link outlives the transport object — dropping the `Transport` after
///   wiring must not tear down established connections;
/// * delivery into an endpoint is multiplex-safe: any number of links may
///   target the same address concurrently.
pub trait Transport {
    /// Short human-readable kind, e.g. `"channel"` or `"tcp"`.
    fn kind(&self) -> &'static str;

    /// Binds a new inbox under `label` and returns its endpoint.
    fn bind(&mut self, label: &str) -> Result<Endpoint, TransportError>;

    /// Opens a link to a previously bound endpoint.
    fn connect(&mut self, peer: &PeerAddr) -> Result<Link, TransportError>;
}
