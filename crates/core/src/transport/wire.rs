//! Versioned, length-prefixed wire format for the cluster runtime.
//!
//! Every byte that crosses a [`super::Link`] — over an in-memory channel or
//! a real TCP socket — is one *frame*:
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬───────────┬──────────────┐
//! │ magic   │ version │ class   │ len (BE)  │ payload      │
//! │ u16     │ u8      │ u8      │ u32       │ `len` bytes  │
//! └─────────┴─────────┴─────────┴───────────┴──────────────┘
//! ```
//!
//! Three message classes ride the same framing:
//!
//! | class | direction            | contents                                 |
//! |-------|----------------------|------------------------------------------|
//! | 0     | along the chain      | [`DataMsg`] — a packet hopping switches  |
//! | 1     | controller → worker  | [`ControlMsg`] — installs, timeouts, …   |
//! | 2     | worker → controller  | [`TelemetryMsg`] — digests, metrics, …   |
//!
//! Decoding is total: a truncated, oversized, or malformed frame yields a
//! typed [`WireError`], never a panic. Unknown versions and classes are
//! rejected up front so future format revisions fail loudly instead of
//! misparsing.

use dejavu_asic::switch::Disposition;
use dejavu_asic::tables::{DigestRecord, Eviction};
use dejavu_asic::{Gress, PipeletId, PortId};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::Value;
use std::fmt;

/// First two bytes of every frame.
pub const WIRE_MAGIC: u16 = 0xDEFA;
/// Current wire-format revision. Bump on any incompatible layout change.
pub const WIRE_VERSION: u8 = 1;
/// Fixed frame header size: magic + version + class + payload length.
pub const HEADER_LEN: usize = 8;
/// Upper bound on one frame's payload (16 MiB): a decoder confronted with a
/// longer length prefix rejects the frame instead of allocating unbounded
/// memory on behalf of a corrupt or hostile peer.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Typed wire-format failure. Every malformed input maps to one of these —
/// the decoder never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the structure requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame did not start with [`WIRE_MAGIC`].
    BadMagic(u16),
    /// The frame's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The class byte names no known message class.
    UnknownClass(u8),
    /// A message tag within a class is unknown.
    UnknownTag {
        /// The message class the tag appeared in.
        class: u8,
        /// The unknown tag.
        tag: u8,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Overlength {
        /// Claimed payload length.
        len: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// Bytes were left over after the payload decoded completely.
    TrailingBytes {
        /// Number of undecoded trailing bytes.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field carried a semantically invalid value.
    BadValue(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownClass(c) => write!(f, "unknown message class {c}"),
            WireError::UnknownTag { class, tag } => {
                write!(f, "unknown tag {tag} in class {class}")
            }
            WireError::Overlength { len, max } => {
                write!(f, "payload length {len} exceeds maximum {max}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadValue(m) => write!(f, "bad value: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Message model
// ---------------------------------------------------------------------

/// Anything that can cross a cluster link.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A packet in flight between switches (class 0).
    Data(DataMsg),
    /// A control command, controller → worker (class 1).
    Control(ControlMsg),
    /// Telemetry/digest upstream, worker → controller (class 2).
    Telemetry(TelemetryMsg),
}

/// Per-switch execution summary accumulated as a packet crosses the
/// cluster — the wire-friendly projection of a full
/// [`Traversal`](dejavu_asic::Traversal).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HopSummary {
    /// Cluster index of the switch this hop ran on.
    pub switch: u32,
    /// Latency this switch contributed, in nanoseconds.
    pub latency_ns: f64,
    /// On-chip recirculations taken on this switch.
    pub recirculations: u32,
    /// Resubmissions taken on this switch.
    pub resubmissions: u32,
    /// Tables applied, in order (merged names).
    pub tables_applied: Vec<String>,
    /// Tables that hit an entry.
    pub tables_hit: Vec<String>,
}

/// A packet hopping along the inter-switch wiring. The message accumulates
/// its own flight record: each worker appends a [`HopSummary`] and adds its
/// latency before forwarding, so the packet arrives at the far end carrying
/// the whole story (in-band, like an INT postcard).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataMsg {
    /// Correlation id assigned at ingress (odd by convention, so it can
    /// never collide with controller sequence numbers, which are even).
    pub trace: u64,
    /// Port the packet arrives on at the receiving switch.
    pub port: PortId,
    /// Latency accumulated so far, including cable hops.
    pub latency_ns: f64,
    /// Inter-switch wire hops taken so far.
    pub inter_switch_hops: u32,
    /// Per-switch summaries, in visit order.
    pub hops: Vec<HopSummary>,
    /// Current wire bytes.
    pub bytes: Vec<u8>,
}

/// Control commands, controller → worker. Every command carries an even
/// sequence number the worker echoes in its reply ([`TelemetryMsg::Ack`] /
/// [`TelemetryMsg::Nack`] or a command-specific response).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Install a table entry through the NF's original API view.
    Install {
        /// Reply correlation.
        seq: u64,
        /// NF name (the NF's own view).
        nf: String,
        /// Table name (the NF's own view).
        table: String,
        /// The entry to install.
        entry: TableEntry,
    },
    /// Remove a previously installed entry.
    Remove {
        /// Reply correlation.
        seq: u64,
        /// NF name.
        nf: String,
        /// Table name.
        table: String,
        /// The entry to remove (matched exactly).
        entry: TableEntry,
    },
    /// Set or clear a table's idle timeout.
    SetIdleTimeout {
        /// Reply correlation.
        seq: u64,
        /// NF name.
        nf: String,
        /// Table name.
        table: String,
        /// Timeout in ticks; `None` disables aging.
        ticks: Option<u64>,
    },
    /// Advance the switch's logical clock. Replies with
    /// [`TelemetryMsg::Evictions`].
    AdvanceTime {
        /// Reply correlation.
        seq: u64,
        /// Ticks to advance.
        ticks: u64,
    },
    /// Flush the switch's digest queues upstream now. The worker sends any
    /// pending [`TelemetryMsg::Digests`] followed by
    /// [`TelemetryMsg::DrainDone`] — the barrier the synchronous facade's
    /// `process_digests` builds on.
    DrainDigests {
        /// Reply correlation.
        seq: u64,
    },
    /// Capture and return the switch's metrics snapshot
    /// ([`TelemetryMsg::Metrics`]).
    ScrapeMetrics {
        /// Reply correlation.
        seq: u64,
    },
    /// Snapshot the dynamic state of every loaded pipelet
    /// ([`TelemetryMsg::Snapshot`]).
    SnapshotState {
        /// Reply correlation.
        seq: u64,
    },
    /// Restore a state snapshot onto one pipelet. Acked with the number of
    /// entries restored.
    RestoreState {
        /// Reply correlation.
        seq: u64,
        /// Target pipelet.
        pipelet: PipeletId,
        /// JSON-encoded [`StateSnapshot`](dejavu_asic::StateSnapshot)
        /// (the versioned format `dejavu-state` defines).
        json: String,
    },
    /// Swap in the member staged on the worker's in-process side channel
    /// (see [`SwitchWorker::swap_rx`](super::worker::SwitchWorker)): the
    /// worker replaces its switch and deployment with the staged pair and
    /// acks. The re-placement orchestrator uses this to install a new
    /// cluster-wide placement without restarting workers; a worker with no
    /// staged member (e.g. a genuinely remote process, which has no side
    /// channel) nacks instead of guessing.
    SwapMember {
        /// Reply correlation.
        seq: u64,
    },
    /// Stop the worker's event loop. Acked before the worker exits.
    Shutdown {
        /// Reply correlation.
        seq: u64,
    },
}

impl ControlMsg {
    /// The command's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            ControlMsg::Install { seq, .. }
            | ControlMsg::Remove { seq, .. }
            | ControlMsg::SetIdleTimeout { seq, .. }
            | ControlMsg::AdvanceTime { seq, .. }
            | ControlMsg::DrainDigests { seq }
            | ControlMsg::ScrapeMetrics { seq }
            | ControlMsg::SnapshotState { seq }
            | ControlMsg::RestoreState { seq, .. }
            | ControlMsg::SwapMember { seq }
            | ControlMsg::Shutdown { seq } => *seq,
        }
    }
}

/// Telemetry and replies, worker → controller.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryMsg {
    /// Generic success reply. `info` is command-specific (e.g. 1 when an
    /// install landed, 0 when it was an idempotent duplicate).
    Ack {
        /// Echoed command sequence number.
        seq: u64,
        /// Command-specific detail.
        info: u64,
    },
    /// Generic failure reply. For data-plane failures `seq` echoes the
    /// packet's trace id instead of a command sequence number.
    Nack {
        /// Echoed sequence number or trace id.
        seq: u64,
        /// Human-readable error.
        error: String,
    },
    /// Digests drained from the switch's learn queues, pushed upstream
    /// eagerly (not waiting for a poll): `(pipeline, record)` pairs.
    Digests {
        /// Cluster index of the emitting switch.
        switch: u32,
        /// Drained digests with the pipeline that queued them.
        records: Vec<(u32, DigestRecord)>,
    },
    /// Barrier marker: all digests queued before the matching
    /// [`ControlMsg::DrainDigests`] have been pushed upstream.
    DrainDone {
        /// Echoed command sequence number.
        seq: u64,
        /// Digests flushed by this drain (not counting earlier eager pushes).
        digests: u64,
    },
    /// A metrics snapshot, JSON-encoded with the telemetry exporter.
    Metrics {
        /// Echoed command sequence number.
        seq: u64,
        /// `dejavu_telemetry` JSON snapshot.
        json: String,
    },
    /// Per-pipelet state snapshots, JSON-encoded with `dejavu-state`.
    Snapshot {
        /// Echoed command sequence number.
        seq: u64,
        /// `(pipelet, snapshot JSON)` for every loaded pipelet with state.
        items: Vec<(PipeletId, String)>,
    },
    /// Entries evicted by an [`ControlMsg::AdvanceTime`] sweep.
    Evictions {
        /// Echoed command sequence number.
        seq: u64,
        /// Evictions with the pipelet they aged out on.
        evictions: Vec<(PipeletId, Eviction)>,
    },
    /// A packet finished its cluster flight on this worker: it was emitted
    /// on an unwired port (left the cluster), dropped, or punted.
    Delivered {
        /// Final fate.
        disposition: Disposition,
        /// The flight record: final bytes, total latency, all hops.
        data: DataMsg,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

const CLASS_DATA: u8 = 0;
const CLASS_CONTROL: u8 = 1;
const CLASS_TELEMETRY: u8 = 2;

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn value(&mut self, v: Value) {
        self.u16(v.bits());
        self.u128(v.raw());
    }
    fn values(&mut self, vs: &[Value]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.value(*v);
        }
    }
    fn strings(&mut self, ss: &[String]) {
        self.u32(ss.len() as u32);
        for s in ss {
            self.str(s);
        }
    }
    fn key_match(&mut self, m: &KeyMatch) {
        match m {
            KeyMatch::Exact(v) => {
                self.u8(0);
                self.value(*v);
            }
            KeyMatch::Ternary(v, mask) => {
                self.u8(1);
                self.value(*v);
                self.value(*mask);
            }
            KeyMatch::Lpm(prefix, len) => {
                self.u8(2);
                self.value(*prefix);
                self.u16(*len);
            }
            KeyMatch::Range(lo, hi) => {
                self.u8(3);
                self.value(*lo);
                self.value(*hi);
            }
            KeyMatch::Any => self.u8(4),
        }
    }
    fn entry(&mut self, e: &TableEntry) {
        self.u32(e.matches.len() as u32);
        for m in &e.matches {
            self.key_match(m);
        }
        self.str(&e.action);
        self.values(&e.action_args);
        self.i32(e.priority);
    }
    fn pipelet(&mut self, p: PipeletId) {
        self.u8(match p.gress {
            Gress::Ingress => 0,
            Gress::Egress => 1,
        });
        self.u32(p.pipeline as u32);
    }
    fn disposition(&mut self, d: Disposition) {
        match d {
            Disposition::Emitted { port } => {
                self.u8(0);
                self.u16(port);
            }
            Disposition::Dropped => self.u8(1),
            Disposition::ToCpu => self.u8(2),
        }
    }
    fn hop(&mut self, h: &HopSummary) {
        self.u32(h.switch);
        self.f64(h.latency_ns);
        self.u32(h.recirculations);
        self.u32(h.resubmissions);
        self.strings(&h.tables_applied);
        self.strings(&h.tables_hit);
    }
    fn data(&mut self, d: &DataMsg) {
        self.u64(d.trace);
        self.u16(d.port);
        self.f64(d.latency_ns);
        self.u32(d.inter_switch_hops);
        self.u32(d.hops.len() as u32);
        for h in &d.hops {
            self.hop(h);
        }
        self.bytes(&d.bytes);
    }
    fn digest(&mut self, r: &DigestRecord) {
        self.str(&r.name);
        self.values(&r.values);
    }
}

/// Encodes a message into a complete frame (header + payload).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut e = Enc::new();
    let class = match msg {
        Message::Data(d) => {
            e.data(d);
            CLASS_DATA
        }
        Message::Control(c) => {
            match c {
                ControlMsg::Install {
                    seq,
                    nf,
                    table,
                    entry,
                } => {
                    e.u8(0);
                    e.u64(*seq);
                    e.str(nf);
                    e.str(table);
                    e.entry(entry);
                }
                ControlMsg::Remove {
                    seq,
                    nf,
                    table,
                    entry,
                } => {
                    e.u8(1);
                    e.u64(*seq);
                    e.str(nf);
                    e.str(table);
                    e.entry(entry);
                }
                ControlMsg::SetIdleTimeout {
                    seq,
                    nf,
                    table,
                    ticks,
                } => {
                    e.u8(2);
                    e.u64(*seq);
                    e.str(nf);
                    e.str(table);
                    e.opt_u64(*ticks);
                }
                ControlMsg::AdvanceTime { seq, ticks } => {
                    e.u8(3);
                    e.u64(*seq);
                    e.u64(*ticks);
                }
                ControlMsg::DrainDigests { seq } => {
                    e.u8(4);
                    e.u64(*seq);
                }
                ControlMsg::ScrapeMetrics { seq } => {
                    e.u8(5);
                    e.u64(*seq);
                }
                ControlMsg::SnapshotState { seq } => {
                    e.u8(6);
                    e.u64(*seq);
                }
                ControlMsg::RestoreState { seq, pipelet, json } => {
                    e.u8(7);
                    e.u64(*seq);
                    e.pipelet(*pipelet);
                    e.str(json);
                }
                ControlMsg::Shutdown { seq } => {
                    e.u8(8);
                    e.u64(*seq);
                }
                ControlMsg::SwapMember { seq } => {
                    e.u8(9);
                    e.u64(*seq);
                }
            }
            CLASS_CONTROL
        }
        Message::Telemetry(t) => {
            match t {
                TelemetryMsg::Ack { seq, info } => {
                    e.u8(0);
                    e.u64(*seq);
                    e.u64(*info);
                }
                TelemetryMsg::Nack { seq, error } => {
                    e.u8(1);
                    e.u64(*seq);
                    e.str(error);
                }
                TelemetryMsg::Digests { switch, records } => {
                    e.u8(2);
                    e.u32(*switch);
                    e.u32(records.len() as u32);
                    for (pipeline, r) in records {
                        e.u32(*pipeline);
                        e.digest(r);
                    }
                }
                TelemetryMsg::DrainDone { seq, digests } => {
                    e.u8(3);
                    e.u64(*seq);
                    e.u64(*digests);
                }
                TelemetryMsg::Metrics { seq, json } => {
                    e.u8(4);
                    e.u64(*seq);
                    e.str(json);
                }
                TelemetryMsg::Snapshot { seq, items } => {
                    e.u8(5);
                    e.u64(*seq);
                    e.u32(items.len() as u32);
                    for (p, json) in items {
                        e.pipelet(*p);
                        e.str(json);
                    }
                }
                TelemetryMsg::Evictions { seq, evictions } => {
                    e.u8(6);
                    e.u64(*seq);
                    e.u32(evictions.len() as u32);
                    for (p, ev) in evictions {
                        e.pipelet(*p);
                        e.str(&ev.table);
                        e.entry(&ev.entry);
                    }
                }
                TelemetryMsg::Delivered { disposition, data } => {
                    e.u8(7);
                    e.disposition(*disposition);
                    e.data(data);
                }
            }
            CLASS_TELEMETRY
        }
    };
    let payload = e.buf;
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
    frame.push(WIRE_VERSION);
    frame.push(class);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    frame
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_be_bytes(
            self.take(16)?.try_into().expect("len 16"),
        ))
    }
    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Length prefix for a variable-size field, bounded by the bytes that
    /// actually remain so a corrupt prefix cannot trigger a huge allocation.
    fn len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            });
        }
        Ok(n)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| WireError::BadUtf8)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(WireError::BadValue(format!("option flag {other}"))),
        }
    }
    fn value(&mut self) -> Result<Value, WireError> {
        let bits = self.u16()?;
        let raw = self.u128()?;
        Ok(Value::new(raw, bits))
    }
    fn values(&mut self) -> Result<Vec<Value>, WireError> {
        // Each value occupies 18 bytes; `len` alone cannot bound the count.
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }
    fn strings(&mut self) -> Result<Vec<String>, WireError> {
        let n = self.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }
    fn key_match(&mut self) -> Result<KeyMatch, WireError> {
        Ok(match self.u8()? {
            0 => KeyMatch::Exact(self.value()?),
            1 => KeyMatch::Ternary(self.value()?, self.value()?),
            2 => KeyMatch::Lpm(self.value()?, self.u16()?),
            3 => KeyMatch::Range(self.value()?, self.value()?),
            4 => KeyMatch::Any,
            other => return Err(WireError::BadValue(format!("key match kind {other}"))),
        })
    }
    fn entry(&mut self) -> Result<TableEntry, WireError> {
        let n = self.u32()? as usize;
        let mut matches = Vec::new();
        for _ in 0..n {
            matches.push(self.key_match()?);
        }
        let action = self.str()?;
        let action_args = self.values()?;
        let priority = self.i32()?;
        Ok(TableEntry {
            matches,
            action,
            action_args,
            priority,
        })
    }
    fn pipelet(&mut self) -> Result<PipeletId, WireError> {
        let gress = match self.u8()? {
            0 => Gress::Ingress,
            1 => Gress::Egress,
            other => return Err(WireError::BadValue(format!("gress {other}"))),
        };
        let pipeline = self.u32()? as usize;
        Ok(PipeletId { pipeline, gress })
    }
    fn disposition(&mut self) -> Result<Disposition, WireError> {
        Ok(match self.u8()? {
            0 => Disposition::Emitted { port: self.u16()? },
            1 => Disposition::Dropped,
            2 => Disposition::ToCpu,
            other => return Err(WireError::BadValue(format!("disposition {other}"))),
        })
    }
    fn hop(&mut self) -> Result<HopSummary, WireError> {
        Ok(HopSummary {
            switch: self.u32()?,
            latency_ns: self.f64()?,
            recirculations: self.u32()?,
            resubmissions: self.u32()?,
            tables_applied: self.strings()?,
            tables_hit: self.strings()?,
        })
    }
    fn data(&mut self) -> Result<DataMsg, WireError> {
        let trace = self.u64()?;
        let port = self.u16()?;
        let latency_ns = self.f64()?;
        let inter_switch_hops = self.u32()?;
        let n = self.u32()? as usize;
        let mut hops = Vec::new();
        for _ in 0..n {
            hops.push(self.hop()?);
        }
        let bytes = self.bytes()?;
        Ok(DataMsg {
            trace,
            port,
            latency_ns,
            inter_switch_hops,
            hops,
            bytes,
        })
    }
    fn digest(&mut self) -> Result<DigestRecord, WireError> {
        Ok(DigestRecord {
            name: self.str()?,
            values: self.values()?,
        })
    }
}

/// Validates a frame header and returns the payload length it announces.
/// Used by stream transports to know how many more bytes to read.
pub fn payload_len(header: &[u8]) -> Result<usize, WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: header.len(),
        });
    }
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[2] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(header[2]));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Overlength {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok(len)
}

/// Decodes one complete frame (header + payload) into a [`Message`].
pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
    let len = payload_len(frame)?;
    let class = frame[3];
    let body = &frame[HEADER_LEN..];
    if body.len() < len {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + len,
            have: frame.len(),
        });
    }
    if body.len() > len {
        return Err(WireError::TrailingBytes {
            extra: body.len() - len,
        });
    }
    let mut d = Dec::new(body);
    let msg = match class {
        CLASS_DATA => Message::Data(d.data()?),
        CLASS_CONTROL => {
            let tag = d.u8()?;
            Message::Control(match tag {
                0 => ControlMsg::Install {
                    seq: d.u64()?,
                    nf: d.str()?,
                    table: d.str()?,
                    entry: d.entry()?,
                },
                1 => ControlMsg::Remove {
                    seq: d.u64()?,
                    nf: d.str()?,
                    table: d.str()?,
                    entry: d.entry()?,
                },
                2 => ControlMsg::SetIdleTimeout {
                    seq: d.u64()?,
                    nf: d.str()?,
                    table: d.str()?,
                    ticks: d.opt_u64()?,
                },
                3 => ControlMsg::AdvanceTime {
                    seq: d.u64()?,
                    ticks: d.u64()?,
                },
                4 => ControlMsg::DrainDigests { seq: d.u64()? },
                5 => ControlMsg::ScrapeMetrics { seq: d.u64()? },
                6 => ControlMsg::SnapshotState { seq: d.u64()? },
                7 => ControlMsg::RestoreState {
                    seq: d.u64()?,
                    pipelet: d.pipelet()?,
                    json: d.str()?,
                },
                8 => ControlMsg::Shutdown { seq: d.u64()? },
                9 => ControlMsg::SwapMember { seq: d.u64()? },
                tag => {
                    return Err(WireError::UnknownTag {
                        class: CLASS_CONTROL,
                        tag,
                    })
                }
            })
        }
        CLASS_TELEMETRY => {
            let tag = d.u8()?;
            Message::Telemetry(match tag {
                0 => TelemetryMsg::Ack {
                    seq: d.u64()?,
                    info: d.u64()?,
                },
                1 => TelemetryMsg::Nack {
                    seq: d.u64()?,
                    error: d.str()?,
                },
                2 => {
                    let switch = d.u32()?;
                    let n = d.u32()? as usize;
                    let mut records = Vec::new();
                    for _ in 0..n {
                        let pipeline = d.u32()?;
                        records.push((pipeline, d.digest()?));
                    }
                    TelemetryMsg::Digests { switch, records }
                }
                3 => TelemetryMsg::DrainDone {
                    seq: d.u64()?,
                    digests: d.u64()?,
                },
                4 => TelemetryMsg::Metrics {
                    seq: d.u64()?,
                    json: d.str()?,
                },
                5 => {
                    let seq = d.u64()?;
                    let n = d.u32()? as usize;
                    let mut items = Vec::new();
                    for _ in 0..n {
                        let p = d.pipelet()?;
                        items.push((p, d.str()?));
                    }
                    TelemetryMsg::Snapshot { seq, items }
                }
                6 => {
                    let seq = d.u64()?;
                    let n = d.u32()? as usize;
                    let mut evictions = Vec::new();
                    for _ in 0..n {
                        let p = d.pipelet()?;
                        let table = d.str()?;
                        let entry = d.entry()?;
                        evictions.push((p, Eviction { table, entry }));
                    }
                    TelemetryMsg::Evictions { seq, evictions }
                }
                7 => TelemetryMsg::Delivered {
                    disposition: d.disposition()?,
                    data: d.data()?,
                },
                tag => {
                    return Err(WireError::UnknownTag {
                        class: CLASS_TELEMETRY,
                        tag,
                    })
                }
            })
        }
        other => return Err(WireError::UnknownClass(other)),
    };
    if d.pos != body.len() {
        return Err(WireError::TrailingBytes {
            extra: body.len() - d.pos,
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode(&msg);
        let back = decode(&frame).expect("decodes");
        assert_eq!(msg, back);
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(Message::Data(DataMsg {
            trace: 7,
            port: 13,
            latency_ns: 1234.5,
            inter_switch_hops: 2,
            hops: vec![HopSummary {
                switch: 1,
                latency_ns: 650.0,
                recirculations: 3,
                resubmissions: 1,
                tables_applied: vec!["a__t".into(), "b__t".into()],
                tables_hit: vec!["a__t".into()],
            }],
            bytes: vec![0xde, 0xad, 0xbe, 0xef],
        }));
    }

    #[test]
    fn control_roundtrip() {
        roundtrip(Message::Control(ControlMsg::Install {
            seq: 2,
            nf: "nat".into(),
            table: "nat_in".into(),
            entry: TableEntry {
                matches: vec![
                    KeyMatch::Exact(Value::new(0xc0a80001, 32)),
                    KeyMatch::Lpm(Value::new(10, 8), 8),
                    KeyMatch::Ternary(Value::new(6, 8), Value::new(0xff, 8)),
                    KeyMatch::Range(Value::new(1, 16), Value::new(1024, 16)),
                    KeyMatch::Any,
                ],
                action: "restore_dst".into(),
                action_args: vec![Value::new(0x0a010101, 32)],
                priority: -3,
            },
        }));
    }

    #[test]
    fn telemetry_roundtrip() {
        roundtrip(Message::Telemetry(TelemetryMsg::Digests {
            switch: 2,
            records: vec![(
                0,
                DigestRecord {
                    name: "nat__flow".into(),
                    values: vec![Value::new(1, 32), Value::new(2, 16)],
                },
            )],
        }));
    }

    #[test]
    fn truncated_and_garbage_are_typed_errors() {
        let frame = encode(&Message::Control(ControlMsg::Shutdown { seq: 4 }));
        for cut in 0..frame.len() {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut} must error");
        }
        assert_eq!(decode(&[0xff; 16]), Err(WireError::BadMagic(0xffff)));
        let mut wrong_version = frame.clone();
        wrong_version[2] = 9;
        assert_eq!(
            decode(&wrong_version),
            Err(WireError::UnsupportedVersion(9))
        );
        let mut extra = frame;
        extra.push(0);
        assert_eq!(decode(&extra), Err(WireError::TrailingBytes { extra: 1 }));
    }
}
