//! NF placement optimization (paper §3.3).
//!
//! Different placements of NFs onto pipelets change how many times packets
//! must recirculate — and §4 shows recirculations cost super-linear
//! throughput. This module provides:
//!
//! * the **traversal cost model**: a faithful simulation of how a chain's
//!   packets move across pipelets under Tofino's constraints, counting
//!   recirculations and resubmissions. It reproduces the paper's Fig. 6
//!   example exactly (3 recirculations for the naive A–F placement, 1 for
//!   the optimized one);
//! * the **naive baseline** the paper critiques ("placing NFs one by one by
//!   order of their indexes, alternating between ingress and egress
//!   pipes");
//! * a **greedy** optimizer, an **exhaustive** search (exact for small
//!   instances), and **simulated annealing** for larger ones —
//!   all minimizing the weighted sum of recirculations over the chain set
//!   ("minimize the weighted sum of the number of recirculations for all
//!   service chains").

use crate::chain::{ChainPolicy, ChainSet};
use crate::compose::CompositionMode;
use dejavu_asic::{Gress, PipeletId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Where an NF lives: a pipelet.
pub type Location = PipeletId;

/// Cost of one chain traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalCost {
    /// Recirculations taken (egress → ingress loops).
    pub recirculations: u32,
    /// Resubmissions taken (ingress → same ingress loops).
    pub resubmissions: u32,
}

impl TraversalCost {
    /// Scalar cost under a model.
    pub fn weighted(&self, model: &CostModel) -> f64 {
        f64::from(self.recirculations) * model.recirc_weight
            + f64::from(self.resubmissions) * model.resub_weight
    }
}

/// Weights of the objective. Recirculations consume loopback-port bandwidth
/// (§4) and dominate; resubmissions only revisit the ingress pipe and are
/// much cheaper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one recirculation.
    pub recirc_weight: f64,
    /// Cost of one resubmission.
    pub resub_weight: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            recirc_weight: 1.0,
            resub_weight: 0.25,
        }
    }
}

/// Errors from placement evaluation / search.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// A chain references an NF with no assigned pipelet.
    UnplacedNf(String),
    /// Traversal did not terminate (pathological placement).
    TraversalDiverged(String),
    /// The search space exceeds the configured exhaustive-search budget.
    SearchTooLarge {
        /// Number of candidate assignments.
        candidates: u128,
        /// Configured cap.
        cap: u128,
    },
    /// No feasible placement exists under the resource surrogate.
    Infeasible(String),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::UnplacedNf(nf) => write!(f, "NF {nf} has no pipelet assignment"),
            PlacementError::TraversalDiverged(c) => write!(f, "traversal diverged for chain {c}"),
            PlacementError::SearchTooLarge { candidates, cap } => {
                write!(
                    f,
                    "exhaustive search too large: {candidates} candidates > cap {cap}"
                )
            }
            PlacementError::Infeasible(m) => write!(f, "no feasible placement: {m}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A full placement: which NFs live on which pipelet, in which composed
/// order, with which composition mode.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Placement {
    /// NFs per pipelet, in composed (slot) order.
    pub pipelets: BTreeMap<PipeletId, Vec<String>>,
    /// Composition mode per pipelet (default sequential).
    pub modes: BTreeMap<PipeletId, CompositionMode>,
}

impl Placement {
    /// Builds a placement from `(pipelet, NFs)` pairs, all sequential.
    pub fn sequential(parts: Vec<(PipeletId, Vec<&str>)>) -> Self {
        let mut p = Placement::default();
        for (pipelet, nfs) in parts {
            p.pipelets
                .insert(pipelet, nfs.into_iter().map(str::to_string).collect());
        }
        p
    }

    /// Pipelet hosting an NF.
    pub fn location(&self, nf: &str) -> Option<PipeletId> {
        self.pipelets
            .iter()
            .find(|(_, nfs)| nfs.iter().any(|n| n == nf))
            .map(|(p, _)| *p)
    }

    /// Slot index of an NF within its pipelet.
    pub fn slot(&self, nf: &str) -> Option<usize> {
        let loc = self.location(nf)?;
        self.pipelets[&loc].iter().position(|n| n == nf)
    }

    /// Composition mode of a pipelet.
    pub fn mode(&self, pipelet: PipeletId) -> CompositionMode {
        self.modes
            .get(&pipelet)
            .copied()
            .unwrap_or(CompositionMode::Sequential)
    }

    /// All placed NFs.
    pub fn nfs(&self) -> impl Iterator<Item = &String> {
        self.pipelets.values().flatten()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pipelet, nfs) in &self.pipelets {
            if !nfs.is_empty() {
                writeln!(
                    f,
                    "  {pipelet}: [{}] ({:?})",
                    nfs.join(", "),
                    self.mode(*pipelet)
                )?;
            }
        }
        Ok(())
    }
}

/// Recirculation decision granularity (§7, "Implications for
/// hardware/compiler designers").
///
/// Current ASICs support recirculation only at *per-port* granularity, with
/// the decision made in the ingress pipe — the paper's constraint set. A
/// hypothetical ASIC with *per-packet* granularity lets a packet choose,
/// after egress processing, whether to be recirculated (and towards which
/// pipeline) or sent out — which the paper predicts would yield
/// "potentially fewer recirculations in the pipelines".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecircGranularity {
    /// Today's hardware: port-granularity loopback, ingress-time decision.
    #[default]
    PerPort,
    /// Hypothetical: per-packet decision after egress processing.
    PerPacket,
}

/// Simulates one chain's traversal over a placement, counting loops.
///
/// `entry_pipeline` is where external packets arrive; `exit_pipeline` is the
/// pipeline owning the final output port. NFs absent from the placement
/// produce [`PlacementError::UnplacedNf`] unless `skip_unplaced` (used by
/// the greedy optimizer's partial evaluations).
pub fn traverse(
    chain: &ChainPolicy,
    placement: &Placement,
    entry_pipeline: usize,
    exit_pipeline: usize,
    skip_unplaced: bool,
) -> Result<TraversalCost, PlacementError> {
    traverse_with(
        chain,
        placement,
        entry_pipeline,
        exit_pipeline,
        skip_unplaced,
        RecircGranularity::PerPort,
    )
}

/// [`traverse`] with an explicit recirculation-granularity model.
pub fn traverse_with(
    chain: &ChainPolicy,
    placement: &Placement,
    entry_pipeline: usize,
    exit_pipeline: usize,
    skip_unplaced: bool,
    granularity: RecircGranularity,
) -> Result<TraversalCost, PlacementError> {
    let mut cost = TraversalCost::default();
    // The NF visit list, with locations.
    let mut visits: Vec<(String, PipeletId)> = Vec::new();
    for nf in &chain.nfs {
        match placement.location(nf) {
            Some(loc) => visits.push((nf.clone(), loc)),
            None if skip_unplaced => {}
            None => return Err(PlacementError::UnplacedNf(nf.clone())),
        }
    }

    let mut cur = PipeletId::ingress(entry_pipeline);
    let mut idx = 0usize;
    // Slot pointer within the current pass: next runnable slot index.
    let mut pass_slot: isize = -1;
    let mut ran_in_pass = 0usize;

    let mut steps = 0usize;
    while idx < visits.len() {
        steps += 1;
        if steps > 10_000 {
            return Err(PlacementError::TraversalDiverged(chain.name.clone()));
        }
        let (nf, target) = &visits[idx];
        if *target == cur {
            // Can this pass still run the NF?
            let slot = placement.slot(nf).expect("placed NF has a slot") as isize;
            let runnable = match placement.mode(cur) {
                CompositionMode::Sequential => slot > pass_slot,
                CompositionMode::Parallel => ran_in_pass == 0,
            };
            if runnable {
                pass_slot = slot;
                ran_in_pass += 1;
                idx += 1;
                continue;
            }
            // Same pipelet but needs a fresh pass.
            match cur.gress {
                Gress::Ingress => {
                    cost.resubmissions += 1;
                }
                Gress::Egress => {
                    // Recirculate to our own ingress, pass through, and
                    // return: egress→ingress costs one recirculation; the
                    // ingress→egress hop is free.
                    cost.recirculations += 1;
                }
            }
            pass_slot = -1;
            ran_in_pass = 0;
            continue;
        }
        // Move toward the target pipelet.
        match (cur.gress, target.gress) {
            (Gress::Ingress, Gress::Egress) => {
                cur = *target; // TM crossing, free
            }
            (Gress::Ingress, Gress::Ingress) => {
                // Must loop through the target pipeline's loopback port:
                // TM → egress(target) [pass-through] → recirc → ingress(target).
                cost.recirculations += 1;
                cur = *target;
            }
            (Gress::Egress, Gress::Ingress) if granularity == RecircGranularity::PerPacket => {
                // Per-packet granularity: the packet chooses its next
                // pipeline after egress processing — one recirculation
                // lands it in the target ingress directly.
                cost.recirculations += 1;
                cur = *target;
            }
            (Gress::Egress, _) => {
                // Per-port hardware: the only way out of an egress pipe is
                // recirculating to the own pipeline's ingress.
                cost.recirculations += 1;
                cur = PipeletId::ingress(cur.pipeline);
            }
        }
        pass_slot = -1;
        ran_in_pass = 0;
    }

    // Exit: reach a port on `exit_pipeline`'s egress pipe.
    match cur.gress {
        Gress::Ingress => {} // TM forwards to any egress for free
        Gress::Egress => {
            if cur.pipeline != exit_pipeline && granularity == RecircGranularity::PerPort {
                cost.recirculations += 1; // loop home, then TM to the exit pipe
            }
            // Per-packet granularity: the packet may be emitted directly
            // after egress processing — no positioning loop needed.
        }
    }
    Ok(cost)
}

/// Resource surrogate + instance description for the optimizers.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// Number of pipelines (pipelets = 2× this).
    pub pipelines: usize,
    /// MAU stages per pipelet.
    pub stages_per_pipelet: u32,
    /// The chains to serve.
    pub chains: ChainSet,
    /// Stage span of each NF (from the compiler).
    pub nf_stages: BTreeMap<String, u32>,
    /// Framework stages consumed per hosted NF (dispatch + flag check).
    pub framework_stages_per_nf: u32,
    /// Framework stages consumed per pipelet regardless of NFs (branching /
    /// decap).
    pub framework_stages_fixed: u32,
    /// Pipeline where external traffic enters.
    pub entry_pipeline: usize,
    /// Pipeline owning the final output ports.
    pub exit_pipeline: usize,
    /// Objective weights.
    pub cost_model: CostModel,
}

impl PlacementProblem {
    /// A problem over the default two-pipeline, 12-stage profile.
    pub fn new(chains: ChainSet, nf_stages: BTreeMap<String, u32>) -> Self {
        PlacementProblem {
            pipelines: 2,
            stages_per_pipelet: 12,
            chains,
            nf_stages,
            framework_stages_per_nf: 2,
            framework_stages_fixed: 1,
            entry_pipeline: 0,
            exit_pipeline: 0,
            cost_model: CostModel::default(),
        }
    }

    /// All pipelets, ingress-then-egress per pipeline, in the naive
    /// baseline's alternating order: Ing0, Eg0, Ing1, Eg1, …
    pub fn pipelets_alternating(&self) -> Vec<PipeletId> {
        (0..self.pipelines)
            .flat_map(|p| [PipeletId::ingress(p), PipeletId::egress(p)])
            .collect()
    }

    /// Stage demand of hosting `nfs` on one pipelet (sequential surrogate).
    pub fn pipelet_stage_demand(&self, nfs: &[String]) -> u32 {
        if nfs.is_empty() {
            return 0;
        }
        self.framework_stages_fixed
            + nfs
                .iter()
                .map(|n| self.nf_stages.get(n).copied().unwrap_or(1) + self.framework_stages_per_nf)
                .sum::<u32>()
    }

    /// Does a pipelet's NF list fit?
    pub fn fits(&self, nfs: &[String]) -> bool {
        self.pipelet_stage_demand(nfs) <= self.stages_per_pipelet
    }

    /// Whole-placement feasibility.
    pub fn feasible(&self, placement: &Placement) -> bool {
        placement.pipelets.iter().all(|(_, nfs)| self.fits(nfs))
            && self
                .chains
                .all_nfs()
                .iter()
                .all(|nf| placement.location(nf).is_some())
    }

    /// Weighted objective of a placement over all chains.
    pub fn cost(&self, placement: &Placement) -> Result<f64, PlacementError> {
        let mut total = 0.0;
        for chain in &self.chains.chains {
            let c = traverse(
                chain,
                placement,
                self.entry_pipeline,
                self.exit_pipeline,
                false,
            )?;
            total += chain.weight * c.weighted(&self.cost_model);
        }
        Ok(total)
    }

    /// Like [`cost`](Self::cost) but skipping unplaced NFs (partial
    /// placements during greedy construction).
    pub fn partial_cost(&self, placement: &Placement) -> Result<f64, PlacementError> {
        let mut total = 0.0;
        for chain in &self.chains.chains {
            let c = traverse(
                chain,
                placement,
                self.entry_pipeline,
                self.exit_pipeline,
                true,
            )?;
            total += chain.weight * c.weighted(&self.cost_model);
        }
        Ok(total)
    }

    /// Canonical NF order: first-appearance across chains (used for intra-
    /// pipelet ordering and the naive baseline).
    pub fn canonical_order(&self) -> Vec<String> {
        self.chains.all_nfs()
    }

    // ------------------------------------------------------------------
    // Optimizers
    // ------------------------------------------------------------------

    /// The paper's naive baseline: place NFs one by one in canonical order,
    /// alternating Ing0, Eg0, Ing1, Eg1, …, packing while they fit.
    pub fn naive(&self) -> Result<Placement, PlacementError> {
        let pipelets = self.pipelets_alternating();
        let mut placement = Placement::default();
        let mut cursor = 0usize;
        for nf in self.canonical_order() {
            loop {
                if cursor >= pipelets.len() {
                    return Err(PlacementError::Infeasible(format!(
                        "naive placement ran out of pipelets at NF {nf}"
                    )));
                }
                let pipelet = pipelets[cursor];
                let mut nfs = placement
                    .pipelets
                    .get(&pipelet)
                    .cloned()
                    .unwrap_or_default();
                nfs.push(nf.clone());
                if self.fits(&nfs) {
                    placement.pipelets.insert(pipelet, nfs);
                    break;
                }
                cursor += 1;
            }
        }
        Ok(placement)
    }

    /// Greedy: NFs in descending traffic weight, each assigned to the
    /// feasible pipelet minimizing the partial objective.
    pub fn greedy(&self) -> Result<Placement, PlacementError> {
        // Weight of each NF = total weight of chains visiting it.
        let mut weight: BTreeMap<String, f64> = BTreeMap::new();
        for c in &self.chains.chains {
            for nf in &c.nfs {
                *weight.entry(nf.clone()).or_insert(0.0) += c.weight;
            }
        }
        let mut order = self.canonical_order();
        order.sort_by(|a, b| {
            weight[b]
                .partial_cmp(&weight[a])
                .unwrap()
                .then_with(|| a.cmp(b))
        });

        let mut placement = Placement::default();
        for nf in order {
            let mut best: Option<(f64, PipeletId)> = None;
            for pipelet in self.pipelets_alternating() {
                let mut nfs = placement
                    .pipelets
                    .get(&pipelet)
                    .cloned()
                    .unwrap_or_default();
                nfs.push(nf.clone());
                if !self.fits(&nfs) {
                    continue;
                }
                let mut trial = placement.clone();
                trial.pipelets.insert(pipelet, nfs);
                // Keep intra-pipelet order canonical for determinism.
                let cost = self.partial_cost(&self.canonicalize(trial.clone()))?;
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, pipelet));
                }
            }
            let Some((_, pipelet)) = best else {
                return Err(PlacementError::Infeasible(format!(
                    "no pipelet fits NF {nf}"
                )));
            };
            let mut nfs = placement
                .pipelets
                .get(&pipelet)
                .cloned()
                .unwrap_or_default();
            nfs.push(nf.clone());
            placement.pipelets.insert(pipelet, nfs);
        }
        let placement = self.canonicalize(placement);
        // Greedy construction can land in a local optimum worse than the
        // trivial baseline; never return worse than naive.
        if let Ok(naive) = self.naive() {
            if let (Ok(gc), Ok(nc)) = (self.cost(&placement), self.cost(&naive)) {
                if nc < gc {
                    return Ok(naive);
                }
            }
        }
        Ok(placement)
    }

    /// Exhaustive search over pipelet assignments (intra-pipelet order is
    /// canonical). Exact minimizer for small instances; errors when the
    /// space exceeds `cap` candidates.
    pub fn exhaustive(&self, cap: u128) -> Result<Placement, PlacementError> {
        let nfs = self.canonical_order();
        let pipelets = self.pipelets_alternating();
        let candidates = (pipelets.len() as u128).pow(nfs.len() as u32);
        if candidates > cap {
            return Err(PlacementError::SearchTooLarge { candidates, cap });
        }
        let mut best: Option<(f64, Placement)> = None;
        let mut assignment = vec![0usize; nfs.len()];
        loop {
            // Build placement from the assignment vector.
            let mut placement = Placement::default();
            for (nf, &pi) in nfs.iter().zip(&assignment) {
                placement
                    .pipelets
                    .entry(pipelets[pi])
                    .or_default()
                    .push(nf.clone());
            }
            let placement = self.canonicalize(placement);
            if self.feasible(&placement) {
                let cost = self.cost(&placement)?;
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((cost, placement));
                }
            }
            // Next assignment (odometer).
            let mut i = 0;
            loop {
                if i == assignment.len() {
                    return best.map(|(_, p)| p).ok_or_else(|| {
                        PlacementError::Infeasible("no feasible assignment".into())
                    });
                }
                assignment[i] += 1;
                if assignment[i] < pipelets.len() {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    /// Simulated annealing from the naive start. Deterministic for a given
    /// seed.
    pub fn anneal(&self, seed: u64, iterations: usize) -> Result<Placement, PlacementError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pipelets = self.pipelets_alternating();
        let nfs = self.canonical_order();
        let mut current = self.naive().or_else(|_| self.greedy())?;
        let mut current_cost = self.cost(&current)?;
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut temperature = 2.0f64;
        let cooling = (0.01f64 / 2.0).powf(1.0 / iterations.max(1) as f64);

        for _ in 0..iterations {
            // Moves: (a) reassign one NF, or (b) swap the entire contents of
            // two pipelets. The swap escapes the local optima where single
            // reassignments pass through infeasible states — e.g. turning
            // Fig. 6(a) into Fig. 6(b) swaps the two egress pipelets
            // wholesale.
            let mut trial = current.clone();
            if rng.gen_bool(0.7) {
                let nf = &nfs[rng.gen_range(0..nfs.len())];
                let target = pipelets[rng.gen_range(0..pipelets.len())];
                for list in trial.pipelets.values_mut() {
                    list.retain(|n| n != nf);
                }
                trial.pipelets.entry(target).or_default().push(nf.clone());
            } else {
                let a = pipelets[rng.gen_range(0..pipelets.len())];
                let b = pipelets[rng.gen_range(0..pipelets.len())];
                if a != b {
                    let list_a = trial.pipelets.remove(&a).unwrap_or_default();
                    let list_b = trial.pipelets.remove(&b).unwrap_or_default();
                    trial.pipelets.insert(a, list_b);
                    trial.pipelets.insert(b, list_a);
                }
            }
            let trial = self.canonicalize(trial);
            if !self.feasible(&trial) {
                temperature *= cooling;
                continue;
            }
            let trial_cost = self.cost(&trial)?;
            let accept = trial_cost <= current_cost
                || rng.gen::<f64>() < ((current_cost - trial_cost) / temperature).exp();
            if accept {
                current = trial;
                current_cost = trial_cost;
                if current_cost < best_cost {
                    best = current.clone();
                    best_cost = current_cost;
                }
            }
            temperature *= cooling;
        }
        Ok(best)
    }

    /// Reorders NFs within each pipelet into canonical chain order (the
    /// order optimizers assume).
    pub fn canonicalize(&self, mut placement: Placement) -> Placement {
        let order = self.canonical_order();
        for nfs in placement.pipelets.values_mut() {
            nfs.sort_by_key(|n| order.iter().position(|o| o == n).unwrap_or(usize::MAX));
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 6 instance: one chain A-B-C-D-E-F over 2 pipelines, exit on
    /// pipe 0. NF sizes chosen so that AB (and EF) share a pipelet but C and
    /// D need their own — the shape drawn in the paper.
    fn fig6_problem() -> PlacementProblem {
        let chains = ChainSet::new(vec![ChainPolicy::new(
            1,
            "abcdef",
            vec!["A", "B", "C", "D", "E", "F"],
            1.0,
        )])
        .unwrap();
        let mut stages = BTreeMap::new();
        for nf in ["A", "B", "E", "F"] {
            stages.insert(nf.to_string(), 2u32);
        }
        for nf in ["C", "D"] {
            stages.insert(nf.to_string(), 6u32);
        }
        PlacementProblem::new(chains, stages)
    }

    fn fig6a_placement() -> Placement {
        Placement::sequential(vec![
            (PipeletId::ingress(0), vec!["A", "B"]),
            (PipeletId::egress(0), vec!["C"]),
            (PipeletId::ingress(1), vec!["D"]),
            (PipeletId::egress(1), vec!["E", "F"]),
        ])
    }

    fn fig6b_placement() -> Placement {
        Placement::sequential(vec![
            (PipeletId::ingress(0), vec!["A", "B"]),
            (PipeletId::egress(1), vec!["C"]),
            (PipeletId::ingress(1), vec!["D"]),
            (PipeletId::egress(0), vec!["E", "F"]),
        ])
    }

    #[test]
    fn fig6a_costs_three_recirculations() {
        let p = fig6_problem();
        let c = traverse(&p.chains.chains[0], &fig6a_placement(), 0, 0, false).unwrap();
        assert_eq!(
            c.recirculations, 3,
            "paper: naive Fig 6(a) needs 3 recirculations"
        );
        assert_eq!(c.resubmissions, 0);
    }

    #[test]
    fn fig6b_costs_one_recirculation() {
        let p = fig6_problem();
        let c = traverse(&p.chains.chains[0], &fig6b_placement(), 0, 0, false).unwrap();
        assert_eq!(
            c.recirculations, 1,
            "paper: optimized Fig 6(b) needs 1 recirculation"
        );
        assert_eq!(c.resubmissions, 0);
    }

    #[test]
    fn naive_reproduces_fig6a_shape() {
        let p = fig6_problem();
        let naive = p.naive().unwrap();
        assert_eq!(naive.pipelets[&PipeletId::ingress(0)], vec!["A", "B"]);
        assert_eq!(naive.pipelets[&PipeletId::egress(0)], vec!["C"]);
        assert_eq!(naive.pipelets[&PipeletId::ingress(1)], vec!["D"]);
        assert_eq!(naive.pipelets[&PipeletId::egress(1)], vec!["E", "F"]);
        assert_eq!(p.cost(&naive).unwrap(), 3.0);
    }

    #[test]
    fn exhaustive_finds_one_recirculation_optimum() {
        let p = fig6_problem();
        let opt = p.exhaustive(1 << 20).unwrap();
        let cost = p.cost(&opt).unwrap();
        assert!(
            cost <= 1.0,
            "exhaustive cost {cost} should be ≤ the paper's 1 recirculation"
        );
    }

    #[test]
    fn optimizers_never_beat_exhaustive_and_never_lose_to_naive() {
        let p = fig6_problem();
        let exact = p.cost(&p.exhaustive(1 << 20).unwrap()).unwrap();
        let naive = p.cost(&p.naive().unwrap()).unwrap();
        let greedy = p.cost(&p.greedy().unwrap()).unwrap();
        let annealed = p.cost(&p.anneal(7, 3000).unwrap()).unwrap();
        assert!(exact <= greedy + 1e-9);
        assert!(exact <= annealed + 1e-9);
        assert!(greedy <= naive + 1e-9);
        assert!(annealed <= naive + 1e-9);
    }

    #[test]
    fn unplaced_nf_detected() {
        let p = fig6_problem();
        let partial = Placement::sequential(vec![(PipeletId::ingress(0), vec!["A"])]);
        let err = traverse(&p.chains.chains[0], &partial, 0, 0, false).unwrap_err();
        assert!(matches!(err, PlacementError::UnplacedNf(_)));
        // skip_unplaced tolerates it.
        assert!(traverse(&p.chains.chains[0], &partial, 0, 0, true).is_ok());
    }

    #[test]
    fn same_ingress_out_of_order_costs_resubmission() {
        let chains = ChainSet::new(vec![ChainPolicy::new(1, "ba", vec!["B", "A"], 1.0)]).unwrap();
        let mut stages = BTreeMap::new();
        stages.insert("A".into(), 1u32);
        stages.insert("B".into(), 1u32);
        let p = PlacementProblem::new(chains, stages);
        // A before B in slot order, chain needs B then A.
        let placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["A", "B"])]);
        let c = traverse(&p.chains.chains[0], &placement, 0, 0, false).unwrap();
        assert_eq!(c.resubmissions, 1);
        assert_eq!(c.recirculations, 0);
    }

    #[test]
    fn same_egress_out_of_order_costs_recirculation() {
        let chains = ChainSet::new(vec![ChainPolicy::new(1, "ba", vec!["B", "A"], 1.0)]).unwrap();
        let mut stages = BTreeMap::new();
        stages.insert("A".into(), 1u32);
        stages.insert("B".into(), 1u32);
        let p = PlacementProblem::new(chains, stages);
        let placement = Placement::sequential(vec![(PipeletId::egress(0), vec!["A", "B"])]);
        let c = traverse(&p.chains.chains[0], &placement, 0, 0, false).unwrap();
        assert_eq!(c.recirculations, 1); // loop home between B and A
    }

    #[test]
    fn parallel_pipelet_single_nf_per_pass() {
        let chains = ChainSet::new(vec![ChainPolicy::new(1, "ab", vec!["A", "B"], 1.0)]).unwrap();
        let mut stages = BTreeMap::new();
        stages.insert("A".into(), 1u32);
        stages.insert("B".into(), 1u32);
        let p = PlacementProblem::new(chains, stages);
        let mut placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["A", "B"])]);
        placement
            .modes
            .insert(PipeletId::ingress(0), CompositionMode::Parallel);
        let c = traverse(&p.chains.chains[0], &placement, 0, 0, false).unwrap();
        // Branch transition on an ingress pipe = one resubmission (§3.2).
        assert_eq!(c.resubmissions, 1);
    }

    #[test]
    fn feasibility_surrogate() {
        let p = fig6_problem();
        // C (6) + D (6) + framework (2×2 + 1) = 17 > 12 stages.
        assert!(!p.fits(&["C".to_string(), "D".to_string()]));
        // A (2) + B (2) + framework (5) = 9 ≤ 12.
        assert!(p.fits(&["A".to_string(), "B".to_string()]));
    }

    #[test]
    fn more_pipelines_never_hurt() {
        // A 4-pipeline ASIC (Tofino-2 class) gives the optimizer more
        // pipelets: the exhaustive optimum must be at least as good as on
        // 2 pipelines, and for the Fig. 6 chain it stays at 1 recirculation.
        let two = fig6_problem();
        let mut four = fig6_problem();
        four.pipelines = 4;
        let cost2 = two.cost(&two.exhaustive(1 << 22).unwrap()).unwrap();
        let cost4 = four.cost(&four.exhaustive(1 << 24).unwrap()).unwrap();
        assert!(
            cost4 <= cost2 + 1e-9,
            "4 pipelines {cost4} vs 2 pipelines {cost2}"
        );
    }

    #[test]
    fn exhaustive_cap_enforced() {
        let p = fig6_problem();
        let err = p.exhaustive(10).unwrap_err();
        assert!(matches!(err, PlacementError::SearchTooLarge { .. }));
    }

    #[test]
    fn per_packet_granularity_reduces_recirculations() {
        // §7: per-packet recirculation decisions shrink the Fig. 6(a)
        // traversal from 3 recirculations to 1 (direct egress→ingress hops
        // and direct emission after the last egress NF).
        let p = fig6_problem();
        let per_port = traverse_with(
            &p.chains.chains[0],
            &fig6a_placement(),
            0,
            0,
            false,
            RecircGranularity::PerPort,
        )
        .unwrap();
        let per_packet = traverse_with(
            &p.chains.chains[0],
            &fig6a_placement(),
            0,
            0,
            false,
            RecircGranularity::PerPacket,
        )
        .unwrap();
        assert_eq!(per_port.recirculations, 3);
        assert_eq!(per_packet.recirculations, 1);
    }

    #[test]
    fn entry_on_egress_exit_mismatch_costs_extra() {
        // Single NF on egress 1, exit on pipe 0 → one recirculation to get
        // home after processing.
        let chains = ChainSet::new(vec![ChainPolicy::new(1, "x", vec!["X"], 1.0)]).unwrap();
        let mut stages = BTreeMap::new();
        stages.insert("X".into(), 1u32);
        let p = PlacementProblem::new(chains, stages);
        let placement = Placement::sequential(vec![(PipeletId::egress(1), vec!["X"])]);
        let c = traverse(&p.chains.chains[0], &placement, 0, 0, false).unwrap();
        assert_eq!(c.recirculations, 1);
        // Exit on pipe 1 instead: free.
        let c = traverse(&p.chains.chains[0], &placement, 0, 1, false).unwrap();
        assert_eq!(c.recirculations, 0);
    }
}
