//! Chain-level static verification (the `dejavu-lint` composition gates).
//!
//! The per-program dataflow analyses live in [`dejavu_p4ir::lint`]; this
//! module layers the *framework-aware* checks on top:
//!
//! * [`lint_pipelet`] runs the p4ir linter over a composed pipelet program
//!   with a [`pipelet_lint_config`] that encodes the framework's documented
//!   invariants (the consume-once flag tables, entry-gated dispatch slots),
//!   then verifies the **SFC-header invariants** (DJV101): the merged
//!   program must know the SFC header type, the generic parser must have an
//!   SFC vertex, every ingress pipelet must end in the branching table and
//!   every egress pipelet must carry the decap table.
//! * [`lint_chain_budget`] checks the **recirculation budget** (DJV102):
//!   the weighted recirculation demand of a chain set under a placement,
//!   priced against the Tofino loopback capacity actually provisioned
//!   (§4 of the paper: recirculations consume real port bandwidth).

use crate::chain::ChainSet;
use crate::compose::{names, NfGate, PipeletPlan};
use crate::placement::{traverse, Placement};
use crate::sfc::SFC_HEADER;
use dejavu_asic::{Gress, TofinoProfile};
use dejavu_p4ir::lint::{check_with_config, Diagnostic, LintCode, LintConfig, LintReport};
use dejavu_p4ir::Program;

/// The lint configuration composed pipelets are judged under.
///
/// Three families of findings are *expected by construction* and therefore
/// allow-listed rather than fixed:
///
/// * `DJV004` on `dv_check_sfc_flags_*` — consecutive flag-translation
///   tables read all four SFC flags and clear the one that fired
///   (consume-once semantics), which the pairwise dependency test sees as a
///   cycle through distinct flag fields. The framework orders these tables
///   explicitly, so the apparent cycle is a documented invariant.
/// * `DJV005` on the dispatch table of an entry-gated slot — for a
///   [`NfGate::NoSfcHeader`] slot the validity gate (`!sfc.isValid()`)
///   replaces the `check_next_nf` application, but the table is still
///   installed so routing synthesis has a uniform target per slot.
/// * `DJV005`/`DJV006` on *foreign* NFs' entities — every pipelet carries
///   the full merged namespace (table definitions, controls) but applies
///   only its own plan's NFs; the other NFs' namespaced tables and
///   controls are intentionally dormant here.
pub fn pipelet_lint_config(program: &Program, plan: &PipeletPlan) -> LintConfig {
    let mut cfg = LintConfig::new().allow(LintCode::DependencyCycle, "dv_check_sfc_flags_*");
    for (k, nf) in plan.nfs.iter().enumerate() {
        if nf.gate == NfGate::NoSfcHeader {
            cfg = cfg.allow(LintCode::UnreachableTable, names::check_next_nf(k));
        }
    }
    // Dormant foreign-NF entities: anything namespaced `<nf>__...` where
    // `<nf>` is not planned on this pipelet.
    let planned: std::collections::BTreeSet<&str> =
        plan.nfs.iter().map(|nf| nf.name.as_str()).collect();
    let foreign = |entity: &str| {
        entity
            .split_once("__")
            .is_some_and(|(owner, _)| !planned.contains(owner))
    };
    for table in program.tables.keys().filter(|t| foreign(t)) {
        cfg = cfg.allow(LintCode::UnreachableTable, table.clone());
    }
    for control in program.controls.keys().filter(|c| foreign(c)) {
        cfg = cfg.allow(LintCode::UnreachableControl, control.clone());
    }
    cfg
}

/// Lints one composed pipelet program: the full p4ir analysis suite under
/// [`pipelet_lint_config`], plus the DJV101 SFC-header invariants.
pub fn lint_pipelet(program: &Program, plan: &PipeletPlan) -> LintReport {
    let cfg = pipelet_lint_config(program, plan);
    let mut report = check_with_config(program, &cfg);

    let mut sfc_invariant = |entity: &str, message: String, note: Option<String>| {
        let mut d = Diagnostic::new(LintCode::SfcInvariant, entity, message);
        d.severity = cfg.severity_for(LintCode::SfcInvariant, entity);
        if let Some(n) = note {
            d = d.with_note(n);
        }
        report.diagnostics.push(d);
    };

    if !program.header_types.contains_key(SFC_HEADER) {
        sfc_invariant(
            &program.name,
            format!("composed pipelet lacks the `{SFC_HEADER}` header type"),
            Some("every Dejavu pipelet must understand the SFC encapsulation".into()),
        );
    }
    if !program
        .parser
        .nodes
        .iter()
        .any(|n| n.header_type == SFC_HEADER)
    {
        sfc_invariant(
            &program.name,
            format!("generic parser has no `{SFC_HEADER}` vertex"),
            Some("SFC-encapsulated packets would fall off the parse graph".into()),
        );
    }

    let order = program.tables_in_order();
    match plan.pipelet.gress {
        Gress::Ingress => {
            if !program.tables.contains_key(names::BRANCHING) {
                sfc_invariant(
                    names::BRANCHING,
                    "ingress pipelet has no branching table".into(),
                    Some("packets could not be routed to their next hop (§3.4)".into()),
                );
            } else if order.last().map(String::as_str) != Some(names::BRANCHING) {
                sfc_invariant(
                    names::BRANCHING,
                    "branching table is not the last table applied on the ingress pipelet".into(),
                    Some(
                        "an NF applied after branching could override the routing decision".into(),
                    ),
                );
            }
        }
        Gress::Egress => {
            if !program.tables.contains_key(names::DECAP) {
                sfc_invariant(
                    names::DECAP,
                    "egress pipelet has no decap table".into(),
                    Some("packets leaving an external port would keep the SFC header".into()),
                );
            }
        }
    }

    report
}

/// Provisioned recirculation capacity and offered load for the DJV102 check.
#[derive(Debug, Clone, Copy)]
pub struct BudgetSpec<'a> {
    /// The target ASIC's resource profile.
    pub profile: &'a TofinoProfile,
    /// Front-panel ports sacrificed as loopback ports (the paper's `m`).
    pub loopback_ports: usize,
    /// External offered load in Gbps across all chains.
    pub offered_gbps: f64,
    /// Pipeline where external packets enter.
    pub entry_pipeline: usize,
    /// Pipeline owning the output ports.
    pub exit_pipeline: usize,
}

impl BudgetSpec<'_> {
    /// Total recirculation bandwidth in Gbps: the provisioned loopback
    /// ports plus each pipeline's dedicated recirculation port.
    pub fn recirc_capacity_gbps(&self) -> f64 {
        self.loopback_ports as f64 * self.profile.port_gbps
            + self.profile.pipelines as f64 * self.profile.dedicated_recirc_gbps
    }
}

/// Checks the chain set's weighted recirculation demand against the
/// provisioned loopback budget (DJV102), and surfaces per-chain traversal
/// failures as DJV101 findings.
///
/// Demand is `offered_gbps × E[recirculations]`, the expectation taken over
/// the chain weights — every recirculation sends the packet through a
/// loopback port once, so a chain recirculating twice consumes twice its
/// arrival bandwidth in loopback capacity.
pub fn lint_chain_budget(
    chains: &ChainSet,
    placement: &Placement,
    spec: &BudgetSpec<'_>,
) -> LintReport {
    let mut report = LintReport::default();
    let total_weight = chains.total_weight();
    let mut weighted_recircs = 0.0;
    let mut per_chain = Vec::new();

    for chain in &chains.chains {
        match traverse(
            chain,
            placement,
            spec.entry_pipeline,
            spec.exit_pipeline,
            false,
        ) {
            Ok(cost) => {
                let share = if total_weight > 0.0 {
                    chain.weight / total_weight
                } else {
                    0.0
                };
                weighted_recircs += share * f64::from(cost.recirculations);
                per_chain.push(format!(
                    "chain `{}` (weight {:.2}): {} recirculation(s), {} resubmission(s)",
                    chain.name, chain.weight, cost.recirculations, cost.resubmissions
                ));
            }
            Err(e) => {
                report.diagnostics.push(Diagnostic::new(
                    LintCode::SfcInvariant,
                    &chain.name,
                    format!("chain cannot be traversed under this placement: {e}"),
                ));
            }
        }
    }

    let demand = spec.offered_gbps * weighted_recircs;
    let capacity = spec.recirc_capacity_gbps();
    if demand > capacity {
        let mut d = Diagnostic::new(
            LintCode::RecircBudget,
            "placement",
            format!(
                "recirculation demand {demand:.1} Gbps exceeds loopback capacity \
                 {capacity:.1} Gbps ({} loopback port(s) + dedicated recirc)",
                spec.loopback_ports
            ),
        )
        .with_note(format!(
            "weighted recirculations per packet: {weighted_recircs:.3} at \
             {:.1} Gbps offered",
            spec.offered_gbps
        ))
        .with_note(format!(
            "with {} loopback port(s) the profile sustains a single recirculation for \
             {:.0}% of external traffic",
            spec.loopback_ports,
            spec.profile.single_recirc_fraction(spec.loopback_ports) * 100.0
        ));
        for line in &per_chain {
            d = d.with_note(line.clone());
        }
        report.diagnostics.push(d);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainPolicy;
    use crate::compose::{compose_pipelet, CompositionMode, PlannedNf};
    use crate::merge::merge_programs;
    use crate::nfmodule::NfModule;
    use crate::sfc::sfc_header_type;
    use dejavu_asic::PipeletId;
    use dejavu_p4ir::well_known;
    use dejavu_p4ir::{
        fref, ActionBuilder, ControlBuilder, Expr, ParserBuilder, ProgramBuilder, TableBuilder,
    };

    fn mini_nf(name: &str) -> NfModule {
        let program = ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(sfc_header_type())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("mark")
                    .set(fref("ipv4", "dscp"), Expr::val(7, 6))
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("work")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("mark")
                    .default_action("pass")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("work").build())
            .entry("ctrl")
            .build()
            .expect("mini NF builds");
        NfModule::new(program).expect("mini NF is API-compliant")
    }

    /// A minimal chain-entry NF: encapsulates every packet with the SFC
    /// header, as the framework's entry-gate contract requires.
    fn mini_classifier(name: &str) -> NfModule {
        let program = ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(sfc_header_type())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("encap")
                    .add_header("sfc", Some("ipv4"))
                    .set(fref("sfc", "path_id"), Expr::val(1, 16))
                    .set(fref("sfc", "service_index"), Expr::val(0, 8))
                    .set(
                        fref("ethernet", "ether_type"),
                        Expr::val(u128::from(crate::sfc::SFC_ETHERTYPE), 16),
                    )
                    .build(),
            )
            .table(
                TableBuilder::new("classify")
                    .key_exact(fref("ipv4", "dst_addr"))
                    .action("encap")
                    .default_action("encap")
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("classify").build())
            .entry("ctrl")
            .build()
            .expect("mini classifier builds");
        NfModule::new(program).expect("mini classifier is API-compliant")
    }

    fn sequential_plan() -> PipeletPlan {
        PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::indexed("alpha"), PlannedNf::indexed("beta")],
            mode: CompositionMode::Sequential,
        }
    }

    #[test]
    fn composed_pipelet_lints_clean() {
        let (a, b) = (mini_nf("alpha"), mini_nf("beta"));
        let merged = merge_programs("sfc_demo", &[&a, &b]).expect("merge");
        let plan = sequential_plan();
        let program = compose_pipelet(&merged, &plan).expect("compose");
        let report = lint_pipelet(&program, &plan);
        assert!(
            report.is_clean(),
            "composed pipelet should lint clean:\n{}",
            report.render_pretty()
        );
    }

    #[test]
    fn entry_gated_pipelet_lints_clean() {
        let (a, b) = (mini_classifier("alpha"), mini_nf("beta"));
        let merged = merge_programs("sfc_demo", &[&a, &b]).expect("merge");
        let plan = PipeletPlan {
            pipelet: PipeletId::ingress(0),
            nfs: vec![PlannedNf::entry("alpha"), PlannedNf::indexed("beta")],
            mode: CompositionMode::Sequential,
        };
        let program = compose_pipelet(&merged, &plan).expect("compose");
        let report = lint_pipelet(&program, &plan);
        assert!(
            report.is_clean(),
            "entry-gated pipelet should lint clean:\n{}",
            report.render_pretty()
        );
    }

    #[test]
    fn missing_branching_table_violates_sfc_invariant() {
        let (a, b) = (mini_nf("alpha"), mini_nf("beta"));
        let merged = merge_programs("sfc_demo", &[&a, &b]).expect("merge");
        let plan = sequential_plan();
        let mut program = compose_pipelet(&merged, &plan).expect("compose");
        program.tables.remove(names::BRANCHING);
        for ctrl in program.controls.values_mut() {
            ctrl.body.retain(|s| {
                !matches!(s,
                dejavu_p4ir::Stmt::Apply(t) if t == names::BRANCHING)
            });
        }
        let report = lint_pipelet(&program, &plan);
        assert!(report
            .errors()
            .iter()
            .any(|d| d.code == LintCode::SfcInvariant && d.message.contains("no branching")));
    }

    #[test]
    fn branching_not_last_violates_sfc_invariant() {
        let (a, b) = (mini_nf("alpha"), mini_nf("beta"));
        let merged = merge_programs("sfc_demo", &[&a, &b]).expect("merge");
        let plan = sequential_plan();
        let mut program = compose_pipelet(&merged, &plan).expect("compose");
        // Apply an NF table again after the branching table.
        let entry = program.entry.clone();
        program
            .controls
            .get_mut(&entry)
            .expect("entry control")
            .body
            .push(dejavu_p4ir::Stmt::Apply("alpha__work".into()));
        let report = lint_pipelet(&program, &plan);
        assert!(report
            .errors()
            .iter()
            .any(|d| d.code == LintCode::SfcInvariant && d.message.contains("not the last")));
    }

    fn two_pipeline_chains() -> (ChainSet, Placement) {
        let chains = ChainSet {
            chains: vec![ChainPolicy {
                path_id: 1,
                name: "ping_pong".into(),
                nfs: vec!["a".into(), "b".into(), "c".into()],
                weight: 1.0,
            }],
        };
        // a and c on pipeline 0's ingress, b on pipeline 1's ingress:
        // every hop is ingress→ingress, costing a recirculation each.
        let placement = Placement::sequential(vec![
            (PipeletId::ingress(0), vec!["a", "c"]),
            (PipeletId::ingress(1), vec!["b"]),
        ]);
        (chains, placement)
    }

    #[test]
    fn recirc_budget_overrun_detected() {
        let profile = TofinoProfile::wedge_100b_32x();
        let (chains, placement) = two_pipeline_chains();
        let spec = BudgetSpec {
            profile: &profile,
            loopback_ports: 2,
            offered_gbps: 1600.0,
            entry_pipeline: 0,
            exit_pipeline: 0,
        };
        let report = lint_chain_budget(&chains, &placement, &spec);
        assert!(
            report.has_errors(),
            "expected DJV102:\n{}",
            report.render_pretty()
        );
        assert!(report
            .errors()
            .iter()
            .any(|d| d.code == LintCode::RecircBudget));
    }

    #[test]
    fn recirc_budget_within_capacity_is_clean() {
        let profile = TofinoProfile::wedge_100b_32x();
        let (chains, placement) = two_pipeline_chains();
        let spec = BudgetSpec {
            profile: &profile,
            loopback_ports: 8,
            offered_gbps: 100.0,
            entry_pipeline: 0,
            exit_pipeline: 0,
        };
        let report = lint_chain_budget(&chains, &placement, &spec);
        assert!(report.is_clean(), "{}", report.render_pretty());
    }

    #[test]
    fn unplaced_nf_surfaces_as_invariant_error() {
        let chains = ChainSet {
            chains: vec![ChainPolicy {
                path_id: 1,
                name: "dangling".into(),
                nfs: vec!["ghost".into()],
                weight: 1.0,
            }],
        };
        let placement = Placement::default();
        let profile = TofinoProfile::wedge_100b_32x();
        let spec = BudgetSpec {
            profile: &profile,
            loopback_ports: 2,
            offered_gbps: 100.0,
            entry_pipeline: 0,
            exit_pipeline: 0,
        };
        let report = lint_chain_budget(&chains, &placement, &spec);
        assert!(report
            .errors()
            .iter()
            .any(|d| d.code == LintCode::SfcInvariant && d.entity == "dangling"));
    }
}
