//! Service chain policies.
//!
//! An SFC policy is an ordered sequence of NF names identified by a service
//! path ID, with a weight reflecting the share of traffic following it
//! (§3.3: "each SFC policy may carry a weight reflecting the percentage of
//! traffic following that chaining policy"). Fig. 2's production example has
//! three paths over five NFs:
//!
//! * `1`: Classifier → Firewall → VGW → Load balancer → Router (red)
//! * `2`: Classifier → VGW → Router (orange)
//! * `3`: Classifier → Router (green)

use std::collections::BTreeSet;
use std::fmt;

/// One service chain policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPolicy {
    /// Service path ID carried in the SFC header.
    pub path_id: u16,
    /// Human-readable name.
    pub name: String,
    /// NF names, in traversal order.
    pub nfs: Vec<String>,
    /// Fraction of traffic on this chain (used as the optimization weight).
    pub weight: f64,
}

impl ChainPolicy {
    /// Creates a policy.
    pub fn new(path_id: u16, name: impl Into<String>, nfs: Vec<&str>, weight: f64) -> Self {
        ChainPolicy {
            path_id,
            name: name.into(),
            nfs: nfs.into_iter().map(str::to_string).collect(),
            weight,
        }
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True when the chain has no NFs.
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }
}

impl fmt::Display for ChainPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "path {} ({}): {}",
            self.path_id,
            self.name,
            self.nfs.join(" → ")
        )
    }
}

/// A set of chain policies sharing one switch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainSet {
    /// The policies.
    pub chains: Vec<ChainPolicy>,
}

impl ChainSet {
    /// Creates a chain set, validating path-ID uniqueness and normalizable
    /// weights.
    pub fn new(chains: Vec<ChainPolicy>) -> Result<Self, String> {
        let mut ids = BTreeSet::new();
        for c in &chains {
            if !ids.insert(c.path_id) {
                return Err(format!("duplicate path_id {}", c.path_id));
            }
            if c.is_empty() {
                return Err(format!("chain {} has no NFs", c.path_id));
            }
            if c.weight <= 0.0 || c.weight.is_nan() {
                return Err(format!("chain {} has non-positive weight", c.path_id));
            }
        }
        Ok(ChainSet { chains })
    }

    /// All distinct NF names across chains, in first-appearance order.
    pub fn all_nfs(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.chains {
            for nf in &c.nfs {
                if !out.contains(nf) {
                    out.push(nf.clone());
                }
            }
        }
        out
    }

    /// Looks up a chain by path ID.
    pub fn chain(&self, path_id: u16) -> Option<&ChainPolicy> {
        self.chains.iter().find(|c| c.path_id == path_id)
    }

    /// Total weight (for normalization).
    pub fn total_weight(&self) -> f64 {
        self.chains.iter().map(|c| c.weight).sum()
    }

    /// The paper's Fig. 2 edge-cloud example: three paths over five NFs.
    pub fn edge_cloud_example() -> Self {
        ChainSet::new(vec![
            ChainPolicy::new(
                1,
                "full",
                vec!["classifier", "firewall", "vgw", "lb", "router"],
                0.5,
            ),
            ChainPolicy::new(2, "vgw-only", vec!["classifier", "vgw", "router"], 0.3),
            ChainPolicy::new(3, "direct", vec!["classifier", "router"], 0.2),
        ])
        .expect("example chain set is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cloud_example_shape() {
        let cs = ChainSet::edge_cloud_example();
        assert_eq!(cs.chains.len(), 3);
        assert_eq!(
            cs.all_nfs(),
            vec!["classifier", "firewall", "vgw", "lb", "router"]
        );
        assert_eq!(cs.chain(1).unwrap().len(), 5);
        assert_eq!(cs.chain(3).unwrap().nfs, vec!["classifier", "router"]);
        assert!((cs.total_weight() - 1.0).abs() < 1e-12);
        assert!(cs.chain(4).is_none());
    }

    #[test]
    fn duplicate_path_id_rejected() {
        let err = ChainSet::new(vec![
            ChainPolicy::new(1, "a", vec!["x"], 1.0),
            ChainPolicy::new(1, "b", vec!["y"], 1.0),
        ])
        .unwrap_err();
        assert!(err.contains("duplicate"));
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(ChainSet::new(vec![ChainPolicy::new(1, "a", vec![], 1.0)]).is_err());
    }

    #[test]
    fn bad_weight_rejected() {
        assert!(ChainSet::new(vec![ChainPolicy::new(1, "a", vec!["x"], 0.0)]).is_err());
        assert!(ChainSet::new(vec![ChainPolicy::new(1, "a", vec!["x"], -1.0)]).is_err());
    }

    #[test]
    fn display_formats() {
        let c = ChainPolicy::new(2, "vgw-only", vec!["classifier", "vgw"], 0.3);
        assert_eq!(c.to_string(), "path 2 (vgw-only): classifier → vgw");
    }
}
