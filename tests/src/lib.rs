//! Shared fixtures for the cross-crate integration tests.
//!
//! The centerpiece is [`fig9_testbed`]: the paper's §5 prototype — the five
//! Fig. 2 NFs deployed on a Wedge-100B-like profile (2 pipelines, 4
//! pipelets), pipeline 1's Ethernet ports in loopback mode, so the switch
//! offers half its capacity externally and every packet may recirculate
//! once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dejavu_asic::{PipeletId, PortId, Switch, TofinoProfile};
use dejavu_core::deploy::{deploy, DeployOptions, Deployment};
use dejavu_core::placement::Placement;
use dejavu_core::routing::RoutingConfig;
use dejavu_core::{ChainSet, NfModule};
use dejavu_nf::{classifier, firewall, load_balancer, router, vgw};

/// Port where external traffic enters (pipeline 0).
pub const IN_PORT: PortId = 0;
/// Exit port for all chains (pipeline 0).
pub const EXIT_PORT: PortId = 2;
/// A loopback port on pipeline 1 (its whole bank is in loopback in §5; the
/// simulator only needs one for correctness).
pub const LOOPBACK_PORT_P1: PortId = 16;
/// A loopback port on pipeline 0 (for completeness; §5 routes all
/// recirculation through pipeline 1).
pub const LOOPBACK_PORT_P0: PortId = 15;

/// Per-path source prefixes the classifier steers (`10.<path>.0.0/16`).
pub fn src_prefix(path_id: u16) -> (u32, u16) {
    (0x0a00_0000 | (u32::from(path_id) << 16), 16)
}

/// The §5 prototype placement: classifier+firewall on ingress 0, VGW+LB on
/// egress 1, router on ingress 1; exit via egress 0. Every chain needs at
/// most one recirculation — matching the paper's "allow all the traffic
/// \[to\] recirculate on the ASIC for once".
pub fn fig9_placement() -> Placement {
    Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["classifier", "firewall"]),
        (PipeletId::egress(1), vec!["vgw", "lb"]),
        (PipeletId::ingress(1), vec!["router"]),
    ])
}

/// Builds and deploys the §5 prototype; returns the live switch and the
/// deployment handle. Classifier/firewall/VGW/router rules are installed;
/// LB sessions are not (so the first packet of each flow punts, as in the
/// paper's §3.1 control-plane flow).
pub fn fig9_testbed() -> (Switch, Deployment) {
    let nfs: Vec<NfModule> = vec![
        classifier::classifier(),
        firewall::firewall(),
        vgw::vgw(),
        load_balancer::load_balancer(),
        router::router(),
    ];
    let nf_refs: Vec<&NfModule> = nfs.iter().collect();
    let chains = ChainSet::edge_cloud_example();

    let config = RoutingConfig {
        loopback_port: [(0usize, LOOPBACK_PORT_P0), (1usize, LOOPBACK_PORT_P1)]
            .into_iter()
            .collect(),
        exit_ports: chains
            .chains
            .iter()
            .map(|c| (c.path_id, EXIT_PORT))
            .collect(),
        honor_out_port: false,
    };
    let options = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let (mut switch, deployment) = deploy(
        &nf_refs,
        &chains,
        &fig9_placement(),
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &options,
    )
    .expect("fig9 prototype deploys");

    install_baseline_rules(&mut switch, &deployment);
    (switch, deployment)
}

/// Installs classifier / vgw / router rules for the three chains. The
/// firewall gets one deny rule (TCP to port 22 on path 1's prefix) so the
/// deny path is testable; LB sessions are left to the tests.
pub fn install_baseline_rules(switch: &mut Switch, deployment: &Deployment) {
    let mut install = |nf: &str, table: &str, entry| {
        deployment
            .install(switch, nf, table, entry)
            .expect("rule installs");
    };
    // Classifier: one prefix per path.
    for path in [1u16, 2, 3] {
        install(
            "classifier",
            dejavu_nf::classifier::CLASSIFY_TABLE,
            dejavu_nf::classifier::classify_entry(src_prefix(path), (0, 0), path, 100 + path),
        );
    }
    // Firewall: deny TCP/22 from path 1's prefix.
    install(
        "firewall",
        dejavu_nf::firewall::ACL_TABLE,
        dejavu_nf::firewall::deny_entry(src_prefix(1), (0, 0), Some(6), (22, 22), 10),
    );
    // VGW: all of 198.51.100.0/24 is VNI 700.
    install(
        "vgw",
        dejavu_nf::vgw::VNI_TABLE,
        dejavu_nf::vgw::vni_entry((0xc633_6400, 24), 700),
    );
    // Router: default route out the exit port.
    install(
        "router",
        dejavu_nf::router::ROUTES_TABLE,
        dejavu_nf::router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
    );
}

/// A marker NF for placement sweeps: XORs `1 << bit` into `ipv4.dscp`-free
/// territory (`src_addr`) so traversal is observable on the wire, and
/// otherwise conforms to the NF API.
pub fn marker_nf(name: &str, bit: u32) -> NfModule {
    use dejavu_p4ir::builder::*;
    use dejavu_p4ir::{fref, Expr};
    let p = ProgramBuilder::new(name)
        .header(dejavu_p4ir::well_known::ethernet())
        .header(dejavu_p4ir::well_known::ipv4())
        .header(dejavu_core::sfc::sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("mark")
                .set(
                    fref("ipv4", "src_addr"),
                    Expr::Xor(
                        Box::new(Expr::field("ipv4", "src_addr")),
                        Box::new(Expr::val(1u128 << bit, 32)),
                    ),
                )
                .build(),
        )
        .action(ActionBuilder::new("pass").build())
        .table(
            TableBuilder::new("work")
                .key_exact(fref("ipv4", "protocol"))
                .default_action("mark")
                .action("pass")
                .size(16)
                .build(),
        )
        .control(ControlBuilder::new("ctrl").apply("work").build())
        .entry("ctrl")
        .build()
        .expect("marker NF is well-formed");
    NfModule::new(p).expect("marker NF conforms to the API")
}

/// Builds an SFC-encapsulated TCP packet for `path_id` at service index
/// `index` (as if already classified) — used to drive chains that have no
/// classifier NF.
pub fn encapsulated_packet(path_id: u16, index: u8) -> Vec<u8> {
    let raw = dejavu_traffic::PacketBuilder::tcp()
        .src_ip(0x0a00_0001)
        .dst_ip(0x0a00_0002)
        .build();
    let mut sfc = dejavu_core::SfcHeader::for_path(path_id);
    sfc.service_index = index;
    let mut out = Vec::with_capacity(raw.len() + 20);
    out.extend_from_slice(&raw[..12]);
    out.extend_from_slice(&dejavu_core::sfc::SFC_ETHERTYPE.to_be_bytes());
    out.extend_from_slice(&sfc.to_bytes());
    out.extend_from_slice(&raw[14..]);
    out
}

/// Deploys marker NFs under an arbitrary placement with default loopback /
/// exit ports — the harness for placement-model-vs-switch sweeps.
pub fn deploy_markers(
    chains: &ChainSet,
    placement: &Placement,
) -> Result<(Switch, Deployment), dejavu_core::deploy::DeployError> {
    deploy_markers_with(chains, placement, DeployOptions::default())
}

/// [`deploy_markers`] with explicit deployment options (composition-mode
/// overrides etc.).
pub fn deploy_markers_with(
    chains: &ChainSet,
    placement: &Placement,
    options: DeployOptions,
) -> Result<(Switch, Deployment), dejavu_core::deploy::DeployError> {
    let names = chains.all_nfs();
    let nfs: Vec<NfModule> = names
        .iter()
        .enumerate()
        .map(|(i, n)| marker_nf(n, (i % 32) as u32))
        .collect();
    let nf_refs: Vec<&NfModule> = nfs.iter().collect();
    let config = RoutingConfig {
        loopback_port: [(0usize, LOOPBACK_PORT_P0), (1usize, LOOPBACK_PORT_P1)]
            .into_iter()
            .collect(),
        exit_ports: chains
            .chains
            .iter()
            .map(|c| (c.path_id, EXIT_PORT))
            .collect(),
        honor_out_port: false,
    };
    deploy(
        &nf_refs,
        chains,
        placement,
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &options,
    )
}

/// A TCP packet of `path`'s prefix toward the VIP-ish destination.
pub fn chain_packet(path: u16, dst_ip: u32, dst_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(src_prefix(path).0 | 0x0101)
        .dst_ip(dst_ip)
        .src_port(40000 + path)
        .dst_port(dst_port)
        .build()
}
