//! Flow-state runtime, end to end: dynamic NAT learns a flow through the
//! digest path, return traffic is translated without a punt, idle entries
//! age out (visible in telemetry), and a hot NF upgrade migrates the live
//! flow state — on both execution engines.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{ExecMode, InjectedPacket, PipeletId, Switch, TofinoProfile};
use dejavu_core::control_plane::ControlPlane;
use dejavu_core::deploy::{deploy, DeployOptions, Deployment};
use dejavu_core::placement::Placement;
use dejavu_core::routing::RoutingConfig;
use dejavu_core::{ChainPolicy, ChainSet, NfModule};
use dejavu_integration::{EXIT_PORT, IN_PORT, LOOPBACK_PORT_P0, LOOPBACK_PORT_P1};
use dejavu_nf::nat::{dynamic_nat, nat_learn_policy, nat_out_entry, NAT_FLOW_STREAM, NAT_IN_TABLE};
use dejavu_nf::{classifier, router};

/// The server the internal client talks to.
const SERVER: u32 = 0x0808_0808;
/// The NAT's public address.
const PUBLIC_IP: u32 = 0xc633_6401;
/// The internal client (under 10.1.0.0/16).
const CLIENT: u32 = 0x0a01_0101;
const CLIENT_PORT: u16 = 40001;

/// classifier → nat → router, all on pipeline 0; both directions ride the
/// same path (the classifier steers the internal prefix outbound and the
/// server prefix back in).
fn nat_testbed(mode: ExecMode) -> (Switch, Deployment) {
    let nfs: Vec<NfModule> = vec![classifier::classifier(), dynamic_nat(), router::router()];
    let nf_refs: Vec<&NfModule> = nfs.iter().collect();
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "nat_path",
        vec!["classifier", "nat", "router"],
        1.0,
    )])
    .unwrap();
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["classifier", "nat"]),
        (PipeletId::egress(0), vec!["router"]),
    ]);
    let config = RoutingConfig {
        loopback_port: [(0usize, LOOPBACK_PORT_P0), (1usize, LOOPBACK_PORT_P1)]
            .into_iter()
            .collect(),
        exit_ports: [(1u16, EXIT_PORT)].into_iter().collect(),
        honor_out_port: false,
    };
    let options = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let (mut switch, dep) = deploy(
        &nf_refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &options,
    )
    .expect("nat chain deploys");
    switch.set_exec_mode(mode);
    switch.set_telemetry(true);

    // Steer both directions onto path 1.
    for prefix in [(0x0a01_0000u32, 16u16), (0x0800_0000, 8)] {
        dep.install(
            &mut switch,
            "classifier",
            classifier::CLASSIFY_TABLE,
            classifier::classify_entry(prefix, (0, 0), 1, 100),
        )
        .unwrap();
    }
    // NAT: learn + rewrite the internal prefix to the public address.
    dep.install(
        &mut switch,
        "nat",
        dejavu_nf::nat::NAT_OUT_TABLE,
        nat_out_entry((0x0a01_0000, 16), PUBLIC_IP),
    )
    .unwrap();
    // Router: default route out the exit port.
    dep.install(
        &mut switch,
        "router",
        router::ROUTES_TABLE,
        router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
    )
    .unwrap();
    (switch, dep)
}

fn outbound_packet() -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(CLIENT)
        .dst_ip(SERVER)
        .src_port(CLIENT_PORT)
        .dst_port(80)
        .build()
}

fn return_packet() -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(SERVER)
        .dst_ip(PUBLIC_IP)
        .src_port(80)
        .dst_port(CLIENT_PORT)
        .build()
}

fn ip_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

fn dynamic_nat_learns_translates_ages_and_migrates(mode: ExecMode) {
    let (mut switch, mut dep) = nat_testbed(mode);
    let mut cp = ControlPlane::new();
    cp.register_learn_policy("nat", NAT_FLOW_STREAM, nat_learn_policy());

    // 1. Outbound: emitted with the source rewritten to the public IP,
    //    and a digest queued for the learning loop.
    let t = switch
        .inject(InjectedPacket::new(outbound_packet(), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(ip_at(&t.final_bytes, 26), PUBLIC_IP, "source not rewritten");
    assert_eq!(switch.digest_backlog(0), 1);

    // 2. The learning loop turns the digest into a nat_in entry.
    let installed = cp.process_digests(&mut switch, &dep).unwrap();
    assert_eq!(installed, 1);
    assert_eq!(cp.stats.learns, 1);
    assert_eq!(switch.digest_backlog(0), 0);

    // 3. Return traffic is translated back in the data plane — no punt.
    let t = switch
        .inject(InjectedPacket::new(return_packet(), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(ip_at(&t.final_bytes, 30), CLIENT, "return not translated");

    // 4. Re-learning the same flow is idempotent: the digest fires again
    //    on the next outbound packet, but nothing new is installed.
    let t = switch
        .inject(InjectedPacket::new(outbound_packet(), IN_PORT))
        .unwrap();
    assert_eq!(ip_at(&t.final_bytes, 26), PUBLIC_IP);
    assert_eq!(cp.process_digests(&mut switch, &dep).unwrap(), 0);

    // 5. Hot upgrade of the NAT: live flow state survives the swap and the
    //    very next return packet is still translated — zero mistranslations.
    let v2 = dynamic_nat();
    let all = [classifier::classifier(), dynamic_nat(), router::router()];
    let refs: Vec<&NfModule> = all.iter().collect();
    let outcome = dep.upgrade_nf(&mut switch, &v2, &refs).unwrap();
    assert!(outcome.affected_nfs.contains(&"nat".to_string()));
    assert!(outcome.migration.is_clean(), "{:?}", outcome.migration);
    assert!(outcome.migration.restored_entries > 0);
    let t = switch
        .inject(InjectedPacket::new(return_packet(), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(
        ip_at(&t.final_bytes, 30),
        CLIENT,
        "flow state lost across upgrade"
    );

    // 6. Aging: after the idle timeout passes with no traffic, the learned
    //    entry is evicted — and the eviction shows up in telemetry.
    dep.set_idle_timeout(&mut switch, "nat", NAT_IN_TABLE, Some(5))
        .unwrap();
    let evicted = switch.advance_time(10);
    assert!(
        evicted
            .iter()
            .any(|(_, e)| e.table == format!("nat__{NAT_IN_TABLE}")),
        "learned entry should age out: {evicted:?}"
    );
    let snap = switch.metrics_snapshot();
    assert!(snap.counter("digests_emitted{pipeline=\"0\"}") >= 2);
    assert_eq!(
        snap.counter(&format!(
            "table_evictions{{pipelet=\"ingress0\",table=\"nat__{NAT_IN_TABLE}\"}}"
        )),
        1
    );
    // The flow is gone: return traffic is no longer translated.
    let t = switch
        .inject(InjectedPacket::new(return_packet(), IN_PORT))
        .unwrap();
    assert_eq!(ip_at(&t.final_bytes, 30), PUBLIC_IP, "entry not evicted");
}

#[test]
fn dynamic_nat_end_to_end_reference() {
    dynamic_nat_learns_translates_ages_and_migrates(ExecMode::Reference);
}

#[test]
fn dynamic_nat_end_to_end_compiled() {
    dynamic_nat_learns_translates_ages_and_migrates(ExecMode::Compiled);
}
