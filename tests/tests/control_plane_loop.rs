//! The §3.1 control-plane loop, end to end: the load balancer's first
//! packet of a flow misses `lb_session`, is punted to the CPU, the control
//! plane learns the session from the punted bytes, installs it through the
//! per-NF API translation layer, reinjects — and the packet (plus all
//! subsequent packets of the flow) completes the chain in the data plane.

use dejavu_asic::switch::Disposition;
use dejavu_core::control_plane::{ControlPlane, PuntResponse};
use dejavu_core::sfc::SFC_ETHERTYPE;
use dejavu_integration::*;
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};

const VIP: u32 = 0xc633_6450;
const BACKEND: u32 = 0x0a63_0001;

#[test]
fn lb_punt_install_reinject_cycle() {
    let (mut switch, dep) = fig9_testbed();
    let mut cp = ControlPlane::new();

    // LB handler: learn the session from the punted packet (which is
    // SFC-encapsulated mid-chain), install via the NF's own table name.
    cp.register_handler(
        "lb",
        Box::new(|bytes| {
            let ether_type = u16::from_be_bytes([bytes[12], bytes[13]]);
            if ether_type != SFC_ETHERTYPE {
                return PuntResponse::default(); // not ours
            }
            let Some(tuple) = five_tuple_of(bytes) else {
                return PuntResponse::default();
            };
            // Only claim packets addressed to our VIP.
            if tuple.dst_addr != VIP {
                return PuntResponse::default();
            }
            PuntResponse {
                install: vec![(
                    "lb".into(),
                    SESSION_TABLE.into(),
                    session_entry_for(&tuple, BACKEND),
                )],
                reinject: true,
                // Rewind past the advance so the LB re-executes and the new
                // session rewrites the packet.
                reinject_bytes: dejavu_core::control_plane::rewind_and_clear(bytes),
            }
        }),
    );

    // First packet: punted at the LB.
    let pkt = chain_packet(1, VIP, 80);
    let t = cp
        .inject_tracking_punts(&mut switch, pkt.clone(), IN_PORT)
        .unwrap();
    assert_eq!(t.disposition, Disposition::ToCpu);
    assert_eq!(cp.pending_punts(), 1);

    // Control plane round: installs the session and reinjects.
    let reinjected = cp.process_punts(&mut switch, &dep).unwrap();
    assert_eq!(reinjected.len(), 1);
    assert_eq!(
        reinjected[0].disposition,
        Disposition::Emitted { port: EXIT_PORT }
    );
    assert_eq!(cp.pending_punts(), 0);
    assert_eq!(cp.stats.installs, 1);
    assert_eq!(cp.stats.reinjections, 1);

    // The reinjected packet reached the backend, decapsulated.
    let out = &reinjected[0].final_bytes;
    assert_eq!(u16::from_be_bytes([out[12], out[13]]), 0x0800);
    assert_eq!(
        u32::from_be_bytes([out[30], out[31], out[32], out[33]]),
        BACKEND
    );

    // Subsequent packets of the flow stay in the data plane.
    let t = cp.inject_tracking_punts(&mut switch, pkt, IN_PORT).unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(cp.pending_punts(), 0);
}

#[test]
fn unrelated_punts_are_not_claimed() {
    let (mut switch, dep) = fig9_testbed();
    let mut cp = ControlPlane::new();
    cp.register_handler("lb", Box::new(|_| PuntResponse::default()));

    // Unclassified traffic punts at the classifier; the LB handler ignores
    // it, so nothing is installed or reinjected.
    let stray = dejavu_traffic::PacketBuilder::tcp()
        .src_ip(0xac10_0001)
        .dst_ip(VIP)
        .build();
    let t = cp
        .inject_tracking_punts(&mut switch, stray, IN_PORT)
        .unwrap();
    assert_eq!(t.disposition, Disposition::ToCpu);
    let reinjected = cp.process_punts(&mut switch, &dep).unwrap();
    assert!(reinjected.is_empty());
    assert_eq!(cp.stats.installs, 0);
}
