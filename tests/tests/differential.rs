//! Differential property test: the compiled fast path and the reference
//! interpreter are observationally identical.
//!
//! For arbitrary generated programs (random table key kinds, action
//! bodies with arithmetic / hashing / register access / drops, guarded
//! control flow), arbitrary table entries, and arbitrary packet
//! sequences, three switches loaded with the same program — one in
//! [`ExecMode::Reference`], one in [`ExecMode::Compiled`], and one driven
//! through the pooled zero-allocation path ([`Switch::inject_buf`]) — must
//! agree on *everything* observable: traversals (events, dispositions,
//! final bytes, latency, recirculation/resubmission counts, mirror
//! copies), table hit/miss counters, and register state. The pooled
//! engine produces no event trace, so its column is compared on the
//! trace-free surface (disposition, bytes, latency, counts, mirrors,
//! state, telemetry).

use proptest::prelude::*;

use dejavu_asic::{ExecMode, InjectedPacket, PipeletId, Switch, TofinoProfile};
use dejavu_p4ir::action::HashAlgorithm;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{fref, well_known, Expr, FieldRef, Program, Value};

/// Key kinds a generated table may use, with the field each applies to.
#[derive(Debug, Clone, Copy)]
enum KeyKind {
    ExactMac,
    LpmDst,
    TernaryTtl,
    ExactMeta,
}

/// One generated table: a key kind plus entries described as small
/// integers that the builder maps into the matching `KeyMatch` shape.
#[derive(Debug, Clone)]
struct GenTable {
    kind: KeyKind,
    /// `(key_seed, action_idx, priority + 4)` per entry — the priority is
    /// stored biased by +4 so the generator only deals in unsigned ranges.
    entries: Vec<(u8, u8, u8)>,
    default_action: u8,
    guarded: bool,
}

const ACTION_NAMES: [&str; 6] = ["fwd", "ttl_bump", "mix", "count", "deny", "pass"];

fn action_name(idx: u8) -> &'static str {
    ACTION_NAMES[usize::from(idx) % ACTION_NAMES.len()]
}

/// Arguments each action expects (only `fwd` takes one: the port).
fn action_args(idx: u8, key_seed: u8) -> Vec<Value> {
    if action_name(idx) == "fwd" {
        // Ports 0..8 are valid Ethernet ports on the wedge profile; 9 maps
        // to a real port too. Keep them small so packets actually emit.
        vec![Value::new(u128::from(key_seed % 8), 16)]
    } else {
        Vec::new()
    }
}

fn key_match(kind: KeyKind, seed: u8) -> KeyMatch {
    match kind {
        KeyKind::ExactMac => KeyMatch::Exact(Value::new(u128::from(seed % 16), 48)),
        KeyKind::LpmDst => KeyMatch::Lpm(
            Value::new(0x0a00_0000 | (u128::from(seed % 4) << 16), 32),
            8 + u16::from(seed % 3) * 8,
        ),
        KeyKind::TernaryTtl => KeyMatch::Ternary(
            Value::new(u128::from(seed % 4), 8),
            Value::new(if seed.is_multiple_of(5) { 0 } else { 0x0f }, 8),
        ),
        KeyKind::ExactMeta => KeyMatch::Exact(Value::new(u128::from(seed % 4), 16)),
    }
}

fn build_program(tables: &[GenTable]) -> Program {
    let mut b = ProgramBuilder::new("diff")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .meta_field("m0", 16)
        .meta_field("m1", 16)
        .register("r0", 32, 8)
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("ttl_bump")
                .set(
                    fref("ipv4", "ttl"),
                    Expr::Sub(
                        Box::new(Expr::field("ipv4", "ttl")),
                        Box::new(Expr::val(1, 8)),
                    ),
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(2, 16))
                .build(),
        )
        .action(
            ActionBuilder::new("mix")
                .hash(
                    FieldRef::meta("m1"),
                    HashAlgorithm::Crc16,
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("ipv4", "dst_addr"),
                    ],
                )
                .set(
                    FieldRef::meta("m0"),
                    Expr::Add(
                        Box::new(Expr::meta("m0")),
                        Box::new(Expr::And(
                            Box::new(Expr::meta("m1")),
                            Box::new(Expr::val(0x3, 16)),
                        )),
                    ),
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(3, 16))
                .build(),
        )
        .action(
            ActionBuilder::new("count")
                .reg_read(
                    FieldRef::meta("m0"),
                    "r0",
                    Expr::And(
                        Box::new(Expr::field("ipv4", "dst_addr")),
                        Box::new(Expr::val(0x7, 32)),
                    ),
                )
                .reg_write(
                    "r0",
                    Expr::And(
                        Box::new(Expr::field("ipv4", "dst_addr")),
                        Box::new(Expr::val(0x7, 32)),
                    ),
                    Expr::Add(Box::new(Expr::meta("m0")), Box::new(Expr::val(1, 32))),
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(4, 16))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .action(ActionBuilder::new("pass").build());

    let mut control = ControlBuilder::new("ingress");
    for (i, t) in tables.iter().enumerate() {
        let mut tb = TableBuilder::new(format!("t{i}"));
        tb = match t.kind {
            KeyKind::ExactMac => tb.key_exact(fref("ethernet", "dst_mac")),
            KeyKind::LpmDst => tb.key_lpm(fref("ipv4", "dst_addr")),
            KeyKind::TernaryTtl => tb.key_ternary(fref("ipv4", "ttl")),
            KeyKind::ExactMeta => tb.key_exact(FieldRef::meta("m0")),
        };
        for name in ACTION_NAMES {
            tb = tb.action(name);
        }
        tb = tb.default_action(action_name(t.default_action));
        if action_name(t.default_action) == "fwd" {
            tb = tb.default_args(vec![Value::new(1, 16)]);
        }
        b = b.table(tb.build());
        if t.guarded {
            control = control.stmt(dejavu_p4ir::Stmt::If {
                cond: dejavu_p4ir::BoolExpr::Valid("ipv4".into()),
                then_branch: vec![dejavu_p4ir::Stmt::Apply(format!("t{i}"))],
                else_branch: vec![dejavu_p4ir::Stmt::Do("deny".into())],
            });
        } else {
            control = control.apply(&format!("t{i}"));
        }
    }
    b.control(control.build())
        .entry("ingress")
        .build()
        .expect("generated program validates")
}

fn arb_table() -> impl Strategy<Value = GenTable> {
    (
        prop_oneof![
            Just(KeyKind::ExactMac),
            Just(KeyKind::LpmDst),
            Just(KeyKind::TernaryTtl),
            Just(KeyKind::ExactMeta),
        ],
        proptest::collection::vec((any::<u8>(), any::<u8>(), 0u8..8), 0..8),
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(kind, entries, default_action, guarded)| GenTable {
            kind,
            entries,
            default_action,
            guarded,
        })
}

/// An eth+ipv4 packet with small-domain fields so table entries hit often.
fn gen_packet(mac: u8, dst: u8, ttl: u8, ipv4: bool, payload: u8) -> Vec<u8> {
    if ipv4 {
        let mut p = dejavu_traffic::PacketBuilder::udp()
            .src_ip(0x0a00_0001)
            .dst_ip(0x0a00_0000 | (u32::from(dst % 4) << 16) | u32::from(dst))
            .src_port(1000)
            .dst_port(53)
            .ttl(ttl % 4)
            .payload(&vec![0xab; usize::from(payload % 32)])
            .build();
        p[..6].copy_from_slice(&u64::from(mac % 16).to_be_bytes()[2..]);
        p
    } else {
        let mut p = vec![0u8; 14 + usize::from(payload % 32)];
        p[..6].copy_from_slice(&u64::from(mac % 16).to_be_bytes()[2..]);
        p[12] = 0x86;
        p[13] = 0xdd;
        p
    }
}

fn testbed(program: &Program, tables: &[GenTable], mode: ExecMode) -> Switch {
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_exec_mode(mode);
    sw.set_mirror_port(Some(30));
    sw.set_telemetry(true);
    sw.load_program(PipeletId::ingress(0), program.clone())
        .unwrap();
    for (i, t) in tables.iter().enumerate() {
        for &(key_seed, action_idx, priority) in &t.entries {
            // Installs may legitimately fail (table full); both switches
            // must agree, so ignore the result — it is deterministic.
            let _ = sw.install_entry(
                PipeletId::ingress(0),
                &format!("t{i}"),
                TableEntry {
                    matches: vec![key_match(t.kind, key_seed)],
                    action: action_name(action_idx).to_string(),
                    action_args: action_args(action_idx, key_seed),
                    priority: i32::from(priority) - 4,
                },
            );
        }
    }
    sw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compiled_engine_matches_reference(
        tables in proptest::collection::vec(arb_table(), 1..4),
        packets in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), 0u8..5, any::<u8>()),
            1..12,
        ),
    ) {
        let program = build_program(&tables);
        let mut reference = testbed(&program, &tables, ExecMode::Reference);
        let mut compiled = testbed(&program, &tables, ExecMode::Compiled);
        let mut pooled = testbed(&program, &tables, ExecMode::Compiled);

        for (k, &(mac, dst, ttl, ip_sel, payload)) in packets.iter().enumerate() {
            // ~80% of packets are IPv4, the rest bare Ethernet.
            let pkt = gen_packet(mac, dst, ttl, ip_sel > 0, payload);
            let r = reference.inject(InjectedPacket::new(pkt.clone(), 0));
            let c = compiled.inject(InjectedPacket::new(pkt.clone(), 0));
            let mut buf = pkt;
            let p = pooled.inject_buf(&mut buf, 0);
            match (r, c) {
                (Ok(rt), Ok(ct)) => {
                    prop_assert_eq!(&rt, &ct, "packet {} diverged", k);
                    let pb = p.expect("pooled path accepted what the trace paths accepted");
                    prop_assert_eq!(ct.disposition, pb.disposition, "packet {} disposition", k);
                    prop_assert_eq!(ct.recirculations, pb.recirculations, "packet {} recircs", k);
                    prop_assert_eq!(ct.resubmissions, pb.resubmissions, "packet {} resubs", k);
                    prop_assert!((ct.latency_ns - pb.latency_ns).abs() < 1e-9,
                        "packet {} latency: {} vs {}", k, ct.latency_ns, pb.latency_ns);
                    prop_assert_eq!(&ct.final_bytes, &buf, "packet {} final bytes", k);
                    prop_assert_eq!(&ct.mirrored, &pooled.drain_mirrored(),
                        "packet {} mirror copies", k);
                }
                (Err(_), Err(_)) => prop_assert!(p.is_err(), "pooled path accepted a reject"),
                (r, c) => prop_assert!(false, "packet {}: reference {:?} vs compiled {:?}", k, r, c),
            }
        }

        // Register state must agree cell-for-cell.
        for idx in 0..8u32 {
            let rr = reference.register_peek(PipeletId::ingress(0), "r0", idx);
            prop_assert_eq!(
                rr,
                compiled.register_peek(PipeletId::ingress(0), "r0", idx),
                "register r0[{}] diverged", idx
            );
            prop_assert_eq!(
                rr,
                pooled.register_peek(PipeletId::ingress(0), "r0", idx),
                "pooled register r0[{}] diverged", idx
            );
        }

        // Hit/miss counters must agree table-for-table.
        for i in 0..tables.len() {
            let name = format!("t{i}");
            let rc = reference.tables(PipeletId::ingress(0)).unwrap().counters(&name);
            prop_assert_eq!(
                rc,
                compiled.tables(PipeletId::ingress(0)).unwrap().counters(&name),
                "counters for {} diverged", &name
            );
            prop_assert_eq!(
                rc,
                pooled.tables(PipeletId::ingress(0)).unwrap().counters(&name),
                "pooled counters for {} diverged", &name
            );
        }

        // Telemetry must agree series-for-series: per-pipelet packets and
        // table applies, port tx/rx, dispositions, recirc-depth buckets,
        // latency histograms, and the folded table hit/miss counters.
        let rsnap = reference.metrics_snapshot();
        prop_assert_eq!(
            &rsnap,
            &compiled.metrics_snapshot(),
            "metrics snapshots diverged"
        );
        prop_assert_eq!(
            &rsnap,
            &pooled.metrics_snapshot(),
            "pooled metrics snapshot diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Flow-state differential: digest emission and entry aging.
// ---------------------------------------------------------------------------

/// A minimal learning program: misses in the `flows` table digest the flow
/// identity; hits stay silent. Entries age under an idle timeout.
fn flow_program() -> Program {
    ProgramBuilder::new("flow")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("learn")
                .digest(
                    "d0",
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("ipv4", "dst_addr"),
                    ],
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(1, 16))
                .build(),
        )
        .action(
            ActionBuilder::new("keep")
                .set(FieldRef::meta("egress_spec"), Expr::val(2, 16))
                .build(),
        )
        .table(
            TableBuilder::new("flows")
                .key_exact(fref("ipv4", "dst_addr"))
                .action("keep")
                .default_action("learn")
                .size(64)
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("flows").build())
        .entry("ingress")
        .build()
        .expect("flow program validates")
}

fn flow_dst(seed: u8) -> u32 {
    0x0a00_0000 | (u32::from(seed % 8) << 8) | u32::from(seed % 8)
}

fn flow_packet(src: u8, dst: u8) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0100 | u32::from(src))
        .dst_ip(flow_dst(dst))
        .src_port(1000)
        .dst_port(53)
        .build()
}

fn flow_testbed(program: &Program, seeds: &[u8], timeout: u64, mode: ExecMode) -> Switch {
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_exec_mode(mode);
    sw.set_telemetry(true);
    sw.load_program(PipeletId::ingress(0), program.clone())
        .unwrap();
    sw.set_idle_timeout(PipeletId::ingress(0), "flows", Some(timeout))
        .unwrap();
    for &s in seeds {
        let _ = sw.install_entry(
            PipeletId::ingress(0),
            "flows",
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(u128::from(flow_dst(s)), 32))],
                action: "keep".to_string(),
                action_args: vec![],
                priority: 0,
            },
        );
    }
    sw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Both engines must agree on the full flow-state surface: digest
    /// stream order and content, eviction sweeps, post-aging table
    /// entries, counters, and telemetry.
    #[test]
    fn digest_and_aging_match_reference(
        seeds in proptest::collection::vec(any::<u8>(), 0..6),
        // (op selector, argument): op % 4 == 0 advances time, else injects.
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        timeout in 1u64..4,
    ) {
        let program = flow_program();
        let pid = PipeletId::ingress(0);
        let mut reference = flow_testbed(&program, &seeds, timeout, ExecMode::Reference);
        let mut compiled = flow_testbed(&program, &seeds, timeout, ExecMode::Compiled);
        let mut pooled = flow_testbed(&program, &seeds, timeout, ExecMode::Compiled);

        for (k, &(op, a)) in ops.iter().enumerate() {
            if op % 4 == 0 {
                let ticks = u64::from(a % 3) + 1;
                let re = reference.advance_time(ticks);
                let ce = compiled.advance_time(ticks);
                let pe = pooled.advance_time(ticks);
                prop_assert_eq!(&re, &ce, "step {}: eviction sweeps diverged", k);
                prop_assert_eq!(&re, &pe, "step {}: pooled eviction sweeps diverged", k);
            } else {
                let pkt = flow_packet(op, a);
                let r = reference.inject(InjectedPacket::new(pkt.clone(), 0));
                let c = compiled.inject(InjectedPacket::new(pkt.clone(), 0));
                let mut buf = pkt;
                let p = pooled.inject_buf(&mut buf, 0);
                match (r, c) {
                    (Ok(rt), Ok(ct)) => {
                        prop_assert_eq!(&rt, &ct, "step {} diverged", k);
                        let pb = p.expect("pooled path accepted what the trace paths accepted");
                        prop_assert_eq!(ct.disposition, pb.disposition, "step {} disposition", k);
                        prop_assert_eq!(&ct.final_bytes, &buf, "step {} final bytes", k);
                    }
                    (Err(_), Err(_)) => prop_assert!(p.is_err(), "pooled path accepted a reject"),
                    (r, c) => prop_assert!(
                        false, "step {}: reference {:?} vs compiled {:?}", k, r, c
                    ),
                }
            }
        }

        // Digest queues must agree record-for-record, in order — across the
        // interpreter, the compiled engine, and the pooled zero-alloc path
        // (digest emission is the learn path and must survive pooling).
        let rd = reference.drain_digests();
        prop_assert_eq!(
            &rd,
            &compiled.drain_digests(),
            "digest streams diverged"
        );
        prop_assert_eq!(
            &rd,
            &pooled.drain_digests(),
            "pooled digest stream diverged"
        );
        // Post-aging table state must agree entry-for-entry.
        let re = reference.tables(pid).unwrap().entries("flows");
        prop_assert_eq!(
            &re,
            &compiled.tables(pid).unwrap().entries("flows"),
            "surviving entries diverged"
        );
        prop_assert_eq!(
            &re,
            &pooled.tables(pid).unwrap().entries("flows"),
            "pooled surviving entries diverged"
        );
        let rc = reference.tables(pid).unwrap().counters("flows");
        prop_assert_eq!(
            rc,
            compiled.tables(pid).unwrap().counters("flows"),
            "counters diverged"
        );
        prop_assert_eq!(
            rc,
            pooled.tables(pid).unwrap().counters("flows"),
            "pooled counters diverged"
        );
        let rev = reference.tables(pid).unwrap().evictions("flows");
        prop_assert_eq!(
            rev,
            compiled.tables(pid).unwrap().evictions("flows"),
            "eviction counts diverged"
        );
        prop_assert_eq!(
            rev,
            pooled.tables(pid).unwrap().evictions("flows"),
            "pooled eviction counts diverged"
        );
        let rsnap = reference.metrics_snapshot();
        prop_assert_eq!(
            &rsnap,
            &compiled.metrics_snapshot(),
            "metrics snapshots diverged"
        );
        prop_assert_eq!(
            &rsnap,
            &pooled.metrics_snapshot(),
            "pooled metrics snapshot diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Pool exhaustion: a starved run-to-completion executor must degrade
// gracefully — backpressure stalls without loss, drop counts every loss,
// and neither path panics or falls back to allocation.
// ---------------------------------------------------------------------------

#[test]
fn pool_exhaustion_backpressures_or_drops_never_panics() {
    use dejavu_asic::{ExhaustionPolicy, InjectedPacket, RtcConfig, RtcExecutor};

    let program = flow_program();
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_telemetry(true);
    sw.load_program(PipeletId::ingress(0), program).unwrap();
    let packets: Vec<InjectedPacket> = (0..96)
        .map(|i| InjectedPacket::new(flow_packet(i as u8, (i % 7) as u8), 0))
        .collect();

    // Starved pool + backpressure: every packet still gets through.
    let bp = RtcExecutor::new(RtcConfig {
        workers: 2,
        ring_depth: 2,
        pool_packets: 1,
        exhaustion: ExhaustionPolicy::Backpressure,
        ..RtcConfig::default()
    })
    .run(&sw, &packets);
    assert_eq!(bp.injected, 96);
    assert_eq!(bp.pool_dropped, 0);
    assert_eq!(bp.emitted + bp.dropped + bp.to_cpu, 96);

    // Starved pool + drop policy on a single hot shard: losses are counted
    // in the report and surfaced as the pool_exhausted telemetry series.
    let one_flow: Vec<InjectedPacket> = vec![InjectedPacket::new(flow_packet(1, 1), 0); 64];
    let dr = RtcExecutor::new(RtcConfig {
        workers: 1,
        ring_depth: 64,
        pool_packets: 1,
        exhaustion: ExhaustionPolicy::Drop,
        ..RtcConfig::default()
    })
    .run(&sw, &one_flow);
    assert_eq!(dr.injected + dr.pool_dropped, 64);
    assert_eq!(dr.pool_exhausted, dr.pool_dropped);
    assert_eq!(dr.metrics.counter("pool_exhausted"), dr.pool_dropped);
}
