//! Differential property test: the compiled fast path and the reference
//! interpreter are observationally identical.
//!
//! For arbitrary generated programs (random table key kinds, action
//! bodies with arithmetic / hashing / register access / drops, guarded
//! control flow), arbitrary table entries, and arbitrary packet
//! sequences, two switches loaded with the same program — one in
//! [`ExecMode::Reference`], one in [`ExecMode::Compiled`] — must agree
//! on *everything* observable: full traversals (events, dispositions,
//! final bytes, latency, recirculation/resubmission counts, mirror
//! copies), table hit/miss counters, and register state.

use proptest::prelude::*;

use dejavu_asic::{ExecMode, PipeletId, Switch, TofinoProfile};
use dejavu_p4ir::action::HashAlgorithm;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{fref, well_known, Expr, FieldRef, Program, Value};

/// Key kinds a generated table may use, with the field each applies to.
#[derive(Debug, Clone, Copy)]
enum KeyKind {
    ExactMac,
    LpmDst,
    TernaryTtl,
    ExactMeta,
}

/// One generated table: a key kind plus entries described as small
/// integers that the builder maps into the matching `KeyMatch` shape.
#[derive(Debug, Clone)]
struct GenTable {
    kind: KeyKind,
    /// `(key_seed, action_idx, priority + 4)` per entry — the priority is
    /// stored biased by +4 so the generator only deals in unsigned ranges.
    entries: Vec<(u8, u8, u8)>,
    default_action: u8,
    guarded: bool,
}

const ACTION_NAMES: [&str; 6] = ["fwd", "ttl_bump", "mix", "count", "deny", "pass"];

fn action_name(idx: u8) -> &'static str {
    ACTION_NAMES[usize::from(idx) % ACTION_NAMES.len()]
}

/// Arguments each action expects (only `fwd` takes one: the port).
fn action_args(idx: u8, key_seed: u8) -> Vec<Value> {
    if action_name(idx) == "fwd" {
        // Ports 0..8 are valid Ethernet ports on the wedge profile; 9 maps
        // to a real port too. Keep them small so packets actually emit.
        vec![Value::new(u128::from(key_seed % 8), 16)]
    } else {
        Vec::new()
    }
}

fn key_match(kind: KeyKind, seed: u8) -> KeyMatch {
    match kind {
        KeyKind::ExactMac => KeyMatch::Exact(Value::new(u128::from(seed % 16), 48)),
        KeyKind::LpmDst => KeyMatch::Lpm(
            Value::new(0x0a00_0000 | (u128::from(seed % 4) << 16), 32),
            8 + u16::from(seed % 3) * 8,
        ),
        KeyKind::TernaryTtl => KeyMatch::Ternary(
            Value::new(u128::from(seed % 4), 8),
            Value::new(if seed.is_multiple_of(5) { 0 } else { 0x0f }, 8),
        ),
        KeyKind::ExactMeta => KeyMatch::Exact(Value::new(u128::from(seed % 4), 16)),
    }
}

fn build_program(tables: &[GenTable]) -> Program {
    let mut b = ProgramBuilder::new("diff")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .meta_field("m0", 16)
        .meta_field("m1", 16)
        .register("r0", 32, 8)
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(
            ActionBuilder::new("ttl_bump")
                .set(
                    fref("ipv4", "ttl"),
                    Expr::Sub(
                        Box::new(Expr::field("ipv4", "ttl")),
                        Box::new(Expr::val(1, 8)),
                    ),
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(2, 16))
                .build(),
        )
        .action(
            ActionBuilder::new("mix")
                .hash(
                    FieldRef::meta("m1"),
                    HashAlgorithm::Crc16,
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("ipv4", "dst_addr"),
                    ],
                )
                .set(
                    FieldRef::meta("m0"),
                    Expr::Add(
                        Box::new(Expr::meta("m0")),
                        Box::new(Expr::And(
                            Box::new(Expr::meta("m1")),
                            Box::new(Expr::val(0x3, 16)),
                        )),
                    ),
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(3, 16))
                .build(),
        )
        .action(
            ActionBuilder::new("count")
                .reg_read(
                    FieldRef::meta("m0"),
                    "r0",
                    Expr::And(
                        Box::new(Expr::field("ipv4", "dst_addr")),
                        Box::new(Expr::val(0x7, 32)),
                    ),
                )
                .reg_write(
                    "r0",
                    Expr::And(
                        Box::new(Expr::field("ipv4", "dst_addr")),
                        Box::new(Expr::val(0x7, 32)),
                    ),
                    Expr::Add(Box::new(Expr::meta("m0")), Box::new(Expr::val(1, 32))),
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(4, 16))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .action(ActionBuilder::new("pass").build());

    let mut control = ControlBuilder::new("ingress");
    for (i, t) in tables.iter().enumerate() {
        let mut tb = TableBuilder::new(format!("t{i}"));
        tb = match t.kind {
            KeyKind::ExactMac => tb.key_exact(fref("ethernet", "dst_mac")),
            KeyKind::LpmDst => tb.key_lpm(fref("ipv4", "dst_addr")),
            KeyKind::TernaryTtl => tb.key_ternary(fref("ipv4", "ttl")),
            KeyKind::ExactMeta => tb.key_exact(FieldRef::meta("m0")),
        };
        for name in ACTION_NAMES {
            tb = tb.action(name);
        }
        tb = tb.default_action(action_name(t.default_action));
        if action_name(t.default_action) == "fwd" {
            tb = tb.default_args(vec![Value::new(1, 16)]);
        }
        b = b.table(tb.build());
        if t.guarded {
            control = control.stmt(dejavu_p4ir::Stmt::If {
                cond: dejavu_p4ir::BoolExpr::Valid("ipv4".into()),
                then_branch: vec![dejavu_p4ir::Stmt::Apply(format!("t{i}"))],
                else_branch: vec![dejavu_p4ir::Stmt::Do("deny".into())],
            });
        } else {
            control = control.apply(&format!("t{i}"));
        }
    }
    b.control(control.build())
        .entry("ingress")
        .build()
        .expect("generated program validates")
}

fn arb_table() -> impl Strategy<Value = GenTable> {
    (
        prop_oneof![
            Just(KeyKind::ExactMac),
            Just(KeyKind::LpmDst),
            Just(KeyKind::TernaryTtl),
            Just(KeyKind::ExactMeta),
        ],
        proptest::collection::vec((any::<u8>(), any::<u8>(), 0u8..8), 0..8),
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(kind, entries, default_action, guarded)| GenTable {
            kind,
            entries,
            default_action,
            guarded,
        })
}

/// An eth+ipv4 packet with small-domain fields so table entries hit often.
fn gen_packet(mac: u8, dst: u8, ttl: u8, ipv4: bool, payload: u8) -> Vec<u8> {
    if ipv4 {
        let mut p = dejavu_traffic::PacketBuilder::udp()
            .src_ip(0x0a00_0001)
            .dst_ip(0x0a00_0000 | (u32::from(dst % 4) << 16) | u32::from(dst))
            .src_port(1000)
            .dst_port(53)
            .ttl(ttl % 4)
            .payload(&vec![0xab; usize::from(payload % 32)])
            .build();
        p[..6].copy_from_slice(&u64::from(mac % 16).to_be_bytes()[2..]);
        p
    } else {
        let mut p = vec![0u8; 14 + usize::from(payload % 32)];
        p[..6].copy_from_slice(&u64::from(mac % 16).to_be_bytes()[2..]);
        p[12] = 0x86;
        p[13] = 0xdd;
        p
    }
}

fn testbed(program: &Program, tables: &[GenTable], mode: ExecMode) -> Switch {
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_exec_mode(mode);
    sw.set_mirror_port(Some(30));
    sw.set_telemetry(true);
    sw.load_program(PipeletId::ingress(0), program.clone())
        .unwrap();
    for (i, t) in tables.iter().enumerate() {
        for &(key_seed, action_idx, priority) in &t.entries {
            // Installs may legitimately fail (table full); both switches
            // must agree, so ignore the result — it is deterministic.
            let _ = sw.install_entry(
                PipeletId::ingress(0),
                &format!("t{i}"),
                TableEntry {
                    matches: vec![key_match(t.kind, key_seed)],
                    action: action_name(action_idx).to_string(),
                    action_args: action_args(action_idx, key_seed),
                    priority: i32::from(priority) - 4,
                },
            );
        }
    }
    sw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compiled_engine_matches_reference(
        tables in proptest::collection::vec(arb_table(), 1..4),
        packets in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), 0u8..5, any::<u8>()),
            1..12,
        ),
    ) {
        let program = build_program(&tables);
        let mut reference = testbed(&program, &tables, ExecMode::Reference);
        let mut compiled = testbed(&program, &tables, ExecMode::Compiled);

        for (k, &(mac, dst, ttl, ip_sel, payload)) in packets.iter().enumerate() {
            // ~80% of packets are IPv4, the rest bare Ethernet.
            let pkt = gen_packet(mac, dst, ttl, ip_sel > 0, payload);
            let r = reference.inject((pkt.clone(), 0));
            let c = compiled.inject((pkt, 0));
            match (r, c) {
                (Ok(rt), Ok(ct)) => prop_assert_eq!(rt, ct, "packet {} diverged", k),
                (Err(_), Err(_)) => {}
                (r, c) => prop_assert!(false, "packet {}: reference {:?} vs compiled {:?}", k, r, c),
            }
        }

        // Register state must agree cell-for-cell.
        for idx in 0..8u32 {
            prop_assert_eq!(
                reference.register_peek(PipeletId::ingress(0), "r0", idx),
                compiled.register_peek(PipeletId::ingress(0), "r0", idx),
                "register r0[{}] diverged", idx
            );
        }

        // Hit/miss counters must agree table-for-table.
        for i in 0..tables.len() {
            let name = format!("t{i}");
            prop_assert_eq!(
                reference.tables(PipeletId::ingress(0)).unwrap().counters(&name),
                compiled.tables(PipeletId::ingress(0)).unwrap().counters(&name),
                "counters for {} diverged", &name
            );
        }

        // Telemetry must agree series-for-series: per-pipelet packets and
        // table applies, port tx/rx, dispositions, recirc-depth buckets,
        // latency histograms, and the folded table hit/miss counters.
        prop_assert_eq!(
            reference.metrics_snapshot(),
            compiled.metrics_snapshot(),
            "metrics snapshots diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Flow-state differential: digest emission and entry aging.
// ---------------------------------------------------------------------------

/// A minimal learning program: misses in the `flows` table digest the flow
/// identity; hits stay silent. Entries age under an idle timeout.
fn flow_program() -> Program {
    ProgramBuilder::new("flow")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("learn")
                .digest(
                    "d0",
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("ipv4", "dst_addr"),
                    ],
                )
                .set(FieldRef::meta("egress_spec"), Expr::val(1, 16))
                .build(),
        )
        .action(
            ActionBuilder::new("keep")
                .set(FieldRef::meta("egress_spec"), Expr::val(2, 16))
                .build(),
        )
        .table(
            TableBuilder::new("flows")
                .key_exact(fref("ipv4", "dst_addr"))
                .action("keep")
                .default_action("learn")
                .size(64)
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("flows").build())
        .entry("ingress")
        .build()
        .expect("flow program validates")
}

fn flow_dst(seed: u8) -> u32 {
    0x0a00_0000 | (u32::from(seed % 8) << 8) | u32::from(seed % 8)
}

fn flow_packet(src: u8, dst: u8) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0100 | u32::from(src))
        .dst_ip(flow_dst(dst))
        .src_port(1000)
        .dst_port(53)
        .build()
}

fn flow_testbed(program: &Program, seeds: &[u8], timeout: u64, mode: ExecMode) -> Switch {
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_exec_mode(mode);
    sw.set_telemetry(true);
    sw.load_program(PipeletId::ingress(0), program.clone())
        .unwrap();
    sw.set_idle_timeout(PipeletId::ingress(0), "flows", Some(timeout))
        .unwrap();
    for &s in seeds {
        let _ = sw.install_entry(
            PipeletId::ingress(0),
            "flows",
            TableEntry {
                matches: vec![KeyMatch::Exact(Value::new(u128::from(flow_dst(s)), 32))],
                action: "keep".to_string(),
                action_args: vec![],
                priority: 0,
            },
        );
    }
    sw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Both engines must agree on the full flow-state surface: digest
    /// stream order and content, eviction sweeps, post-aging table
    /// entries, counters, and telemetry.
    #[test]
    fn digest_and_aging_match_reference(
        seeds in proptest::collection::vec(any::<u8>(), 0..6),
        // (op selector, argument): op % 4 == 0 advances time, else injects.
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        timeout in 1u64..4,
    ) {
        let program = flow_program();
        let pid = PipeletId::ingress(0);
        let mut reference = flow_testbed(&program, &seeds, timeout, ExecMode::Reference);
        let mut compiled = flow_testbed(&program, &seeds, timeout, ExecMode::Compiled);

        for (k, &(op, a)) in ops.iter().enumerate() {
            if op % 4 == 0 {
                let ticks = u64::from(a % 3) + 1;
                let re = reference.advance_time(ticks);
                let ce = compiled.advance_time(ticks);
                prop_assert_eq!(re, ce, "step {}: eviction sweeps diverged", k);
            } else {
                let pkt = flow_packet(op, a);
                let r = reference.inject((pkt.clone(), 0));
                let c = compiled.inject((pkt, 0));
                match (r, c) {
                    (Ok(rt), Ok(ct)) => prop_assert_eq!(rt, ct, "step {} diverged", k),
                    (Err(_), Err(_)) => {}
                    (r, c) => prop_assert!(
                        false, "step {}: reference {:?} vs compiled {:?}", k, r, c
                    ),
                }
            }
        }

        // Digest queues must agree record-for-record, in order.
        prop_assert_eq!(
            reference.drain_digests(),
            compiled.drain_digests(),
            "digest streams diverged"
        );
        // Post-aging table state must agree entry-for-entry.
        prop_assert_eq!(
            reference.tables(pid).unwrap().entries("flows"),
            compiled.tables(pid).unwrap().entries("flows"),
            "surviving entries diverged"
        );
        prop_assert_eq!(
            reference.tables(pid).unwrap().counters("flows"),
            compiled.tables(pid).unwrap().counters("flows"),
            "counters diverged"
        );
        prop_assert_eq!(
            reference.tables(pid).unwrap().evictions("flows"),
            compiled.tables(pid).unwrap().evictions("flows"),
            "eviction counts diverged"
        );
        prop_assert_eq!(
            reference.metrics_snapshot(),
            compiled.metrics_snapshot(),
            "metrics snapshots diverged"
        );
    }
}
