//! Differential property test for the classification-index subsystem.
//!
//! The pluggable table indexes (`Scan`, `TupleSpace`, `DecisionTree`) are
//! pure lookup accelerators: forcing any of them on the same table must be
//! observationally invisible. For random mixed rulesets — ternary masks
//! (prefix and scattered), LPM prefixes, ranges (including degenerate
//! point ranges), overlapping priorities with deliberate duplicate-rank
//! ties — driven through a random interleaving of installs, deletes,
//! idle-timeout aging sweeps, and packet injections, six switches must
//! agree on everything: three forced index policies × both execution
//! engines (reference interpreter and compiled fast path).
//!
//! Checked surface: every traversal (events, disposition, bytes), the
//! surviving entry list after churn, hit/miss counters, eviction counts,
//! and — within each same-policy engine pair — the full metrics snapshot
//! including the `table_index_*` telemetry series.

use proptest::prelude::*;

use dejavu_asic::{
    ExecMode, IndexKind, IndexPolicy, InjectedPacket, PipeletId, Switch, TofinoProfile,
};
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{fref, well_known, Expr, FieldRef, Program, Value};

/// Ternary masks a generated rule may use on the source address: wildcard,
/// prefixes (tuple-friendly), and scattered bit patterns (tuple-hostile —
/// the regime that pushes the auto heuristic toward the decision tree).
const SRC_MASKS: [u32; 6] = [
    0x0000_0000,
    0xff00_0000,
    0xffff_0000,
    0xffff_ff00,
    0x0000_00ff,
    0x00ff_00f0,
];

/// LPM prefix lengths for the destination key (0 = wildcard).
const DST_LENS: [u16; 5] = [0, 8, 16, 24, 32];

/// One generated rule, described by small seeds the builder expands into
/// `KeyMatch`es. Values are drawn from tiny domains so rules overlap and
/// packets hit; priorities from `0..3` so duplicate ranks are common and
/// install-order tie-breaking is exercised.
#[derive(Debug, Clone, Copy)]
struct GenRule {
    src_seed: u8,
    src_mask: u8,
    dst_seed: u8,
    dst_len: u8,
    ttl_lo: u8,
    ttl_span: u8,
    action: u8,
    priority: u8,
}

fn rule_entry(r: GenRule) -> TableEntry {
    let src_mask = SRC_MASKS[usize::from(r.src_mask) % SRC_MASKS.len()];
    let src_val = (0x0a00_0000 | u32::from(r.src_seed % 16)) & src_mask;
    let dst_len = DST_LENS[usize::from(r.dst_len) % DST_LENS.len()];
    let dst_val = 0x0a00_0100 | (u32::from(r.dst_seed % 4) << 16) | u32::from(r.dst_seed % 8);
    let dst_masked = if dst_len == 0 {
        0
    } else {
        dst_val & (u32::MAX << (32 - dst_len))
    };
    let lo = r.ttl_lo % 6;
    // span % 3 == 0 gives a degenerate point range (lo == hi), the shape
    // the tuple-space index can hash; wider spans always spill.
    let hi = lo + r.ttl_span % 3;
    let (action, args) = match r.action % 3 {
        0 => ("fwd", vec![Value::new(u128::from(r.action % 8), 16)]),
        1 => ("deny", vec![]),
        _ => ("pass", vec![]),
    };
    TableEntry {
        matches: vec![
            KeyMatch::Ternary(
                Value::new(u128::from(src_val), 32),
                Value::new(u128::from(src_mask), 32),
            ),
            KeyMatch::Lpm(Value::new(u128::from(dst_masked), 32), dst_len),
            KeyMatch::Range(Value::new(u128::from(lo), 8), Value::new(u128::from(hi), 8)),
        ],
        action: action.to_string(),
        action_args: args,
        priority: i32::from(r.priority % 3) - 1,
    }
}

fn arb_rule() -> impl Strategy<Value = GenRule> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(
            |(src_seed, src_mask, dst_seed, dst_len, ttl_lo, ttl_span, action, priority)| GenRule {
                src_seed,
                src_mask,
                dst_seed,
                dst_len,
                ttl_lo,
                ttl_span,
                action,
                priority,
            },
        )
}

/// One ingress pipelet with a single mixed-key classifier table:
/// ternary source × LPM destination × TTL range.
fn cls_program() -> Program {
    ProgramBuilder::new("clsdiff")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .action(
            ActionBuilder::new("pass")
                .set(FieldRef::meta("egress_spec"), Expr::val(1, 16))
                .build(),
        )
        .table(
            TableBuilder::new("cls")
                .key_ternary(fref("ipv4", "src_addr"))
                .key_lpm(fref("ipv4", "dst_addr"))
                .key_range(fref("ipv4", "ttl"))
                .action("fwd")
                .action("deny")
                .action("pass")
                .default_action("pass")
                .size(1024)
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("cls").build())
        .entry("ingress")
        .build()
        .expect("classifier program validates")
}

fn cls_packet(src: u8, dst: u8, ttl: u8) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0000 | u32::from(src % 16))
        .dst_ip(0x0a00_0100 | (u32::from(dst % 4) << 16) | u32::from(dst % 8))
        .src_port(1000)
        .dst_port(53)
        .ttl(ttl % 8)
        .build()
}

/// The six switches under test: every forced index policy on both engines.
const POLICIES: [IndexKind; 3] = [
    IndexKind::Scan,
    IndexKind::TupleSpace,
    IndexKind::DecisionTree,
];

fn cls_testbed(program: &Program, kind: IndexKind, mode: ExecMode) -> Switch {
    let pid = PipeletId::ingress(0);
    let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
    sw.set_exec_mode(mode);
    sw.set_telemetry(true);
    sw.load_program(pid, program.clone()).unwrap();
    sw.set_idle_timeout(pid, "cls", Some(2)).unwrap();
    sw.set_table_index(pid, "cls", IndexPolicy::Force(kind))
        .unwrap();
    sw
}

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    Install(GenRule),
    /// Remove the n-th previously installed rule (mod live count).
    Remove(u8),
    /// Advance the aging clock by 1–3 ticks.
    Age(u8),
    /// Inject a packet described by (src, dst, ttl) seeds.
    Inject(u8, u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted mix via a selector: mostly injects and installs, with
    // enough deletes and aging sweeps to churn every index shape.
    (0u8..9, arb_rule(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(sel, rule, a, b, c)| {
        match sel {
            0..=2 => Op::Install(rule),
            3 => Op::Remove(a),
            4 => Op::Age(a),
            _ => Op::Inject(a, b, c),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// `lookup_scan`, tuple-space, and decision-tree must be
    /// observationally identical on both engines under churn.
    #[test]
    fn forced_indexes_agree_under_churn(
        initial in proptest::collection::vec(arb_rule(), 0..24),
        ops in proptest::collection::vec(arb_op(), 1..32),
    ) {
        let program = cls_program();
        let pid = PipeletId::ingress(0);
        let mut switches: Vec<(IndexKind, ExecMode, Switch)> = Vec::new();
        for kind in POLICIES {
            for mode in [ExecMode::Reference, ExecMode::Compiled] {
                switches.push((kind, mode, cls_testbed(&program, kind, mode)));
            }
        }

        // Deterministic target list for deletes: entries in install order.
        // Aged-out or already-removed targets are fine — `remove_entry`
        // then returns Ok(false) identically everywhere.
        let mut installed: Vec<TableEntry> = Vec::new();
        for &r in &initial {
            let e = rule_entry(r);
            for (_, _, sw) in &mut switches {
                sw.install_entry(pid, "cls", e.clone()).unwrap();
            }
            installed.push(e);
        }

        for (k, op) in ops.iter().enumerate() {
            match op {
                Op::Install(r) => {
                    let e = rule_entry(*r);
                    for (_, _, sw) in &mut switches {
                        sw.install_entry(pid, "cls", e.clone()).unwrap();
                    }
                    installed.push(e);
                }
                Op::Remove(sel) => {
                    if installed.is_empty() {
                        continue;
                    }
                    let victim = installed.remove(usize::from(*sel) % installed.len());
                    let removed: Vec<bool> = switches
                        .iter_mut()
                        .map(|(_, _, sw)| sw.remove_entry(pid, "cls", &victim).unwrap())
                        .collect();
                    prop_assert!(
                        removed.iter().all(|&b| b == removed[0]),
                        "step {}: remove_entry outcomes diverged: {:?}", k, removed
                    );
                }
                Op::Age(t) => {
                    let ticks = u64::from(t % 3) + 1;
                    let sweeps: Vec<_> = switches
                        .iter_mut()
                        .map(|(_, _, sw)| sw.advance_time(ticks))
                        .collect();
                    for (i, s) in sweeps.iter().enumerate().skip(1) {
                        prop_assert_eq!(
                            &sweeps[0], s,
                            "step {}: eviction sweep diverged on {:?}/{:?}",
                            k, switches[i].0, switches[i].1
                        );
                    }
                }
                Op::Inject(s, d, t) => {
                    let pkt = cls_packet(*s, *d, *t);
                    let outs: Vec<_> = switches
                        .iter_mut()
                        .map(|(_, _, sw)| sw.inject(InjectedPacket::new(pkt.clone(), 0)))
                        .collect();
                    for (i, o) in outs.iter().enumerate().skip(1) {
                        match (&outs[0], o) {
                            (Ok(a), Ok(b)) => prop_assert_eq!(
                                a, b,
                                "step {}: traversal diverged on {:?}/{:?}",
                                k, switches[i].0, switches[i].1
                            ),
                            (Err(_), Err(_)) => {}
                            (a, b) => prop_assert!(
                                false,
                                "step {}: {:?}/{:?} returned {:?} vs baseline {:?}",
                                k, switches[i].0, switches[i].1, b, a
                            ),
                        }
                    }
                }
            }
        }

        // Forced policies must have stuck — a migration behind the user's
        // back would make the comparison vacuous.
        for (kind, mode, sw) in &switches {
            prop_assert_eq!(
                sw.table_index_kind(pid, "cls"), Some(*kind),
                "forced {:?} policy drifted on {:?}", kind, mode
            );
        }

        // Post-churn table state must agree across all six switches.
        let baseline = &switches[0].2;
        let entries0 = baseline.tables(pid).unwrap().entries("cls");
        let counters0 = baseline.tables(pid).unwrap().counters("cls");
        let evictions0 = baseline.tables(pid).unwrap().evictions("cls");
        for (kind, mode, sw) in switches.iter().skip(1) {
            let ts = sw.tables(pid).unwrap();
            prop_assert_eq!(
                &entries0, &ts.entries("cls"),
                "surviving entries diverged on {:?}/{:?}", kind, mode
            );
            prop_assert_eq!(
                counters0, ts.counters("cls"),
                "hit/miss counters diverged on {:?}/{:?}", kind, mode
            );
            prop_assert_eq!(
                evictions0, ts.evictions("cls"),
                "eviction counts diverged on {:?}/{:?}", kind, mode
            );
        }

        // Within each forced policy, both engines must expose identical
        // telemetry — including the table_index_kind / table_index_probes
        // / table_index_rebuilds / probe- and tree-depth series, because
        // the reference interpreter routes lookups through the very same
        // index as the compiled fast path.
        for pair in switches.chunks(2) {
            prop_assert_eq!(
                pair[0].2.metrics_snapshot(),
                pair[1].2.metrics_snapshot(),
                "metrics snapshots diverged between engines under {:?}", pair[0].0
            );
        }
    }
}
