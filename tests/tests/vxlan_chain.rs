//! End-to-end tunnel termination: a VXLAN-encapsulated tenant packet rides
//! an SFC chain (vxlan gateway → router) through the switch. Exercises the
//! deepest generic-parser path in the workspace — seven headers including
//! two instances each of `ethernet` and `ipv4` plus their SFC-shifted
//! twins.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PipeletId};
use dejavu_core::deploy::{deploy, DeployOptions};
use dejavu_core::placement::Placement;
use dejavu_core::routing::RoutingConfig;
use dejavu_core::sfc::ctx_keys;
use dejavu_core::{ChainPolicy, ChainSet, SfcHeader};
use dejavu_integration::{EXIT_PORT, IN_PORT, LOOPBACK_PORT_P0, LOOPBACK_PORT_P1};
use dejavu_nf::router::{route_entry, ROUTES_TABLE};
use dejavu_nf::vxlan_gateway::{encapsulate, terminate_entry, vxlan_gateway, VNI_TERM_TABLE};

fn inner_packet(dst: u32) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(0xc0a8_0707)
        .dst_ip(dst)
        .dst_port(443)
        .build()
}

/// SFC-encapsulates wire bytes (header between eth and the rest) for `path`.
fn with_sfc(bytes: &[u8], path: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 20);
    out.extend_from_slice(&bytes[..12]);
    out.extend_from_slice(&dejavu_core::sfc::SFC_ETHERTYPE.to_be_bytes());
    out.extend_from_slice(&SfcHeader::for_path(path).to_bytes());
    out.extend_from_slice(&bytes[14..]);
    out
}

#[test]
fn vxlan_terminate_then_route() {
    let gw = vxlan_gateway();
    let rt = dejavu_nf::router::router();
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "terminate",
        vec!["vxlan_gw", "router"],
        1.0,
    )])
    .unwrap();
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["vxlan_gw"]),
        (PipeletId::egress(0), vec!["router"]),
    ]);
    let config = RoutingConfig {
        loopback_port: [(0usize, LOOPBACK_PORT_P0), (1usize, LOOPBACK_PORT_P1)]
            .into_iter()
            .collect(),
        exit_ports: [(1u16, EXIT_PORT)].into_iter().collect(),
        honor_out_port: false,
    };
    let (mut switch, dep) = deploy(
        &[&gw, &rt],
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        &config,
        &DeployOptions::default(),
    )
    .expect("vxlan chain deploys");
    dep.install(
        &mut switch,
        "vxlan_gw",
        VNI_TERM_TABLE,
        terminate_entry(700, 42),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "router",
        ROUTES_TABLE,
        route_entry((0xc0a8_0800, 24), EXIT_PORT, 0xdd, 0xee),
    )
    .unwrap();

    // The tenant packet: VXLAN VNI 700 around an inner TCP flow, already
    // SFC-classified for path 1.
    let inner_dst = 0xc0a8_0809;
    let tunneled = encapsulate(&inner_packet(inner_dst), 700, 0x0a00_0001, 0x0a00_0002);
    let pkt = with_sfc(&tunneled, 1);

    let t = switch.inject(InjectedPacket::new(pkt, IN_PORT)).unwrap();
    assert_eq!(
        t.disposition,
        Disposition::Emitted { port: EXIT_PORT },
        "{}",
        t.describe()
    );
    assert!(t.tables_hit().contains(&"vxlan_gw__vni_term"));
    assert!(t.tables_hit().contains(&"router__routes"));

    // The emitted frame: decapsulated twice (tunnel by the gateway, SFC by
    // the framework) — plain eth/ipv4, routed to the inner destination.
    let out = &t.final_bytes;
    assert_eq!(
        u16::from_be_bytes([out[12], out[13]]),
        0x0800,
        "sfc stripped"
    );
    let dst = u32::from_be_bytes([out[30], out[31], out[32], out[33]]);
    assert_eq!(dst, inner_dst, "inner destination routed");
    assert_eq!(out[22], 63, "inner TTL decremented by the router");
    // Tunnel really gone: no UDP/4789 at the L4 offset.
    assert_ne!(u16::from_be_bytes([out[36], out[37]]), 4789);
    // The router checksummed the (inner) IPv4 header it rewrote.
    assert_eq!(
        dejavu_asic::interp::ones_complement_checksum(&out[14..34]),
        0
    );
}

#[test]
fn unknown_vni_rides_encapsulated_to_router() {
    // No termination entry: the tunnel passes through intact and the router
    // routes on the *outer* destination.
    let gw = vxlan_gateway();
    let rt = dejavu_nf::router::router();
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "through",
        vec!["vxlan_gw", "router"],
        1.0,
    )])
    .unwrap();
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["vxlan_gw"]),
        (PipeletId::egress(0), vec!["router"]),
    ]);
    let config = RoutingConfig {
        exit_ports: [(1u16, EXIT_PORT)].into_iter().collect(),
        ..Default::default()
    };
    let (mut switch, dep) = deploy(
        &[&gw, &rt],
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        &config,
        &DeployOptions::default(),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "router",
        ROUTES_TABLE,
        route_entry((0x0a00_0000, 8), EXIT_PORT, 0xdd, 0xee),
    )
    .unwrap();

    let tunneled = encapsulate(&inner_packet(0xc0a8_0809), 999, 0x0a00_0001, 0x0a00_0002);
    let t = switch
        .inject(InjectedPacket::new(with_sfc(&tunneled, 1), IN_PORT))
        .unwrap();
    assert_eq!(
        t.disposition,
        Disposition::Emitted { port: EXIT_PORT },
        "{}",
        t.describe()
    );
    let out = &t.final_bytes;
    // Outer destination intact, tunnel preserved (UDP/4789 at the L4
    // offset after decap of the SFC header only).
    let dst = u32::from_be_bytes([out[30], out[31], out[32], out[33]]);
    assert_eq!(dst, 0x0a00_0002, "outer destination kept");
    assert_eq!(
        u16::from_be_bytes([out[36], out[37]]),
        4789,
        "tunnel intact"
    );
}

#[test]
fn vni_recorded_in_context_mid_chain() {
    // Probe the SFC context *between* the NFs: place the gateway on
    // ingress 0 and read the context from the packet crossing the wire by
    // making the router the terminal hop on another pipeline (forcing a
    // loopback crossing whose bytes we can inspect via the trace).
    let gw = vxlan_gateway();
    let rt = dejavu_nf::router::router();
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "ctx",
        vec!["vxlan_gw", "router"],
        1.0,
    )])
    .unwrap();
    let placement = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["vxlan_gw"]),
        (PipeletId::ingress(1), vec!["router"]), // forces a recirculation
    ]);
    let config = RoutingConfig {
        loopback_port: [(1usize, LOOPBACK_PORT_P1)].into_iter().collect(),
        exit_ports: [(1u16, EXIT_PORT)].into_iter().collect(),
        honor_out_port: false,
    };
    let (mut switch, dep) = deploy(
        &[&gw, &rt],
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        &config,
        &DeployOptions::default(),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "vxlan_gw",
        VNI_TERM_TABLE,
        terminate_entry(700, 42),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "router",
        ROUTES_TABLE,
        route_entry((0, 0), EXIT_PORT, 1, 2),
    )
    .unwrap();

    let tunneled = encapsulate(&inner_packet(0xc0a8_0809), 700, 1, 2);
    let t = switch
        .inject(InjectedPacket::new(with_sfc(&tunneled, 1), IN_PORT))
        .unwrap();
    assert_eq!(
        t.disposition,
        Disposition::Emitted { port: EXIT_PORT },
        "{}",
        t.describe()
    );
    assert_eq!(t.recirculations, 1);
    // Read the context back out of the final SFC header? It was stripped at
    // exit — instead verify through a mid-chain punt: reinject variant is
    // covered elsewhere; here assert the emitted packet reflects the decap.
    let out = &t.final_bytes;
    assert_eq!(u16::from_be_bytes([out[12], out[13]]), 0x0800);
    // And the context write really happened: run the gateway standalone on
    // the same bytes and read the header.
    let program = gw.program();
    let interp = dejavu_asic::Interpreter::new(program);
    let mut tables = dejavu_asic::TableState::new();
    tables
        .install(
            program.tables.get(VNI_TERM_TABLE).unwrap(),
            terminate_entry(700, 42),
        )
        .unwrap();
    let mut pp = dejavu_asic::ParsedPacket::parse(
        &encapsulate(&inner_packet(0xc0a8_0809), 700, 1, 2),
        &program.parser,
        interp.headers(),
    )
    .unwrap();
    pp.add_header(&dejavu_core::sfc::sfc_header_type(), Some("ipv4"));
    let mut meta = std::collections::BTreeMap::new();
    interp.execute(&mut pp, &mut meta, &mut tables).unwrap();
    let sfc = SfcHeader::read(&pp).unwrap();
    assert_eq!(sfc.context_get(ctx_keys::VNI), Some(700));
    assert_eq!(sfc.context_get(ctx_keys::TENANT_ID), Some(42));
}
