//! §5 prototype validation: input/output packets of every SFC path are
//! verified PTF-style, as the paper does with the Packet Test Framework.
//!
//! Fig. 2's three paths over the Fig. 9-style placement (classifier +
//! firewall on ingress 0, VGW + LB on egress 1, router on ingress 1,
//! pipeline-1 loopback): every chain completes within one recirculation,
//! the SFC header is added by the classifier and stripped at the exit
//! egress, and per-NF rewrites land on the wire.

use dejavu_asic::InjectedPacket;
use dejavu_integration::*;
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};
use dejavu_ptf::{run_suite, TestCase};

const VIP: u32 = 0xc633_6450; // 198.51.100.80
const BACKEND: u32 = 0x0a63_0001; // 10.99.0.1

fn check_decapped(bytes: &[u8]) -> Result<(), String> {
    let ether_type = u16::from_be_bytes([bytes[12], bytes[13]]);
    if ether_type != 0x0800 {
        return Err(format!(
            "ether_type {ether_type:#06x}, sfc header not removed"
        ));
    }
    Ok(())
}

fn check_ttl(bytes: &[u8], expect: u8) -> Result<(), String> {
    let ttl = bytes[22];
    if ttl != expect {
        return Err(format!("ttl {ttl}, expected {expect}"));
    }
    Ok(())
}

fn check_dst_ip(bytes: &[u8], expect: u32) -> Result<(), String> {
    let dst = u32::from_be_bytes([bytes[30], bytes[31], bytes[32], bytes[33]]);
    if dst != expect {
        return Err(format!("dst {dst:#010x}, expected {expect:#010x}"));
    }
    Ok(())
}

#[test]
fn path3_direct_chain() {
    // classifier → router: one recirculation (router lives on ingress 1).
    let (mut switch, _dep) = fig9_testbed();
    let report = run_suite(
        &mut switch,
        vec![
            TestCase::expect_port("path3", IN_PORT, chain_packet(3, VIP, 80), EXIT_PORT)
                .expect_recirculations(1)
                .expect_table_hit("classifier__classify")
                .expect_table_hit("router__routes")
                .check_packet(check_decapped)
                .check_packet(|b| check_ttl(b, 63))
                .check_packet(|b| check_dst_ip(b, VIP)),
        ],
    );
    report.assert_all_passed();
}

#[test]
fn path2_vgw_chain() {
    // classifier → vgw → router: vgw on egress 1, router on ingress 1.
    let (mut switch, _dep) = fig9_testbed();
    let report = run_suite(
        &mut switch,
        vec![
            TestCase::expect_port("path2", IN_PORT, chain_packet(2, VIP, 80), EXIT_PORT)
                .expect_recirculations(1)
                .expect_table_hit("classifier__classify")
                .expect_table_hit("vgw__vni_map")
                .expect_table_hit("router__routes")
                .check_packet(check_decapped)
                .check_packet(|b| check_ttl(b, 63)),
        ],
    );
    report.assert_all_passed();
}

#[test]
fn path1_full_chain_with_lb_session() {
    // classifier → firewall → vgw → lb → router. Pre-install the LB session
    // for the flow (as the control plane would after the first punt).
    let (mut switch, dep) = fig9_testbed();
    let pkt = chain_packet(1, VIP, 80);
    let tuple = five_tuple_of(&pkt).unwrap();
    dep.install(
        &mut switch,
        "lb",
        SESSION_TABLE,
        session_entry_for(&tuple, BACKEND),
    )
    .unwrap();
    let report = run_suite(
        &mut switch,
        vec![TestCase::expect_port("path1", IN_PORT, pkt, EXIT_PORT)
            .expect_recirculations(1)
            .expect_table_hit("classifier__classify")
            .expect_table_applied("firewall__acl")
            .expect_table_hit("lb__lb_session")
            .expect_table_hit("router__routes")
            .check_packet(check_decapped)
            .check_packet(move |b| check_dst_ip(b, BACKEND))
            .check_packet(|b| check_ttl(b, 63))],
    );
    report.assert_all_passed();
}

#[test]
fn path1_lb_miss_punts_to_cpu() {
    // Without a session entry the LB's default action requests to-CPU; the
    // framework flag check translates it and the switch punts.
    let (mut switch, _dep) = fig9_testbed();
    let report = run_suite(
        &mut switch,
        vec![TestCase::expect_cpu(
            "lb miss",
            IN_PORT,
            chain_packet(1, VIP, 80),
        )],
    );
    report.assert_all_passed();
}

#[test]
fn firewall_deny_drops() {
    // Path 1 traffic to TCP/22 matches the deny rule installed by the
    // fixture: dropped in the ingress pipe via sfc.drop_flag translation.
    let (mut switch, _dep) = fig9_testbed();
    let report = run_suite(
        &mut switch,
        vec![TestCase::expect_drop(
            "fw deny",
            IN_PORT,
            chain_packet(1, VIP, 22),
        )],
    );
    report.assert_all_passed();
}

#[test]
fn unclassified_traffic_punts() {
    // Traffic outside every classifier prefix: the classifier's default
    // punts it to the control plane.
    let (mut switch, _dep) = fig9_testbed();
    let stray = dejavu_traffic::PacketBuilder::tcp()
        .src_ip(0xac10_0001) // 172.16.0.1 — no chain
        .dst_ip(VIP)
        .build();
    let report = run_suite(
        &mut switch,
        vec![TestCase::expect_cpu("unclassified", IN_PORT, stray)],
    );
    report.assert_all_passed();
}

#[test]
fn model_predicts_switch_recirculations() {
    // The placement model's traversal cost must equal the measured
    // recirculation count for every chain (LB sessions installed so path 1
    // completes).
    let (mut switch, dep) = fig9_testbed();
    let pkt1 = chain_packet(1, VIP, 80);
    let tuple = five_tuple_of(&pkt1).unwrap();
    dep.install(
        &mut switch,
        "lb",
        SESSION_TABLE,
        session_entry_for(&tuple, BACKEND),
    )
    .unwrap();
    for chain in &dep.chains.chains {
        let predicted = dejavu_core::placement::traverse(
            chain,
            &dep.placement,
            0, // entry pipeline
            0, // exit pipeline (port 2)
            false,
        )
        .unwrap();
        let pkt = chain_packet(chain.path_id, VIP, 80);
        let t = switch.inject(InjectedPacket::new(pkt, IN_PORT)).unwrap();
        assert_eq!(
            t.recirculations as u32, predicted.recirculations,
            "chain {}: model {} vs switch {}",
            chain.path_id, predicted.recirculations, t.recirculations
        );
        assert_eq!(
            t.resubmissions as u32, predicted.resubmissions,
            "chain {} resubmissions",
            chain.path_id
        );
    }
}

#[test]
fn latency_reflects_recirculation_cost() {
    // One-recirculation paths should cost port-to-port + one recirc loop.
    let (mut switch, _dep) = fig9_testbed();
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    let timing = dejavu_asic::TimingModel::tofino();
    assert_eq!(t.recirculations, 1);
    assert!((t.latency_ns - timing.path_with_recircs_ns(12, 1)).abs() < 1e-9);
}
