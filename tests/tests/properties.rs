//! Property-based tests over the core invariants:
//!
//! * SFC header wire codec round-trips for every field combination,
//! * parse ∘ deparse is the identity on well-formed packets,
//! * parser merging is *sound*: every packet accepted by an input parser is
//!   accepted by the merged generic parser with the same header view,
//! * the placement optimizers never do worse than the naive baseline, and
//!   the exhaustive optimum lower-bounds both, on random instances,
//! * the feedback-queue fluid simulation converges to the analytic fixed
//!   point for every (rate, k).

use proptest::prelude::*;

use dejavu_core::merge::merge_parsers;
use dejavu_core::placement::PlacementProblem;
use dejavu_core::{ChainPolicy, ChainSet, SfcHeader};
use dejavu_p4ir::builder::ParserBuilder;
use dejavu_p4ir::well_known;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// SFC header codec
// ---------------------------------------------------------------------

fn arb_sfc_header() -> impl Strategy<Value = SfcHeader> {
    (
        any::<u16>(),
        any::<u8>(),
        0u16..(1 << 13),
        0u16..(1 << 13),
        any::<[bool; 5]>(),
        any::<[(u8, u16); 4]>(),
        any::<u8>(),
    )
        .prop_map(
            |(path_id, idx, in_port, out_port, flags, context, next_protocol)| SfcHeader {
                path_id,
                service_index: idx,
                in_port,
                out_port,
                resub_flag: flags[0],
                recirc_flag: flags[1],
                drop_flag: flags[2],
                mirror_flag: flags[3],
                to_cpu_flag: flags[4],
                context,
                next_protocol,
            },
        )
}

proptest! {
    #[test]
    fn sfc_header_roundtrips(h in arb_sfc_header()) {
        let bytes = h.to_bytes();
        prop_assert_eq!(SfcHeader::from_bytes(&bytes), h);
    }
}

// ---------------------------------------------------------------------
// parse/deparse identity
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn parse_deparse_identity(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ttl in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        tcp in any::<bool>(),
    ) {
        let base = if tcp {
            dejavu_traffic::PacketBuilder::tcp()
        } else {
            dejavu_traffic::PacketBuilder::udp()
        };
        let bytes = base
            .src_ip(src)
            .dst_ip(dst)
            .src_port(sport)
            .dst_port(dport)
            .ttl(ttl)
            .payload(&payload)
            .build();
        let cat: std::collections::HashMap<_, _> =
            [well_known::ethernet(), well_known::ipv4(), well_known::tcp(), well_known::udp()]
                .into_iter()
                .map(|h| (h.name.clone(), h))
                .collect();
        let pp = dejavu_asic::ParsedPacket::parse(&bytes, &well_known::eth_ip_l4_parser(), &cat)
            .expect("generated packet parses");
        prop_assert_eq!(pp.deparse(&cat).unwrap(), bytes);
    }
}

// ---------------------------------------------------------------------
// Parser merge soundness
// ---------------------------------------------------------------------

/// Builds a random sub-parser of the eth→ipv4→{tcp,udp} universe: each
/// parser includes ethernet, may include ipv4, and may include tcp and/or
/// udp below it.
fn arb_subparser() -> impl Strategy<Value = dejavu_p4ir::ParserDag> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(with_ip, with_tcp, with_udp)| {
        let mut b = ParserBuilder::new().node("eth", "ethernet", 0);
        if with_ip {
            b = b.node("ip", "ipv4", 14);
            let mut cases = Vec::new();
            if with_tcp {
                b = b.node("tcp", "tcp", 34).accept("tcp");
                cases.push((6u128, "tcp"));
            }
            if with_udp {
                b = b.node("udp", "udp", 34).accept("udp");
                cases.push((17u128, "udp"));
            }
            b = b.select("eth", "ether_type", 16, vec![(0x0800, "ip")]);
            b = if cases.is_empty() {
                b.accept("ip")
            } else {
                b.select("ip", "protocol", 8, cases)
            };
        }
        b.start("eth").build().expect("sub-parser resolves")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn merged_parser_accepts_what_inputs_accept(
        parsers in proptest::collection::vec(arb_subparser(), 1..5),
        proto in prop_oneof![Just(6u8), Just(17u8), Just(47u8)],
        is_ip in any::<bool>(),
    ) {
        let inputs: Vec<(String, dejavu_p4ir::ParserDag)> = parsers
            .into_iter()
            .enumerate()
            .map(|(i, d)| (format!("nf{i}"), d))
            .collect();
        let refs: Vec<(&str, &dejavu_p4ir::ParserDag)> =
            inputs.iter().map(|(n, d)| (n.as_str(), d)).collect();
        let (merged, ids) = merge_parsers(&refs).expect("compatible parsers merge");
        let cat: std::collections::HashMap<_, _> =
            [well_known::ethernet(), well_known::ipv4(), well_known::tcp(), well_known::udp()]
                .into_iter()
                .map(|h| (h.name.clone(), h))
                .collect();
        // A 60-byte packet, IPv4 or not, with the chosen protocol.
        let mut pkt = vec![0u8; 60];
        if is_ip {
            pkt[12] = 0x08;
        } else {
            pkt[12] = 0x86;
            pkt[13] = 0xdd;
        }
        pkt[23] = proto;
        for (name, dag) in &inputs {
            let input_path = dag.parse(&cat, &pkt).expect("sub-parsers accept everything");
            let merged_path = merged.parse(&cat, &pkt).unwrap_or_else(|e| {
                panic!("merged parser rejected a packet {name} accepted: {e}")
            });
            // Soundness: the merged accept path is a superset of each
            // input's path (same headers at same offsets, possibly more).
            for vertex in &input_path {
                prop_assert!(
                    merged_path.contains(vertex),
                    "merged path {:?} lost vertex {:?} from {}",
                    merged_path, vertex, name
                );
            }
            // Every input vertex got a global ID.
            for (h, off) in &input_path {
                prop_assert!(ids.get(h, *off).is_some());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Placement optimizer ordering
// ---------------------------------------------------------------------

fn arb_problem() -> impl Strategy<Value = PlacementProblem> {
    // 3..6 NFs, 1..3 chains over random subsequences, random small sizes.
    (3usize..6, 1usize..4, any::<u64>()).prop_map(|(n_nfs, n_chains, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let nfs: Vec<String> = (0..n_nfs).map(|i| format!("N{i}")).collect();
        let mut chains = Vec::new();
        for c in 0..n_chains {
            // Random non-empty subsequence in order.
            let mut seq: Vec<String> = nfs.iter().filter(|_| rng.gen_bool(0.7)).cloned().collect();
            if seq.is_empty() {
                seq.push(nfs[0].clone());
            }
            chains.push(ChainPolicy {
                path_id: (c + 1) as u16,
                name: format!("c{c}"),
                nfs: seq,
                weight: rng.gen_range(0.1..1.0),
            });
        }
        let stages: BTreeMap<String, u32> = nfs
            .iter()
            .map(|n| (n.clone(), rng.gen_range(1..4)))
            .collect();
        PlacementProblem::new(ChainSet { chains }, stages)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn optimizers_ordered_naive_ge_greedy_ge_exact(p in arb_problem()) {
        let naive = p.naive().ok().map(|pl| p.cost(&pl).unwrap());
        let greedy = p.greedy().ok().map(|pl| p.cost(&pl).unwrap());
        let exact = p.exhaustive(1 << 22).ok().map(|pl| p.cost(&pl).unwrap());
        if let (Some(naive), Some(greedy), Some(exact)) = (naive, greedy, exact) {
            prop_assert!(exact <= greedy + 1e-9, "exact {exact} > greedy {greedy}");
            prop_assert!(exact <= naive + 1e-9, "exact {exact} > naive {naive}");
            prop_assert!(greedy <= naive + 1e-9, "greedy {greedy} > naive {naive}");
        }
    }

    #[test]
    fn annealing_never_worse_than_its_start(p in arb_problem(), seed in any::<u64>()) {
        if let (Ok(start), Ok(annealed)) = (p.naive(), p.anneal(seed, 500)) {
            let start_cost = p.cost(&start).unwrap();
            let annealed_cost = p.cost(&annealed).unwrap();
            prop_assert!(annealed_cost <= start_cost + 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// Feedback queue convergence
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fluid_sim_converges_to_analytic(k in 1usize..6, rate in 1.0f64..400.0) {
        let analytic = dejavu_asic::feedback::effective_throughput_gbps(rate, k);
        let sim = dejavu_asic::feedback::simulate_fluid(rate, k, 3000);
        prop_assert!(
            (sim - analytic).abs() < rate * 0.02,
            "k={k} rate={rate}: sim {sim} vs analytic {analytic}"
        );
    }

    #[test]
    fn delivery_ratio_monotone_in_k(k in 1usize..10) {
        let a = dejavu_asic::feedback::delivery_ratio(k);
        let b = dejavu_asic::feedback::delivery_ratio(k + 1);
        prop_assert!(b <= a + 1e-12);
        prop_assert!(a > 0.0 && a <= 1.0);
    }
}

// ---------------------------------------------------------------------
// dejavu-lint robustness and composition stability
// ---------------------------------------------------------------------

/// Builds an arbitrary (frequently broken) program: a random parser depth,
/// random table keys that may hit unparsed headers or unwritten metadata,
/// random control shapes (validity guards, repeated applies, dead tables,
/// dangling entry). These are exactly the defect classes the linter hunts;
/// the property is that it *diagnoses* instead of panicking.
fn arb_messy_program() -> impl Strategy<Value = dejavu_p4ir::Program> {
    let key_pool = prop_oneof![
        Just(dejavu_p4ir::fref("ethernet", "ether_type")),
        Just(dejavu_p4ir::fref("ipv4", "dst_addr")),
        Just(dejavu_p4ir::fref("tcp", "dst_port")),
        Just(dejavu_p4ir::FieldRef::meta("m0")),
        Just(dejavu_p4ir::FieldRef::meta("m1")),
    ];
    (
        0usize..3,                                                // parser depth: eth / +ip / +tcp
        proptest::collection::vec((key_pool, any::<u8>()), 1..6), // tables: (key, shape bits)
        any::<bool>(),                                            // guard some applies with isValid
        any::<bool>(),                                            // leave the last table unapplied
    )
        .prop_map(|(depth, tables, guard, drop_last)| {
            use dejavu_p4ir::builder::*;
            use dejavu_p4ir::{BoolExpr, Stmt};

            let mut parser = ParserBuilder::new().node("eth", "ethernet", 0);
            parser = match depth {
                0 => parser.accept("eth"),
                1 => parser
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip"),
                _ => parser
                    .node("ip", "ipv4", 14)
                    .node("tcp", "tcp", 34)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .select("ip", "protocol", 8, vec![(6, "tcp")])
                    .accept("tcp"),
            };
            let mut b = ProgramBuilder::new("messy")
                .header(well_known::ethernet())
                .header(well_known::ipv4())
                .header(well_known::tcp())
                .meta_field("m0", 16)
                .meta_field("m1", 16)
                .parser(parser.start("eth"))
                .action(ActionBuilder::new("nop").build());
            let mut control = ControlBuilder::new("ingress");
            let n = tables.len();
            for (i, (key, shape)) in tables.into_iter().enumerate() {
                let writes_meta = shape & 1 == 0;
                let act = ActionBuilder::new(format!("w{i}"));
                let act = if writes_meta {
                    act.set(
                        dejavu_p4ir::FieldRef::meta(if shape & 2 == 0 { "m0" } else { "m1" }),
                        dejavu_p4ir::Expr::val(1, 16),
                    )
                } else {
                    act.set(
                        dejavu_p4ir::fref("ipv4", "ttl"),
                        dejavu_p4ir::Expr::val(1, 8),
                    )
                };
                b = b.action(act.build()).table(
                    TableBuilder::new(format!("t{i}"))
                        .key_exact(key)
                        .action(format!("w{i}"))
                        .default_action(if shape & 4 == 0 {
                            "nop".into()
                        } else {
                            format!("w{i}")
                        })
                        .build(),
                );
                if drop_last && i == n - 1 {
                    continue; // dead table: DJV005 bait
                }
                if guard && i % 2 == 1 {
                    control = control.stmt(Stmt::If {
                        cond: BoolExpr::Valid("ipv4".into()),
                        then_branch: vec![Stmt::Apply(format!("t{i}"))],
                        else_branch: vec![],
                    });
                } else {
                    control = control.apply(&format!("t{i}"));
                }
            }
            b.control(control.build())
                .entry("ingress")
                .build_unchecked()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn lint_never_panics_and_renders(program in arb_messy_program()) {
        let report = dejavu_p4ir::lint::check(&program);
        // Renderers total on any report.
        let pretty = report.render_pretty();
        let json = report.render_json();
        prop_assert!(json.starts_with('[') && json.ends_with(']'));
        // is_clean ⇔ nothing above Allow.
        prop_assert_eq!(
            report.is_clean(),
            report.errors().is_empty() && report.warnings().is_empty()
        );
        // Severity overrides are respected: everything demoted to Allow
        // makes any program clean.
        let mut cfg = dejavu_p4ir::LintConfig::new();
        for code in dejavu_p4ir::LintCode::ALL {
            cfg = cfg.set_severity(code, dejavu_p4ir::Severity::Allow);
        }
        let demoted = dejavu_p4ir::lint::check_with_config(&program, &cfg);
        prop_assert!(demoted.is_clean(), "demoted report not clean:\n{pretty}");
    }
}

/// Lint-clean NFs stay error-free after merge + composition, in both modes
/// and regardless of slot order — the framework tables must never introduce
/// an error-level finding of their own.
fn arb_clean_nf(name: &'static str) -> impl Strategy<Value = dejavu_core::NfModule> {
    (0u8..3, any::<bool>()).prop_map(move |(field, with_default)| {
        use dejavu_p4ir::builder::*;
        let dst = match field {
            0 => dejavu_p4ir::fref("ipv4", "dscp"),
            1 => dejavu_p4ir::fref("ipv4", "ttl"),
            _ => dejavu_p4ir::fref("sfc", "ctx_key0"),
        };
        let bits = match field {
            0 => 6,
            1 => 8,
            _ => 8,
        };
        let program = ProgramBuilder::new(name)
            .header(well_known::ethernet())
            .header(well_known::ipv4())
            .header(dejavu_core::sfc::sfc_header_type())
            .parser(
                ParserBuilder::new()
                    .node("eth", "ethernet", 0)
                    .node("ip", "ipv4", 14)
                    .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                    .accept("ip")
                    .start("eth"),
            )
            .action(
                ActionBuilder::new("mark")
                    .set(dst, dejavu_p4ir::Expr::val(1, bits))
                    .build(),
            )
            .action(ActionBuilder::new("pass").build())
            .table(
                TableBuilder::new("work")
                    .key_exact(dejavu_p4ir::fref("ipv4", "dst_addr"))
                    .action("mark")
                    .default_action(if with_default { "mark" } else { "pass" })
                    .build(),
            )
            .control(ControlBuilder::new("ctrl").apply("work").build())
            .entry("ctrl")
            .build()
            .expect("clean NF builds");
        dejavu_core::NfModule::new(program).expect("clean NF is API-compliant")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn clean_nfs_stay_clean_through_composition(
        a in arb_clean_nf("alpha"),
        b in arb_clean_nf("beta"),
        parallel in any::<bool>(),
        swap in any::<bool>(),
        ingress in any::<bool>(),
    ) {
        use dejavu_core::compose::{compose_pipelet, CompositionMode, PipeletPlan, PlannedNf};

        // Preconditions: each NF is individually clean.
        prop_assert!(dejavu_p4ir::lint::check(a.program()).is_clean());
        prop_assert!(dejavu_p4ir::lint::check(b.program()).is_clean());

        let merged = dejavu_core::merge::merge_programs("prop_sfc", &[&a, &b])
            .expect("clean NFs merge");
        let mut names = vec!["alpha", "beta"];
        if swap {
            names.reverse();
        }
        let plan = PipeletPlan {
            pipelet: if ingress {
                dejavu_asic::PipeletId::ingress(0)
            } else {
                dejavu_asic::PipeletId::egress(0)
            },
            nfs: names.into_iter().map(PlannedNf::indexed).collect(),
            mode: if parallel { CompositionMode::Parallel } else { CompositionMode::Sequential },
        };
        let program = compose_pipelet(&merged, &plan).expect("clean NFs compose");
        let report = dejavu_core::lint::lint_pipelet(&program, &plan);
        prop_assert!(
            report.errors().is_empty(),
            "composition introduced errors:\n{}",
            report.render_pretty()
        );
    }
}
