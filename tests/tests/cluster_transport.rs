//! Tentpole acceptance for the transport-backed cluster runtime: a
//! 3-switch spilled chain produces identical per-flow outputs and merged
//! telemetry over [`ChannelTransport`], [`TcpTransport`], and the old
//! lockstep [`ClusterNet`] path — and a learn storm drains digests
//! concurrently with injection without dropping a single learned flow.

use std::collections::BTreeMap;
use std::time::Duration;

use dejavu_asic::switch::Disposition;
use dejavu_asic::MetricsSnapshot;
use dejavu_asic::{InjectedPacket, PipeletId, TofinoProfile};
use dejavu_core::deploy::DeployOptions;
use dejavu_core::multiswitch::{
    deploy_cluster, ClusterNet, ClusterPlacement, ClusterTraversal, ClusterWiring,
};
use dejavu_core::placement::Placement;
use dejavu_core::transport::{
    spawn_cluster, ChannelTransport, ClusterHandle, ClusterOptions, TcpTransport, Transport,
    WireTraversal,
};
use dejavu_core::{ChainPolicy, ChainSet, NfModule};
use dejavu_integration::{encapsulated_packet, marker_nf, EXIT_PORT, IN_PORT};
use dejavu_nf::nat::{dynamic_nat, nat_learn_policy, nat_out_entry, NAT_FLOW_STREAM, NAT_IN_TABLE};
use dejavu_nf::{classifier, router};

// ---------------------------------------------------------------------
// 3-switch spilled chain: one chain too large for a single ASIC, three
// NFs per member, exercised identically over every execution path.
// ---------------------------------------------------------------------

fn nine_nf_setup() -> (Vec<NfModule>, ChainSet, ClusterPlacement) {
    let names: Vec<String> = (0..9).map(|i| format!("n{i}")).collect();
    let nfs: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, n)| marker_nf(n, i as u32))
        .collect();
    let chains = ChainSet::new(vec![ChainPolicy {
        path_id: 1,
        name: "spilled".into(),
        nfs: names,
        weight: 1.0,
    }])
    .unwrap();
    let placement = ClusterPlacement {
        switches: (0..3)
            .map(|s| {
                let base = s * 3;
                let mut p = Placement::default();
                p.pipelets.insert(
                    PipeletId::ingress(0),
                    vec![format!("n{base}"), format!("n{}", base + 1)],
                );
                p.pipelets
                    .insert(PipeletId::egress(0), vec![format!("n{}", base + 2)]);
                p
            })
            .collect(),
    };
    (nfs, chains, placement)
}

/// The packet mix every path must agree on: full-chain flights, mid-chain
/// entries that skip one or two members, and a duplicate of the first flow.
fn packet_mix() -> Vec<Vec<u8>> {
    vec![
        encapsulated_packet(1, 0),
        encapsulated_packet(1, 3),
        encapsulated_packet(1, 6),
        encapsulated_packet(1, 0),
    ]
}

fn lockstep_cluster() -> ClusterNet {
    let (nfs, chains, placement) = nine_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    let mut net = deploy_cluster(
        &refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .unwrap();
    for sw in &mut net.switches {
        sw.set_telemetry(true);
    }
    net
}

fn transport_cluster(transport: &mut dyn Transport) -> ClusterHandle {
    let (nfs, chains, placement) = nine_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    spawn_cluster(
        &refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
        transport,
        &ClusterOptions {
            telemetry: true,
            ..Default::default()
        },
    )
    .unwrap()
}

/// A transport flight record must match the lockstep one field for field:
/// same fate, same bytes, same latency (the worker accumulates switch and
/// cable latency in the same order), same hop-by-hop table story.
fn assert_flight_matches(label: &str, wire: &WireTraversal, lockstep: &ClusterTraversal) {
    assert_eq!(
        wire.disposition, lockstep.disposition,
        "{label}: disposition"
    );
    assert_eq!(wire.final_bytes, lockstep.final_bytes, "{label}: bytes");
    assert_eq!(wire.latency_ns, lockstep.latency_ns, "{label}: latency");
    assert_eq!(
        wire.inter_switch_hops, lockstep.inter_switch_hops,
        "{label}: wire hops"
    );
    assert_eq!(
        wire.recirculations, lockstep.recirculations,
        "{label}: recirculations"
    );
    assert_eq!(wire.hops.len(), lockstep.hops.len(), "{label}: hop count");
    for (hop, (sw, t)) in wire.hops.iter().zip(&lockstep.hops) {
        assert_eq!(hop.switch as usize, *sw, "{label}: hop order");
        assert_eq!(hop.latency_ns, t.latency_ns, "{label}: hop latency");
        assert_eq!(
            hop.recirculations as usize, t.recirculations,
            "{label}: hop recircs"
        );
        assert_eq!(
            hop.tables_applied,
            t.tables_applied()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            "{label}: tables applied on switch {sw}"
        );
        assert_eq!(
            hop.tables_hit,
            t.tables_hit()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            "{label}: tables hit on switch {sw}"
        );
    }
}

/// Drives the packet mix through a freshly spawned transport cluster and
/// checks every flight and the full telemetry picture against the lockstep
/// reference.
fn assert_transport_equivalent(transport: &mut dyn Transport, expected_kind: &str) {
    let mut net = lockstep_cluster();
    let reference: Vec<ClusterTraversal> = packet_mix()
        .into_iter()
        .map(|p| net.inject(InjectedPacket::new(p, IN_PORT)).unwrap())
        .collect();
    // The full flight reaches all three members; mid-chain entries skip
    // ahead over the wire. Sanity-check the reference itself first.
    assert_eq!(reference[0].hops.len(), 3);
    assert_eq!(reference[0].inter_switch_hops, 2);
    assert_eq!(
        reference[0].disposition,
        Disposition::Emitted { port: EXIT_PORT }
    );

    let mut handle = transport_cluster(transport);
    assert_eq!(handle.members(), 3);
    assert_eq!(handle.transport_kind(), expected_kind);
    assert_eq!(handle.switch_of("n0"), Some(0));
    assert_eq!(handle.switch_of("n8"), Some(2));

    for (i, packet) in packet_mix().into_iter().enumerate() {
        let wire = handle.inject(InjectedPacket::new(packet, IN_PORT)).unwrap();
        assert_flight_matches(&format!("{expected_kind} packet {i}"), &wire, &reference[i]);
    }

    // Telemetry: per-member snapshots and the merged view must be exactly
    // the lockstep picture — every counter, gauge, and histogram bucket.
    let scrape = handle.metrics_snapshot().unwrap();
    let lockstep_snaps: Vec<MetricsSnapshot> =
        net.switches.iter().map(|s| s.metrics_snapshot()).collect();
    assert_eq!(scrape.per_switch.len(), 3);
    for (i, (wire_snap, lock_snap)) in scrape.per_switch.iter().zip(&lockstep_snaps).enumerate() {
        assert_eq!(wire_snap, lock_snap, "switch {i} telemetry diverges");
    }
    let mut merged = MetricsSnapshot::default();
    for s in &lockstep_snaps {
        merged.merge(s);
    }
    assert_eq!(scrape.merged, merged, "merged telemetry diverges");

    handle.shutdown().unwrap();
}

#[test]
fn spilled_chain_is_equivalent_over_channel_transport() {
    let mut transport = ChannelTransport::new();
    assert_transport_equivalent(&mut transport, "channel");
}

#[test]
fn spilled_chain_is_equivalent_over_tcp_transport() {
    let mut transport = TcpTransport::new();
    assert_transport_equivalent(&mut transport, "tcp");
}

/// Regression: a sync `inject` issued while an `inject_async` flight has
/// already been delivered must stash the foreign record once and keep
/// reading the delivery channel — not cycle pop/re-push on the stash until
/// the deadline and report a spurious timeout.
#[test]
fn sync_inject_interleaves_with_async_deliveries() {
    let mut transport = ChannelTransport::new();
    let mut handle = transport_cluster(&mut transport);
    let async_trace = handle
        .inject_async(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    // Let the async flight finish so its delivery is queued ahead of the
    // sync packet's record on the channel.
    std::thread::sleep(Duration::from_millis(200));
    let t = handle
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    // The async record was stashed for its waiter, not lost.
    let d = handle
        .recv_delivered(Duration::from_secs(5))
        .unwrap()
        .expect("stashed async delivery");
    assert_eq!(d.trace, async_trace);
    assert!(d.result.is_ok());
    handle.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Learn storm: digests drain concurrently with injection.
// ---------------------------------------------------------------------

const SERVER: u32 = 0x0808_0808;
const PUBLIC_IP: u32 = 0xc633_6401;
const CLIENT: u32 = 0x0a01_0101;
const FLOWS: u16 = 32;
const BASE_PORT: u16 = 40000;

fn outbound(src_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(CLIENT)
        .dst_ip(SERVER)
        .src_port(src_port)
        .dst_port(80)
        .build()
}

fn inbound(dst_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(SERVER)
        .dst_ip(PUBLIC_IP)
        .src_port(80)
        .dst_port(dst_port)
        .build()
}

fn ip_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// classifier → nat spilled onto switch 0, router on switch 1: outbound
/// traffic is learned on the first member while the flight finishes on the
/// second. A burst of distinct flows is injected without waiting; the
/// controller learns from eagerly pushed digests while packets are still
/// in flight, and the flush barrier afterwards accounts for every flow.
#[test]
fn learn_storm_drains_digests_concurrently_with_injection() {
    let nfs: Vec<NfModule> = vec![classifier::classifier(), dynamic_nat(), router::router()];
    let refs: Vec<&NfModule> = nfs.iter().collect();
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "nat_path",
        vec!["classifier", "nat", "router"],
        1.0,
    )])
    .unwrap();
    let placement = ClusterPlacement {
        switches: vec![
            Placement::sequential(vec![(PipeletId::ingress(0), vec!["classifier", "nat"])]),
            Placement::sequential(vec![(PipeletId::egress(0), vec!["router"])]),
        ],
    };
    let options = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let mut transport = ChannelTransport::new();
    let mut handle = spawn_cluster(
        &refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &options,
        &mut transport,
        &ClusterOptions::default(),
    )
    .unwrap();
    assert_eq!(handle.switch_of("nat"), Some(0));
    assert_eq!(handle.switch_of("router"), Some(1));

    // The learning loop lives on the controller thread, not in a polling
    // facade: register the policy first so no digest is ever unattended.
    handle
        .register_learn_policy("nat", NAT_FLOW_STREAM, nat_learn_policy())
        .unwrap();

    // Steer both directions onto the chain, arm the NAT, route to exit.
    for prefix in [(0x0a01_0000u32, 16u16), (0x0800_0000, 8)] {
        handle
            .install(
                "classifier",
                classifier::CLASSIFY_TABLE,
                classifier::classify_entry(prefix, (0, 0), 1, 100),
            )
            .unwrap();
    }
    handle
        .install(
            "nat",
            dejavu_nf::nat::NAT_OUT_TABLE,
            nat_out_entry((0x0a01_0000, 16), PUBLIC_IP),
        )
        .unwrap();
    handle
        .install(
            "router",
            router::ROUTES_TABLE,
            router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
        )
        .unwrap();

    // The storm: fire every flow without waiting for any delivery. Workers
    // push each flow's digest upstream eagerly, so the controller is
    // installing return-path entries while later packets are still flying.
    let mut traces = std::collections::BTreeSet::new();
    for f in 0..FLOWS {
        traces.insert(
            handle
                .inject_async(InjectedPacket::new(outbound(BASE_PORT + f), IN_PORT))
                .unwrap(),
        );
    }
    for _ in 0..FLOWS {
        let d = handle
            .recv_delivered(Duration::from_secs(30))
            .unwrap()
            .expect("storm delivery");
        assert!(traces.remove(&d.trace), "unknown trace {}", d.trace);
        let t = d.result.expect("storm flight");
        assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
        assert_eq!(ip_at(&t.final_bytes, 26), PUBLIC_IP, "source not rewritten");
        assert_eq!(t.hops.len(), 2, "flight spans both members");
    }
    assert!(traces.is_empty(), "undelivered flows: {traces:?}");

    // Flush barrier: the report accounts for every digest the storm
    // produced — learned concurrently, none dropped.
    let report = handle.process_digests().unwrap();
    assert_eq!(report.digests_seen, FLOWS as usize);
    assert_eq!(report.entries_installed, FLOWS as usize);
    assert_eq!(report.per_switch[0].digests, FLOWS as usize);
    assert_eq!(report.per_switch[0].installed, FLOWS as usize);
    assert_eq!(report.per_switch[1].digests, 0);

    // Every learned flow answers: return traffic for all 32 flows is
    // translated in the data plane — no flow was lost in the storm.
    for f in 0..FLOWS {
        let t = handle
            .inject(InjectedPacket::new(inbound(BASE_PORT + f), IN_PORT))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
        assert_eq!(
            ip_at(&t.final_bytes, 30),
            CLIENT,
            "flow {f} lost in the storm"
        );
    }

    // A second flush sees a quiet cluster (duplicates notwithstanding:
    // return traffic emits no digests).
    let report = handle.process_digests().unwrap();
    assert_eq!(report.entries_installed, 0);

    // The learned state is real switch state: aging it out works through
    // the same handle.
    handle
        .set_idle_timeout("nat", NAT_IN_TABLE, Some(5))
        .unwrap();
    let report = handle.advance_time(10).unwrap();
    assert_eq!(report.per_switch[0].evictions, FLOWS as usize);

    handle.shutdown().unwrap();
    assert!(matches!(
        handle.inject(InjectedPacket::new(outbound(BASE_PORT), IN_PORT)),
        Err(dejavu_core::transport::ClusterError::Closed)
    ));
}

// ---------------------------------------------------------------------
// Wiring validation (satellite: typed construction errors).
// ---------------------------------------------------------------------

#[test]
fn spawn_rejects_invalid_wiring_with_typed_errors() {
    use dejavu_core::multiswitch::ClusterConfigError;
    use dejavu_core::transport::ClusterError;

    let (nfs, chains, placement) = nine_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    let mut transport = ChannelTransport::new();

    // Exit port colliding with the inter-switch link is caught before any
    // worker spawns.
    let exit_on_link: BTreeMap<u16, u16> = [(1u16, ClusterWiring::default().egress_link_port)]
        .into_iter()
        .collect();
    let err = spawn_cluster(
        &refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        exit_on_link,
        &ClusterWiring::default(),
        &DeployOptions::default(),
        &mut transport,
        &ClusterOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ClusterError::Deploy(dejavu_core::deploy::DeployError::ClusterConfig(
                ClusterConfigError::ExitPortCollision { .. }
            ))
        ),
        "got {err}"
    );

    // Both link ports on the same number is rejected at wiring build time.
    assert!(matches!(
        ClusterWiring::new(14, 14, 5.0),
        Err(ClusterConfigError::LinkPortCollision { port: 14 })
    ));
    assert!(matches!(
        ClusterWiring::new(14, 13, f64::NAN),
        Err(ClusterConfigError::BadCableLatency(_))
    ));
}
