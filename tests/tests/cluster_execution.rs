//! §7 multi-switch chaining, physically executed: a chain too large for one
//! ASIC deployed across wired back-to-back switches, driven packet by
//! packet through the whole cluster.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PipeletId};
use dejavu_core::deploy::{DeployError, DeployOptions};
use dejavu_core::multiswitch::{
    deploy_cluster, ClusterConfigError, ClusterPlacement, ClusterWiring,
};
use dejavu_core::placement::Placement;
use dejavu_core::{ChainPolicy, ChainSet};
use dejavu_integration::{encapsulated_packet, marker_nf, IN_PORT};

const EXIT_PORT: u16 = 2;

fn six_nf_setup() -> (Vec<dejavu_core::NfModule>, ChainSet, ClusterPlacement) {
    let names: Vec<String> = (0..6).map(|i| format!("n{i}")).collect();
    let nfs: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, n)| marker_nf(n, i as u32))
        .collect();
    let chains = ChainSet::new(vec![ChainPolicy {
        path_id: 1,
        name: "long".into(),
        nfs: names,
        weight: 1.0,
    }])
    .unwrap();
    // Three NFs per switch, spread across pipelets.
    let placement = ClusterPlacement {
        switches: vec![
            Placement::sequential(vec![
                (PipeletId::ingress(0), vec!["n0", "n1"]),
                (PipeletId::egress(0), vec!["n2"]),
            ]),
            Placement::sequential(vec![
                (PipeletId::ingress(0), vec!["n3", "n4"]),
                (PipeletId::egress(0), vec!["n5"]),
            ]),
        ],
    };
    (nfs, chains, placement)
}

#[test]
fn chain_executes_across_two_switches() {
    let (nfs, chains, placement) = six_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    let mut net = deploy_cluster(
        &refs,
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .unwrap();

    let t = net
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(t.inter_switch_hops, 1, "one forward wire hop");
    assert_eq!(t.hops.len(), 2, "visited both switches");
    // All six NFs ran, three per switch.
    for (i, (sw, hop)) in t.hops.iter().enumerate() {
        assert_eq!(*sw, i);
        for nf in 0..3 {
            let table = format!("n{}__work", i * 3 + nf);
            assert!(
                hop.tables_applied().contains(&table.as_str()),
                "switch {i} missing {table}: {:?}",
                hop.tables_applied()
            );
        }
    }
    // Decapsulated only at the final exit.
    let out = &t.final_bytes;
    assert_eq!(u16::from_be_bytes([out[12], out[13]]), 0x0800);
    // The intermediate wire carried the packet still encapsulated.
    let mid = &t.hops[0].1.final_bytes;
    assert_eq!(
        u16::from_be_bytes([mid[12], mid[13]]),
        dejavu_core::sfc::SFC_ETHERTYPE,
        "packet crosses the wire SFC-encapsulated"
    );
    // Latency: two port-to-port traversals + cable + any recirculations.
    assert!(t.latency_ns > 1300.0, "latency {}", t.latency_ns);
}

#[test]
fn mid_chain_entry_on_second_switch_only_runs_remaining_nfs() {
    // A packet arriving at switch 0 with service index 3 skips switch 0's
    // NFs (the branching table forwards it straight over the link).
    let (nfs, chains, placement) = six_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    let mut net = deploy_cluster(
        &refs,
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .unwrap();
    let t = net
        .inject(InjectedPacket::new(encapsulated_packet(1, 3), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    // Switch 0 applied no NF work tables.
    assert!(!t.hops[0]
        .1
        .tables_applied()
        .iter()
        .any(|x| x.ends_with("__work")));
    // Switch 1 ran n3..n5.
    for nf in ["n3", "n4", "n5"] {
        let table = format!("{nf}__work");
        assert!(t.hops[1].1.tables_applied().contains(&table.as_str()));
    }
}

#[test]
fn backward_chains_are_rejected_at_deploy() {
    let (nfs, _chains, placement) = six_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    // A chain that needs switch 1 then switch 0: forward-only wiring can't.
    let chains = ChainSet::new(vec![ChainPolicy::new(1, "back", vec!["n3", "n0"], 1.0)]).unwrap();
    let err = deploy_cluster(
        &refs,
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            DeployError::ClusterConfig(ClusterConfigError::NonMonotoneChain { .. })
        ),
        "got {err}"
    );
}

#[test]
fn cluster_install_routes_rules_to_owning_switch() {
    let (nfs, chains, placement) = six_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    let mut net = deploy_cluster(
        &refs,
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .unwrap();
    assert_eq!(net.switch_of("n0"), Some(0));
    assert_eq!(net.switch_of("n5"), Some(1));
    assert_eq!(net.switch_of("ghost"), None);
    // Installing through the cluster API lands on the right switch: make
    // n5's marker pass instead of mark for TCP.
    use dejavu_p4ir::table::{KeyMatch, TableEntry};
    net.install(
        "n5",
        "work",
        TableEntry {
            matches: vec![KeyMatch::Exact(dejavu_p4ir::Value::new(6, 8))],
            action: "pass".into(),
            action_args: vec![],
            priority: 0,
        },
    )
    .unwrap();
    let t = net
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    // n5's table hit the pass entry this time.
    assert!(t.hops[1].1.tables_hit().contains(&"n5__work"));
    drop(chains);
}

#[test]
fn cluster_state_sync_spans_member_switches() {
    let (nfs, chains, placement) = six_nf_setup();
    let refs: Vec<_> = nfs.iter().collect();
    let mut net = deploy_cluster(
        &refs,
        &chains,
        &placement,
        &dejavu_asic::TofinoProfile::wedge_100b_32x(),
        [(1u16, EXIT_PORT)].into_iter().collect(),
        &ClusterWiring::default(),
        &DeployOptions::default(),
    )
    .unwrap();

    // Dynamic state on both members: one extra rule per switch.
    let pass_entry = || dejavu_p4ir::table::TableEntry {
        matches: vec![dejavu_p4ir::table::KeyMatch::Exact(
            dejavu_p4ir::Value::new(6, 8),
        )],
        action: "pass".into(),
        action_args: vec![],
        priority: 0,
    };
    net.install("n0", "work", pass_entry()).unwrap();
    net.install("n4", "work", pass_entry()).unwrap();

    // The cluster-wide checkpoint sees the state where it lives.
    let snaps = net.snapshot_state();
    let has = |sw: usize, table: &str| {
        snaps
            .iter()
            .any(|(i, _, s)| *i == sw && s.table(table).is_some_and(|t| !t.entries.is_empty()))
    };
    assert!(has(0, "n0__work"), "switch 0 state missing from checkpoint");
    assert!(has(1, "n4__work"), "switch 1 state missing from checkpoint");

    // No learning NFs deployed: a cluster learning round is a no-op, and
    // the merged report says so per member.
    let mut cp = dejavu_core::control_plane::ControlPlane::new();
    let report = net.process_digests(&mut cp).unwrap();
    assert_eq!(report.digests_seen, 0);
    assert_eq!(report.entries_installed, 0);
    assert_eq!(report.per_switch.len(), 2);

    // Lockstep aging: both members advance together and both evict.
    net.deployments[0]
        .set_idle_timeout(&mut net.switches[0], "n0", "work", Some(3))
        .unwrap();
    net.deployments[1]
        .set_idle_timeout(&mut net.switches[1], "n4", "work", Some(3))
        .unwrap();
    let report = net.advance_time(5);
    let members: std::collections::BTreeSet<usize> =
        report.evictions.iter().map(|(i, _, _)| *i).collect();
    assert_eq!(members, [0, 1].into_iter().collect());
    assert_eq!(report.evicted(), report.evictions.len());
    assert!(report.per_switch[0].evictions >= 1);
    assert!(report.per_switch[1].evictions >= 1);
    assert_eq!(net.switches[0].now(), net.switches[1].now());
}
