//! Extended-chain integration: the paper's five NFs plus the stateful and
//! mirroring extension NFs, on one switch — exercising registers,
//! the checksum extern, mirroring, and an eight-NF chain end to end.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PipeletId, TofinoProfile, TraceEvent};
use dejavu_core::deploy::{deploy, DeployOptions};
use dejavu_core::placement::Placement;
use dejavu_core::routing::RoutingConfig;
use dejavu_core::{ChainPolicy, ChainSet, NfModule};
use dejavu_integration::{src_prefix, EXIT_PORT, IN_PORT, LOOPBACK_PORT_P0, LOOPBACK_PORT_P1};
use dejavu_nf::{
    classifier, firewall, load_balancer, mirror_tap, rate_limiter, router, syn_guard, vgw,
};

const VIP: u32 = 0xc633_6450;
const BACKEND: u32 = 0x0a63_0001;
const MIRROR_PORT: u16 = 5;

fn testbed() -> (dejavu_asic::Switch, dejavu_core::deploy::Deployment) {
    let nfs: Vec<NfModule> = vec![
        classifier::classifier(),
        firewall::firewall(),
        rate_limiter::rate_limiter(),
        vgw::vgw(),
        load_balancer::load_balancer(),
        syn_guard::syn_guard(),
        mirror_tap::mirror_tap(),
        router::router(),
    ];
    let nf_refs: Vec<&NfModule> = nfs.iter().collect();
    let chains = ChainSet::new(vec![
        ChainPolicy::new(
            1,
            "everything",
            vec![
                "classifier",
                "firewall",
                "rate_limiter",
                "vgw",
                "lb",
                "syn_guard",
                "mirror_tap",
                "router",
            ],
            0.7,
        ),
        ChainPolicy::new(2, "guarded", vec!["classifier", "syn_guard", "router"], 0.3),
    ])
    .unwrap();
    // Eight NFs across all four pipelets.
    let placement = Placement::sequential(vec![
        (
            PipeletId::ingress(0),
            vec!["classifier", "firewall", "rate_limiter"],
        ),
        (PipeletId::egress(1), vec!["vgw", "lb"]),
        (PipeletId::ingress(1), vec!["syn_guard", "mirror_tap"]),
        (PipeletId::egress(0), vec!["router"]),
    ]);
    let config = RoutingConfig {
        loopback_port: [(0usize, LOOPBACK_PORT_P0), (1usize, LOOPBACK_PORT_P1)]
            .into_iter()
            .collect(),
        exit_ports: chains
            .chains
            .iter()
            .map(|c| (c.path_id, EXIT_PORT))
            .collect(),
        honor_out_port: false,
    };
    let options = DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    };
    let (mut switch, dep) = deploy(
        &nf_refs,
        &chains,
        &placement,
        &TofinoProfile::wedge_100b_32x(),
        &config,
        &options,
    )
    .expect("extended chain deploys");
    switch.set_mirror_port(Some(MIRROR_PORT));

    // Policy: classify both paths, arm the SYN guard, budget a rate class,
    // tap one flow, install an LB session and a default route.
    for path in [1u16, 2] {
        dep.install(
            &mut switch,
            "classifier",
            classifier::CLASSIFY_TABLE,
            classifier::classify_entry(src_prefix(path), (0, 0), path, path),
        )
        .unwrap();
    }
    dep.install(
        &mut switch,
        "rate_limiter",
        rate_limiter::CLASSES_TABLE,
        rate_limiter::class_entry(src_prefix(1), 9, 4),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "syn_guard",
        syn_guard::CONFIG_TABLE,
        syn_guard::arm_entry(VIP, 0xffff_ffff, 100),
    )
    .unwrap();
    // The LB rewrites VIP → backend *before* the tap runs (the tap sits
    // later in the chain), so the tap matches the backend address.
    dep.install(
        &mut switch,
        "mirror_tap",
        mirror_tap::TAP_TABLE,
        mirror_tap::tap_entry(src_prefix(1).0 | 0x0101, BACKEND, 0xd1a6),
    )
    .unwrap();
    dep.install(
        &mut switch,
        "router",
        router::ROUTES_TABLE,
        router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
    )
    .unwrap();
    (switch, dep)
}

fn packet(path: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(src_prefix(path).0 | 0x0101)
        .dst_ip(VIP)
        .dst_port(80)
        .build()
}

#[test]
fn eight_nf_chain_completes_with_all_features() {
    let (mut switch, dep) = testbed();
    // LB session for the flow.
    let tuple = dejavu_nf::load_balancer::five_tuple_of(&packet(1)).unwrap();
    dep.install(
        &mut switch,
        "lb",
        dejavu_nf::load_balancer::SESSION_TABLE,
        dejavu_nf::load_balancer::session_entry_for(&tuple, BACKEND),
    )
    .unwrap();

    let t = switch
        .inject(InjectedPacket::new(packet(1), IN_PORT))
        .unwrap();
    assert_eq!(
        t.disposition,
        Disposition::Emitted { port: EXIT_PORT },
        "{:?}",
        t.events
    );
    // Every NF's table ran.
    for table in [
        "classifier__classify",
        "firewall__acl",
        "rate_limiter__limit_classes",
        "vgw__vni_map",
        "lb__lb_session",
        "syn_guard__guard_config",
        "mirror_tap__tap_select",
        "router__routes",
    ] {
        assert!(t.tables_applied().contains(&table), "{table} not applied");
    }
    // The tap produced a mirrored copy.
    assert_eq!(t.mirrored.len(), 1);
    assert_eq!(t.mirrored[0].0, MIRROR_PORT);
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Mirror { .. })));
    // The emitted packet is decapsulated with a valid IPv4 checksum.
    let out = &t.final_bytes;
    assert_eq!(u16::from_be_bytes([out[12], out[13]]), 0x0800);
    assert_eq!(
        dejavu_asic::interp::ones_complement_checksum(&out[14..34]),
        0
    );
}

#[test]
fn rate_limiter_trips_mid_chain() {
    let (mut switch, dep) = testbed();
    let tuple = dejavu_nf::load_balancer::five_tuple_of(&packet(1)).unwrap();
    dep.install(
        &mut switch,
        "lb",
        dejavu_nf::load_balancer::SESSION_TABLE,
        dejavu_nf::load_balancer::session_entry_for(&tuple, BACKEND),
    )
    .unwrap();
    // Budget is 4 packets; the fifth is dropped in the ingress pipe.
    for i in 0..6 {
        let t = switch
            .inject(InjectedPacket::new(packet(1), IN_PORT))
            .unwrap();
        let expect_drop = i >= 4;
        assert_eq!(
            t.disposition == Disposition::Dropped,
            expect_drop,
            "packet {i}: {:?}",
            t.disposition
        );
    }
    // The register kept the full count, visible to the control plane.
    let cell = switch
        .register_peek(
            dep.nf_location("rate_limiter").unwrap(),
            "rate_limiter__bucket",
            9,
        )
        .unwrap();
    assert_eq!(cell, 6);
    // Control-plane epoch reset restores service.
    switch
        .register_store(
            dep.nf_location("rate_limiter").unwrap(),
            "rate_limiter__bucket",
            9,
            0,
        )
        .unwrap();
    let t = switch
        .inject(InjectedPacket::new(packet(1), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
}

#[test]
fn syn_guard_on_second_chain() {
    let (mut switch, dep) = testbed();
    // Rearm with a tight threshold at higher priority (ternary rules
    // arbitrate by priority).
    dep.install(
        &mut switch,
        "syn_guard",
        syn_guard::CONFIG_TABLE,
        syn_guard::arm_entry_prio(VIP, 0xffff_ffff, 2, 50),
    )
    .unwrap();
    // path-2 packets are SYNs? PacketBuilder sets ACK; craft SYN packets.
    let mut syn = packet(2);
    syn[47] = 0x02;
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        let t = switch
            .inject(InjectedPacket::new(syn.clone(), IN_PORT))
            .unwrap();
        outcomes.push(t.disposition == Disposition::Dropped);
    }
    // Threshold 2 (the looser 100-threshold entry coexists; ternary priority
    // equal → the higher-count rule wins deterministically by install
    // order). At least the tail must be shielded.
    assert!(!outcomes[0], "first SYN passes");
    assert!(outcomes[3], "flood eventually shielded: {outcomes:?}");
}

#[test]
fn untapped_flows_are_not_mirrored() {
    let (mut switch, _dep) = testbed();
    let t = switch
        .inject(InjectedPacket::new(packet(2), IN_PORT))
        .unwrap();
    assert!(t.mirrored.is_empty());
}
