//! Tentpole acceptance for the closed-loop re-placement orchestrator:
//! a 3-switch cluster serving a learned-NAT chain undergoes a traffic
//! shift, the orchestrator re-places mid-flight, and not a single learned
//! flow is dropped or mistranslated — on both channel and TCP transports,
//! with every flight differentially checked against a never-migrated
//! oracle cluster. Plus: seeded-deterministic metaheuristics matching the
//! exhaustive oracle on small instances and scaling to a 100-chain/8-
//! switch synthetic fleet, and a TCP snapshot/restore round-trip while
//! async injections are in flight.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dejavu_asic::switch::Disposition;
use dejavu_asic::telemetry::MetricsRegistry;
use dejavu_asic::{InjectedPacket, MetricsSnapshot, TofinoProfile};
use dejavu_core::deploy::DeployOptions;
use dejavu_core::multiswitch::{ClusterProblem, ClusterWiring};
use dejavu_core::orchestrator::{
    AnnealingSearch, DetectorConfig, ExhaustiveSearch, FleetProblem, FleetSpec, Orchestrator,
    OrchestratorConfig, PlacementSearch, ShiftDecision, ShiftDetector, StepOutcome, SwarmSearch,
};
use dejavu_core::placement::PlacementProblem;
use dejavu_core::transport::{
    spawn_cluster, ChannelTransport, ClusterHandle, ClusterOptions, TcpTransport, Transport,
};
use dejavu_core::{ChainPolicy, ChainSet, NfModule};
use dejavu_integration::{marker_nf, EXIT_PORT, IN_PORT};
use dejavu_nf::nat::{
    dynamic_nat, nat_learn_policy, nat_out_entry, NAT_FLOW_STREAM, NAT_OUT_TABLE,
};
use dejavu_nf::{classifier, router};
use dejavu_ptf::MetricsExpectations;

// ---------------------------------------------------------------------
// The fleet instance: chain A = classifier → mark_a (marker), chain B =
// classifier → nat → router (learned NAT), three switches, one pipeline
// of 12 stages per member. The stage model makes {classifier, nat} too
// big for one pipelet, so the optimum placement genuinely depends on the
// traffic matrix: under A-heavy traffic the NAT spills to switch 1;
// under B-heavy traffic it folds onto switch 0 at the price of one
// recirculation, and mark_a spills instead.
// ---------------------------------------------------------------------

const SERVER: u32 = 0x0808_0808;
const PUBLIC_IP: u32 = 0xc633_6401;
const CLIENT: u32 = 0x0a01_0101;
const MARK_CLIENT: u32 = 0x0b01_0101;
const FLOWS: u16 = 12;
const BASE_PORT: u16 = 41000;

fn outbound(src_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(CLIENT)
        .dst_ip(SERVER)
        .src_port(src_port)
        .dst_port(80)
        .build()
}

fn inbound(dst_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(SERVER)
        .dst_ip(PUBLIC_IP)
        .src_port(80)
        .dst_port(dst_port)
        .build()
}

fn mark_packet(src_port: u16) -> Vec<u8> {
    dejavu_traffic::PacketBuilder::tcp()
        .src_ip(MARK_CLIENT)
        .dst_ip(SERVER)
        .src_port(src_port)
        .dst_port(80)
        .build()
}

fn ip_at(bytes: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Chain weights are the assumed traffic matrix: A-heavy before the
/// shift.
fn fleet_problem() -> FleetProblem {
    let chains = ChainSet::new(vec![
        ChainPolicy::new(1, "nat_path", vec!["classifier", "nat", "router"], 1.0),
        ChainPolicy::new(2, "mark_path", vec!["classifier", "mark_a"], 6.0),
    ])
    .unwrap();
    let stages: BTreeMap<String, u32> = [
        ("classifier".to_string(), 2),
        ("nat".to_string(), 6),
        ("router".to_string(), 2),
        ("mark_a".to_string(), 2),
    ]
    .into_iter()
    .collect();
    let mut template = PlacementProblem::new(chains, stages);
    template.pipelines = 1;
    FleetProblem::new(ClusterProblem::new(template, 3))
}

fn build_nfs() -> Vec<NfModule> {
    vec![
        classifier::classifier(),
        dynamic_nat(),
        router::router(),
        marker_nf("mark_a", 0),
    ]
}

fn exit_ports() -> BTreeMap<u16, dejavu_asic::PortId> {
    [(1u16, EXIT_PORT), (2u16, EXIT_PORT)].into_iter().collect()
}

fn deploy_options() -> DeployOptions {
    DeployOptions {
        entry_nf: Some("classifier".into()),
        ..Default::default()
    }
}

/// Arms a freshly spawned cluster: learn policy, classification for both
/// chains, NAT pool, route to exit.
fn arm_cluster(handle: &mut ClusterHandle) {
    handle
        .register_learn_policy("nat", NAT_FLOW_STREAM, nat_learn_policy())
        .unwrap();
    for (prefix, path) in [
        ((0x0a01_0000u32, 16u16), 1u16),
        ((0x0800_0000, 8), 1),
        ((0x0b00_0000, 8), 2),
    ] {
        handle
            .install(
                "classifier",
                classifier::CLASSIFY_TABLE,
                classifier::classify_entry(prefix, (0, 0), path, 100),
            )
            .unwrap();
    }
    handle
        .install(
            "nat",
            NAT_OUT_TABLE,
            nat_out_entry((0x0a01_0000, 16), PUBLIC_IP),
        )
        .unwrap();
    handle
        .install(
            "router",
            router::ROUTES_TABLE,
            router::route_entry((0, 0), EXIT_PORT, 0x0200_0000_0099, 0x0200_0000_0001),
        )
        .unwrap();
}

/// Every flight both clusters must agree on, keyed by a unique label.
#[derive(Default)]
struct FlightLog {
    sent: Vec<(String, Vec<u8>)>,
    got: BTreeMap<String, (Disposition, Vec<u8>)>,
}

impl FlightLog {
    fn inject(&mut self, handle: &mut ClusterHandle, label: &str, bytes: Vec<u8>) {
        self.sent.push((label.to_string(), bytes.clone()));
        let t = handle
            .inject(InjectedPacket::new(bytes, IN_PORT))
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        self.got
            .insert(label.to_string(), (t.disposition, t.final_bytes));
    }

    /// Replays the full recorded sequence on a never-migrated oracle and
    /// demands identical fates and bytes (latency and hop counts differ —
    /// the placements differ — but the traffic-visible outcome may not).
    fn check_against_oracle(&self, oracle: &mut ClusterHandle) {
        for (label, bytes) in &self.sent {
            let t = oracle
                .inject(InjectedPacket::new(bytes.clone(), IN_PORT))
                .unwrap_or_else(|e| panic!("oracle {label}: {e}"));
            let (disposition, final_bytes) =
                self.got.get(label).expect("every sent flight recorded");
            assert_eq!(&t.disposition, disposition, "{label}: fate diverged");
            assert_eq!(&t.final_bytes, final_bytes, "{label}: bytes diverged");
        }
    }
}

/// The headline: learn flows, shift traffic, let the orchestrator notice,
/// re-place mid-flight, and prove zero flow loss + oracle equivalence.
fn hitless_replacement(transport: &mut dyn Transport) {
    let nfs = build_nfs();
    let refs: Vec<&NfModule> = nfs.iter().collect();
    let problem = fleet_problem();
    let wiring = ClusterWiring::default();
    let deploy = deploy_options();
    let options = ClusterOptions {
        telemetry: true,
        ..Default::default()
    };

    // The pre-shift optimum, from the exhaustive oracle: NAT and router
    // spill to switch 1, the A-heavy chain stays whole on switch 0.
    let pre = ExhaustiveSearch::default().search(&problem).unwrap();
    assert_eq!(pre.placement.switch_of("classifier"), Some(0));
    assert_eq!(pre.placement.switch_of("mark_a"), Some(0));
    assert_eq!(pre.placement.switch_of("nat"), Some(1));
    assert_eq!(pre.placement.switch_of("router"), Some(1));

    let mut handle = spawn_cluster(
        &refs,
        problem.chains(),
        &pre.placement,
        &TofinoProfile::wedge_100b_32x(),
        exit_ports(),
        &wiring,
        &deploy,
        transport,
        &options,
    )
    .unwrap();
    arm_cluster(&mut handle);

    // The oracle: identical cluster, channel transport, never migrated.
    let mut oracle_transport = ChannelTransport::new();
    let mut oracle = spawn_cluster(
        &refs,
        problem.chains(),
        &pre.placement,
        &TofinoProfile::wedge_100b_32x(),
        exit_ports(),
        &wiring,
        &deploy,
        &mut oracle_transport,
        &ClusterOptions::default(),
    )
    .unwrap();
    arm_cluster(&mut oracle);

    let spec = FleetSpec {
        nfs: &refs,
        chains: problem.chains(),
        profile: &TofinoProfile::wedge_100b_32x(),
        exit_ports: exit_ports(),
        wiring: &wiring,
        deploy: &deploy,
    };
    let mut orch = Orchestrator::new(
        problem.clone(),
        pre.placement.clone(),
        Box::new(ExhaustiveSearch::default()),
        OrchestratorConfig {
            detector: DetectorConfig {
                drift_threshold: 0.25,
                hysteresis: 2,
                min_packets: 8,
                cooldown: 1,
            },
            min_gain: 0.5,
        },
    )
    .unwrap();

    let mut log = FlightLog::default();

    // Phase 1 — learn: every NAT flow crosses the cluster and is learned
    // from eagerly pushed digests.
    for f in 0..FLOWS {
        log.inject(&mut handle, &format!("learn/{f}"), outbound(BASE_PORT + f));
        let (d, bytes) = &log.got[&format!("learn/{f}")];
        assert_eq!(*d, Disposition::Emitted { port: EXIT_PORT });
        assert_eq!(ip_at(bytes, 26), PUBLIC_IP, "flow {f} not translated");
    }
    handle.process_digests().unwrap();
    oracle.process_digests().unwrap();

    // Window 1 — baseline scrape; the detector has no history yet.
    let scrape = handle.metrics_snapshot().unwrap();
    assert!(matches!(
        orch.step(&mut handle, &spec, &scrape.per_switch).unwrap(),
        StepOutcome::Warming
    ));

    // Phase 2 — the shift: traffic turns B-heavy (16 NAT packets to 2
    // mark packets per window; the placement assumed 1:6 the other way).
    let shifted_window = |log: &mut FlightLog, handle: &mut ClusterHandle, tag: &str| {
        for f in 0..FLOWS {
            log.inject(handle, &format!("{tag}/nat/{f}"), outbound(BASE_PORT + f));
        }
        for f in 0..4 {
            log.inject(handle, &format!("{tag}/nat-in/{f}"), inbound(BASE_PORT + f));
        }
        for f in 0..2 {
            log.inject(handle, &format!("{tag}/mark/{f}"), mark_packet(5000 + f));
        }
    };

    shifted_window(&mut log, &mut handle, "w2");
    let scrape = handle.metrics_snapshot().unwrap();
    let out = orch.step(&mut handle, &spec, &scrape.per_switch).unwrap();
    assert!(
        matches!(out, StepOutcome::Suppressed { drift } if drift > 0.25),
        "first drifted window must be suppressed by hysteresis, got {out:?}"
    );

    // Phase 3 — second drifted window, with a batch of flights still in
    // the air when the orchestrator decides to migrate: the pause/quiesce
    // barrier must land them safely before state moves.
    shifted_window(&mut log, &mut handle, "w3");
    // Scrape first (deterministic deltas — every sync flight has landed),
    // then put a batch in the air for the migration window to handle.
    let scrape = handle.metrics_snapshot().unwrap();
    let mut inflight = BTreeMap::new();
    for f in 0..8u16 {
        let bytes = outbound(BASE_PORT + (f % FLOWS));
        log.sent.push((format!("w3/air/{f}"), bytes.clone()));
        let trace = handle
            .inject_async(InjectedPacket::new(bytes, IN_PORT))
            .unwrap();
        inflight.insert(trace, format!("w3/air/{f}"));
    }
    let out = orch.step(&mut handle, &spec, &scrape.per_switch).unwrap();
    let StepOutcome::Migrated {
        drift,
        gain,
        outcome,
    } = out
    else {
        panic!("sustained shift must migrate, got {out:?}");
    };
    assert!(drift > 0.25, "migration drift {drift}");
    assert!(gain > 0.5, "migration gain {gain}");
    // NAT + router fold onto switch 0 (one recirculation beats paying the
    // hop for the now-dominant chain), mark_a spills to switch 1.
    assert_eq!(orch.current_placement().switch_of("nat"), Some(0));
    assert_eq!(orch.current_placement().switch_of("router"), Some(0));
    assert_eq!(orch.current_placement().switch_of("mark_a"), Some(1));
    assert_eq!(handle.switch_of("nat"), Some(0), "routing map not remapped");
    // The learned NAT entries, the NAT pool entry, and the route crossed
    // switches alive; nothing else moved.
    let moved: Vec<&str> = outcome.moves.iter().map(|m| m.nf.as_str()).collect();
    assert_eq!(moved, vec!["nat", "router", "mark_a"]);
    assert_eq!(
        outcome.flows_migrated,
        u64::from(FLOWS) + 2,
        "learned flows + NAT pool + route"
    );
    assert!(outcome.restored_entries >= outcome.flows_migrated + 3);
    assert!(outcome.duration_ns > 0);

    // The in-flight batch landed despite the migration window.
    for _ in 0..inflight.len() {
        let d = handle
            .recv_delivered(Duration::from_secs(30))
            .unwrap()
            .expect("in-flight delivery");
        let label = inflight.remove(&d.trace).expect("known trace");
        let t = d.result.unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
        log.got.insert(label, (t.disposition, t.final_bytes));
    }
    assert!(inflight.is_empty());

    // Phase 4 — zero flow loss: every flow learned before the migration
    // still translates identically on the re-placed cluster.
    for f in 0..FLOWS {
        log.inject(&mut handle, &format!("post/in/{f}"), inbound(BASE_PORT + f));
        let (d, bytes) = &log.got[&format!("post/in/{f}")];
        assert_eq!(*d, Disposition::Emitted { port: EXIT_PORT });
        assert_eq!(ip_at(bytes, 30), CLIENT, "flow {f} lost in the migration");
    }
    for f in 0..FLOWS {
        log.inject(
            &mut handle,
            &format!("post/out/{f}"),
            outbound(BASE_PORT + f),
        );
        let (_, bytes) = &log.got[&format!("post/out/{f}")];
        assert_eq!(ip_at(bytes, 26), PUBLIC_IP);
    }
    for f in 0..2 {
        log.inject(
            &mut handle,
            &format!("post/mark/{f}"),
            mark_packet(5000 + f),
        );
    }

    // Differential check: the never-migrated oracle agrees on the fate
    // and bytes of every single flight, pre- and post-migration.
    log.check_against_oracle(&mut oracle);

    // Satellite: the orchestrator_* metrics tell the same story, checked
    // through the PTF expectation machinery.
    let metrics = orch.metrics();
    let report = MetricsExpectations::new()
        .replans_triggered(1)
        .replans_skipped_hysteresis(1)
        .flows_migrated(u64::from(FLOWS) + 2)
        .migrations_timed(1)
        .evaluate(&metrics);
    for r in &report {
        assert!(r.failure.is_none(), "{}: {:?}", r.name, r.failure);
    }

    handle.shutdown().unwrap();
    oracle.shutdown().unwrap();
}

#[test]
fn hitless_replacement_over_channel_transport() {
    let mut transport = ChannelTransport::new();
    hitless_replacement(&mut transport);
}

#[test]
fn hitless_replacement_over_tcp_transport() {
    let mut transport = TcpTransport::new();
    hitless_replacement(&mut transport);
}

// ---------------------------------------------------------------------
// Satellite: snapshot/restore round-trip over TCP while async injections
// are in flight (previously only exercised lockstep/channel-side).
// ---------------------------------------------------------------------

#[test]
fn tcp_snapshot_restore_round_trip_with_flights_in_the_air() {
    let nfs = build_nfs();
    let refs: Vec<&NfModule> = nfs.iter().collect();
    let problem = fleet_problem();
    let pre = ExhaustiveSearch::default().search(&problem).unwrap();
    let mut transport = TcpTransport::new();
    let mut handle = spawn_cluster(
        &refs,
        problem.chains(),
        &pre.placement,
        &TofinoProfile::wedge_100b_32x(),
        exit_ports(),
        &ClusterWiring::default(),
        &deploy_options(),
        &mut transport,
        &ClusterOptions::default(),
    )
    .unwrap();
    arm_cluster(&mut handle);

    for f in 0..FLOWS {
        let t = handle
            .inject(InjectedPacket::new(outbound(BASE_PORT + f), IN_PORT))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    }
    handle.process_digests().unwrap();

    // Launch a storm and snapshot while it is still flying: the snapshot
    // barrier serializes against the data path per member, so the capture
    // is consistent even though deliveries are pending.
    let mut traces = std::collections::BTreeSet::new();
    for f in 0..FLOWS {
        traces.insert(
            handle
                .inject_async(InjectedPacket::new(inbound(BASE_PORT + f), IN_PORT))
                .unwrap(),
        );
    }
    let snapshots = handle.snapshot_state().unwrap();
    assert!(!snapshots.is_empty());
    let learned: usize = snapshots
        .iter()
        .flat_map(|(_, _, s)| s.tables.iter())
        .filter(|t| t.name == "nat__nat_in")
        .map(|t| t.entries.len())
        .sum();
    assert_eq!(
        learned,
        usize::from(FLOWS),
        "snapshot saw every learned flow"
    );

    // Restore each capture back onto its own member — idempotent, and
    // legal mid-traffic: pre-existing duplicates count as restored.
    for (switch, pipelet, snap) in &snapshots {
        let restored = handle.restore_state(*switch, *pipelet, snap).unwrap();
        let expected: usize = snap.tables.iter().map(|t| t.entries.len()).sum();
        assert_eq!(restored, expected, "restore onto switch {switch} {pipelet}");
    }

    // Every flight that was in the air lands translated.
    for _ in 0..FLOWS {
        let d = handle
            .recv_delivered(Duration::from_secs(30))
            .unwrap()
            .expect("storm delivery");
        assert!(traces.remove(&d.trace));
        let t = d.result.expect("flight");
        assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
        assert_eq!(ip_at(&t.final_bytes, 30), CLIENT);
    }
    assert!(traces.is_empty());
    handle.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Search strategies: seeded determinism, oracle agreement on the small
// instance, bounded-time scaling on the synthetic fleet.
// ---------------------------------------------------------------------

#[test]
fn metaheuristics_match_exhaustive_on_the_small_instance() {
    let problem = fleet_problem();
    let exact = ExhaustiveSearch::default().search(&problem).unwrap();
    let anneal = AnnealingSearch::new(7, 4000).search(&problem).unwrap();
    let swarm = SwarmSearch::new(7, 24, 80).search(&problem).unwrap();
    assert!(
        anneal.score.weighted <= exact.score.weighted + 1e-9,
        "annealing {} vs exact {}",
        anneal.score.weighted,
        exact.score.weighted
    );
    assert!(
        swarm.score.weighted <= exact.score.weighted + 1e-9,
        "swarm {} vs exact {}",
        swarm.score.weighted,
        exact.score.weighted
    );
    // Exhaustive can't be beaten, so all three agree on the optimum.
    assert!((anneal.score.weighted - exact.score.weighted).abs() < 1e-9);
    assert!((swarm.score.weighted - exact.score.weighted).abs() < 1e-9);
}

#[test]
fn searches_are_seeded_deterministic() {
    let problem = FleetProblem::synthetic(12, 3, 99);
    for strategy in [
        Box::new(AnnealingSearch::new(42, 600)) as Box<dyn PlacementSearch>,
        Box::new(SwarmSearch::new(42, 10, 30)),
    ] {
        let a = strategy.search(&problem).unwrap();
        let b = strategy.search(&problem).unwrap();
        assert_eq!(
            a.placement,
            b.placement,
            "{} not deterministic",
            strategy.name()
        );
        assert_eq!(a.score.weighted, b.score.weighted);
        assert_eq!(a.evaluated, b.evaluated);
    }
    // Different seeds are allowed to explore differently (they usually
    // do); determinism is per-seed, not global.
    let c = AnnealingSearch::new(43, 600).search(&problem).unwrap();
    assert!(problem.feasible(&c.placement));
}

#[test]
fn metaheuristics_scale_to_the_synthetic_fleet_in_bounded_time() {
    let problem = FleetProblem::synthetic(100, 8, 7);
    // The exact oracle must refuse an instance this size, loudly.
    assert!(matches!(
        ExhaustiveSearch::default().search(&problem),
        Err(dejavu_core::placement::PlacementError::SearchTooLarge { .. })
    ));
    let started = Instant::now();
    let anneal = AnnealingSearch::new(3, 800).search(&problem).unwrap();
    let swarm = SwarmSearch::new(3, 12, 40).search(&problem).unwrap();
    let elapsed = started.elapsed();
    assert!(problem.feasible(&anneal.placement));
    assert!(problem.feasible(&swarm.placement));
    // Both must do no worse than the greedy seed they started from.
    let seed = problem.seed_placement().unwrap();
    let seed_score = problem.score(&seed).unwrap();
    assert!(anneal.score.weighted <= seed_score.weighted + 1e-9);
    assert!(swarm.score.weighted <= seed_score.weighted + 1e-9);
    assert!(
        elapsed < Duration::from_secs(120),
        "fleet search took {elapsed:?}"
    );
}

// ---------------------------------------------------------------------
// Detector semantics: hysteresis, cooldown, rebase.
// ---------------------------------------------------------------------

fn scrape_with(per_switch: &[u64]) -> Vec<MetricsSnapshot> {
    per_switch
        .iter()
        .map(|n| {
            let mut reg = MetricsRegistry::enabled();
            let id = reg.counter("packets_injected");
            reg.add(id, *n);
            MetricsSnapshot::capture(&reg)
        })
        .collect()
}

#[test]
fn detector_applies_hysteresis_and_cooldown() {
    let config = DetectorConfig {
        drift_threshold: 0.25,
        hysteresis: 2,
        min_packets: 8,
        cooldown: 1,
    };
    // Expected: 75% of traffic stops at switch 0, 25% reaches switch 1.
    let mut det = ShiftDetector::new(config, vec![0.75, 0.25]);
    assert_eq!(det.observe(&scrape_with(&[0, 0])), ShiftDecision::Warming);
    // Matching window: quiet.
    let d = det.observe(&scrape_with(&[30, 10]));
    assert!(matches!(d, ShiftDecision::Quiet { .. }), "{d:?}");
    // Tiny window: below min_packets, judged by nobody.
    assert_eq!(det.observe(&scrape_with(&[32, 11])), ShiftDecision::Warming);
    // Two drifted windows: the first is suppressed, the second fires.
    let d = det.observe(&scrape_with(&[82, 61]));
    assert!(matches!(d, ShiftDecision::Suppressed { .. }), "{d:?}");
    let d = det.observe(&scrape_with(&[132, 111]));
    assert!(
        matches!(d, ShiftDecision::Replan { drift } if drift > 0.25),
        "{d:?}"
    );
    // After a replan the caller rebases; the cooldown eats the next
    // drifted window even though the streak would have fired.
    det.rebase(vec![0.75, 0.25]);
    let d = det.observe(&scrape_with(&[182, 161]));
    assert!(matches!(d, ShiftDecision::Suppressed { .. }), "{d:?}");
}
