//! §7 "service upgrade and expansion": hot-swap one NF's implementation
//! while the rest of the switch — including stateful registers on other
//! pipelets — keeps running.

use dejavu_asic::switch::Disposition;
use dejavu_asic::InjectedPacket;
use dejavu_core::deploy::UpgradeError;
use dejavu_core::sfc::{sfc_field, sfc_header_type};
use dejavu_core::NfModule;
use dejavu_integration::*;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::{fref, well_known, Expr};

/// firewall v2: same table shape, but the default flips to deny-all —
/// an emergency lockdown push.
fn firewall_v2() -> NfModule {
    let program = ProgramBuilder::new("firewall")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .header(well_known::tcp())
        .header(well_known::udp())
        .header(sfc_header_type())
        .parser(well_known::eth_ip_l4_parser())
        .action(ActionBuilder::new("permit").build())
        .action(
            ActionBuilder::new("deny")
                .set(sfc_field("drop_flag"), Expr::val(1, 1))
                .build(),
        )
        .table(
            TableBuilder::new(dejavu_nf::firewall::ACL_TABLE)
                .key_lpm(fref("ipv4", "src_addr"))
                .key_lpm(fref("ipv4", "dst_addr"))
                .key_ternary(fref("ipv4", "protocol"))
                .key_range(fref("tcp", "dst_port"))
                .action("permit")
                .default_action("deny") // v2: default-deny posture
                .size(8192)
                .build(),
        )
        .control(
            ControlBuilder::new("fw_ctrl")
                .apply(dejavu_nf::firewall::ACL_TABLE)
                .build(),
        )
        .entry("fw_ctrl")
        .build()
        .unwrap();
    NfModule::new(program).unwrap()
}

/// An NF whose parser adds a new header type — must be refused in place.
fn firewall_new_parser() -> NfModule {
    let program = ProgramBuilder::new("firewall")
        .header(well_known::ethernet())
        .header(well_known::arp())
        .header(sfc_header_type())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("arp", "arp", 14)
                .select("eth", "ether_type", 16, vec![(0x0806, "arp")])
                .accept("arp")
                .start("eth"),
        )
        .action(ActionBuilder::new("permit").build())
        .control(ControlBuilder::new("fw_ctrl").invoke("permit").build())
        .entry("fw_ctrl")
        .build()
        .unwrap();
    NfModule::new(program).unwrap()
}

const VIP: u32 = 0xc633_6450;

#[test]
fn hot_swap_firewall_to_default_deny() {
    let (mut switch, mut dep) = fig9_testbed();
    // Before the upgrade: path-3 traffic flows (v1 default-permit) — use
    // path 3 so the LB is not involved.
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    // Path-1 traffic flows through the firewall (also permit).
    // (Path 1 punts at the LB, but it passes the firewall — we check the
    // post-upgrade contrast on the same packet below.)

    // Hot-swap firewall → v2 (default deny).
    let suite = dejavu_nf::edge_cloud_suite();
    let refs: Vec<&NfModule> = suite.iter().collect();
    let v2 = firewall_v2();
    let outcome = dep.upgrade_nf(&mut switch, &v2, &refs).unwrap();
    // The pipelet also hosts the classifier — its rules are migrated.
    assert!(outcome.affected_nfs.contains(&"classifier".to_string()));
    assert!(outcome.affected_nfs.contains(&"firewall".to_string()));
    // v2 keeps every table shape, so migration carries all state across.
    assert!(outcome.migration.is_clean(), "{:?}", outcome.migration);
    install_baseline_rules(&mut switch, &dep);

    // Path 1 (which traverses the firewall) is now denied by default.
    let t = switch
        .inject(InjectedPacket::new(chain_packet(1, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Dropped, "v2 default-deny");
    // Path 3 (classifier → router) does not traverse the firewall and
    // still flows — the rest of the deployment kept working.
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
}

#[test]
fn parser_changing_upgrade_is_refused() {
    let (mut switch, mut dep) = fig9_testbed();
    let suite = dejavu_nf::edge_cloud_suite();
    let refs: Vec<&NfModule> = suite.iter().collect();
    let bad = firewall_new_parser();
    let err = dep.upgrade_nf(&mut switch, &bad, &refs).unwrap_err();
    assert!(matches!(err, UpgradeError::ParserChanged), "got {err}");
    // The deployment still works untouched.
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
}

#[test]
fn unknown_nf_upgrade_is_refused() {
    let (mut switch, mut dep) = fig9_testbed();
    let stranger = dejavu_nf::null_nf("stranger");
    let suite = dejavu_nf::edge_cloud_suite();
    let refs: Vec<&NfModule> = suite.iter().collect();
    let err = dep.upgrade_nf(&mut switch, &stranger, &refs).unwrap_err();
    assert!(matches!(err, UpgradeError::UnknownNf(_)));
}
