//! `dejavu-analyze` integration: seeded-bug corpus and soundness.
//!
//! Two halves:
//!
//! * **Seeded corpus** — one fixture per DJV2xx/3xx code, asserting the
//!   rule fires on a program planted with exactly that defect and names
//!   the right entity with a usable witness. This pins the registry:
//!   a refactor that stops a rule from firing fails here, not in the
//!   field.
//! * **Soundness** — the abstract interpreter may only call a branch arm
//!   infeasible if no packet can reach it. For generated programs whose
//!   branch arms each record a distinct bit in an observable field, every
//!   arm that live traffic actually exercises (on *both* execution
//!   engines) must not have been reported as a DJV202 finding. False
//!   "unreachable" reports on live paths are the one failure mode a
//!   static gate cannot afford.

use proptest::prelude::*;

use dejavu_asic::{ExecMode, InjectedPacket, PipeletId, Switch, TofinoProfile};
use dejavu_core::analyze::{analyze_pipelets, check_learn_contracts, LearnContract};
use dejavu_p4ir::analyze::{check, check_with_config, AnalysisCode, AnalysisConfig};
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::KeyMatch;
use dejavu_p4ir::{fref, well_known, BoolExpr, CmpOp, Expr, FieldRef, Program, Stmt, Value};

// ---------------------------------------------------------------------------
// Seeded-bug corpus: each DJV2xx/3xx code fires on its planted defect.
// ---------------------------------------------------------------------------

fn eth_ip_base(name: &str) -> ProgramBuilder {
    ProgramBuilder::new(name)
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
}

#[test]
fn djv201_truncation_fires() {
    let p = eth_ip_base("t201")
        .action(
            ActionBuilder::new("squash")
                .set(fref("ipv4", "ttl"), Expr::field("ipv4", "src_addr"))
                .build(),
        )
        .control(ControlBuilder::new("ingress").invoke("squash").build())
        .entry("ingress")
        .build()
        .unwrap();
    let report = check(&p);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == AnalysisCode::ValueTruncation)
        .expect("DJV201 fires");
    assert_eq!(f.entity, "squash");
    assert!(f.message.contains("32-bit"), "message: {}", f.message);
    assert!(f.message.contains("8 bits"), "message: {}", f.message);
}

#[test]
fn djv202_infeasible_branch_fires() {
    // Outer guard pins ttl < 4; the nested arm demands ttl == 9.
    let p = eth_ip_base("t202")
        .action(ActionBuilder::new("nop").build())
        .control(
            ControlBuilder::new("ingress")
                .stmt(Stmt::If {
                    cond: BoolExpr::Cmp(Expr::field("ipv4", "ttl"), CmpOp::Lt, Expr::val(4, 8)),
                    then_branch: vec![Stmt::If {
                        cond: BoolExpr::Cmp(Expr::field("ipv4", "ttl"), CmpOp::Eq, Expr::val(9, 8)),
                        then_branch: vec![Stmt::Do("nop".into())],
                        else_branch: vec![],
                    }],
                    else_branch: vec![],
                })
                .build(),
        )
        .entry("ingress")
        .build()
        .unwrap();
    let report = check(&p);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == AnalysisCode::InfeasiblePath)
        .expect("DJV202 fires");
    assert_eq!(f.entity, "ingress");
    assert!(f.message.contains("always false"), "message: {}", f.message);
    assert!(!f.witness.is_empty(), "witness records the path");
}

#[test]
fn djv203_unmatchable_entry_fires() {
    // The table only runs under ether_type == 0x800, yet the installed
    // entry matches 0x86DD.
    let p = eth_ip_base("t203")
        .action(ActionBuilder::new("nop").build())
        .table(
            TableBuilder::new("routes")
                .key_exact(fref("ethernet", "ether_type"))
                .action("nop")
                .default_action("nop")
                .build(),
        )
        .control(
            ControlBuilder::new("ingress")
                .stmt(Stmt::If {
                    cond: BoolExpr::Cmp(
                        Expr::field("ethernet", "ether_type"),
                        CmpOp::Eq,
                        Expr::val(0x800, 16),
                    ),
                    then_branch: vec![Stmt::Apply("routes".into())],
                    else_branch: vec![],
                })
                .build(),
        )
        .entry("ingress")
        .build()
        .unwrap();
    let cfg = AnalysisConfig::new().with_entries(
        "routes",
        vec![vec![KeyMatch::Exact(Value::new(0x86DD, 16))]],
    );
    let report = check_with_config(&p, &cfg);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == AnalysisCode::UnmatchableEntry)
        .expect("DJV203 fires");
    assert_eq!(f.entity, "routes");
    assert!(f.message.contains("entry 0"), "message: {}", f.message);
    assert!(report.has_errors(), "DJV203 is error-level by default");
}

#[test]
fn djv204_unbounded_recirc_fires() {
    // The resubmit flag is raised unconditionally and nothing ever
    // changes any field a guard could read.
    let p = eth_ip_base("t204")
        .action(
            ActionBuilder::new("again")
                .set(FieldRef::meta("resubmit_flag"), Expr::val(1, 1))
                .build(),
        )
        .control(ControlBuilder::new("ingress").invoke("again").build())
        .entry("ingress")
        .build()
        .unwrap();
    let report = check(&p);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == AnalysisCode::UnboundedRecirc)
        .expect("DJV204 fires");
    assert_eq!(f.entity, "again");
    assert!(
        f.message.contains("no guarding condition"),
        "message: {}",
        f.message
    );
}

#[test]
fn djv301_register_hazard_fires() {
    let mut writer = Program::new("w");
    writer.registers.insert(
        "shared".into(),
        dejavu_p4ir::table::RegisterDef {
            name: "shared".into(),
            width_bits: 32,
            size: 8,
        },
    );
    writer.actions.insert(
        "bump".into(),
        dejavu_p4ir::ActionDef::simple(
            "bump",
            vec![dejavu_p4ir::PrimitiveOp::RegisterWrite {
                register: "shared".into(),
                index: Expr::val(0, 8),
                value: Expr::val(1, 32),
            }],
        ),
    );
    let mut reader = Program::new("r");
    reader.actions.insert(
        "peek".into(),
        dejavu_p4ir::ActionDef::simple(
            "peek",
            vec![dejavu_p4ir::PrimitiveOp::RegisterRead {
                dst: FieldRef::meta("m0"),
                register: "shared".into(),
                index: Expr::val(0, 8),
            }],
        ),
    );
    let report = analyze_pipelets(&[("ingress0".into(), &writer), ("egress1".into(), &reader)]);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == AnalysisCode::RegisterHazard)
        .expect("DJV301 fires");
    assert_eq!(f.entity, "shared");
    assert_eq!(f.witness, vec!["egress1: read", "ingress0: write"]);
}

#[test]
fn djv302_learn_contract_mismatch_fires() {
    // The digest carries (src_addr:32, port:16); the contract installs the
    // 16-bit field into the 32-bit key.
    let p = eth_ip_base("t302")
        .header(well_known::tcp())
        .action(
            ActionBuilder::new("learn")
                .digest(
                    "flow",
                    vec![
                        Expr::field("ipv4", "src_addr"),
                        Expr::field("tcp", "src_port"),
                    ],
                )
                .build(),
        )
        .action(ActionBuilder::new("hit").build())
        .table(
            TableBuilder::new("sessions")
                .key_exact(fref("ipv4", "src_addr"))
                .action("hit")
                .default_action("hit")
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("sessions").build())
        .entry("ingress")
        .build()
        .unwrap();
    let contract = LearnContract {
        nf: "t302".into(),
        stream: "flow".into(),
        target_table: "sessions".into(),
        target_action: "hit".into(),
        key_map: vec![1], // 16-bit digest field into the 32-bit key
        arg_map: vec![],
    };
    let aged = ["sessions".to_string()].into();
    let report = check_learn_contracts(&p, &[contract], &aged);
    let f = report
        .findings
        .iter()
        .find(|f| f.code == AnalysisCode::LearnContractMismatch)
        .expect("DJV302 fires");
    assert_eq!(f.entity, "t302/flow");
    assert!(
        f.message.contains("16 bits") && f.message.contains("32 bits"),
        "message: {}",
        f.message
    );
    assert!(
        f.witness[0].contains("sessions.hit"),
        "witness: {:?}",
        f.witness
    );
}

#[test]
fn djv303_learn_without_aging_fires() {
    // A perfectly conforming contract, but nobody enabled idle timeouts on
    // the learned table.
    let nf = dejavu_nf::nat::dynamic_nat();
    let contract = dejavu_nf::nat::nat_learn_contract();
    let report = check_learn_contracts(nf.program(), &[contract], &Default::default());
    let codes: Vec<_> = report.findings.iter().map(|f| f.code).collect();
    assert_eq!(codes, vec![AnalysisCode::LearnWithoutAging]);
    let f = &report.findings[0];
    assert_eq!(f.entity, "nat/nat_flow");
    assert!(
        f.witness[0].contains("set_idle_timeout"),
        "witness points at the fix: {:?}",
        f.witness
    );
}

// ---------------------------------------------------------------------------
// Soundness: no live branch arm is ever reported infeasible.
// ---------------------------------------------------------------------------

/// One comparison `ipv4.<field> <op> <const>` over a small domain, so
/// nested conditions contradict (and DJV202 fires) reasonably often.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cond {
    field: usize, // index into COND_FIELDS
    op: CmpOp,
    k: u8,
}

const COND_FIELDS: [(&str, u16); 3] = [("ttl", 8), ("protocol", 8), ("dscp", 6)];

impl Cond {
    fn bool_expr(&self) -> BoolExpr {
        let (name, bits) = COND_FIELDS[self.field];
        BoolExpr::Cmp(
            Expr::field("ipv4", name),
            self.op,
            Expr::val(u128::from(self.k), bits),
        )
    }

    /// The exact rendering `dejavu-analyze` uses in DJV202 messages.
    fn desc(&self) -> String {
        let (name, bits) = COND_FIELDS[self.field];
        let sym = match self.op {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        format!("ipv4.{name} {sym} {}", Value::new(u128::from(self.k), bits))
    }
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (
        0usize..COND_FIELDS.len(),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
        ],
        0u8..6,
    )
        .prop_map(|(field, op, k)| Cond { field, op, k })
}

/// Builds a full binary decision tree of depth 3 (7 nodes, 14 arms). Arm
/// `2*i` (then) and `2*i + 1` (else) of node `i` each OR a distinct bit
/// into `meta.m0`; a trailing action exposes the bitmap in
/// `ipv4.src_addr` and forwards the packet, so the wire bytes of every
/// emitted packet record exactly which arms ran.
fn tree_program(conds: &[Cond; 7]) -> Program {
    let mut b = eth_ip_base("sound").meta_field("m0", 16);
    for arm in 0..14u8 {
        b = b.action(
            ActionBuilder::new(format!("mark{arm}"))
                .set(
                    FieldRef::meta("m0"),
                    Expr::Or(
                        Box::new(Expr::meta("m0")),
                        Box::new(Expr::val(1u128 << arm, 16)),
                    ),
                )
                .build(),
        );
    }
    b = b.action(
        ActionBuilder::new("expose")
            .set(fref("ipv4", "src_addr"), Expr::meta("m0"))
            .set(FieldRef::meta("egress_spec"), Expr::val(1, 16))
            .build(),
    );

    // Nodes laid out heap-style: node i has children 2i+1 / 2i+2; leaves
    // (4..7) have no children.
    fn node(i: usize, conds: &[Cond; 7]) -> Stmt {
        let mut then_branch = vec![Stmt::Do(format!("mark{}", 2 * i))];
        let mut else_branch = vec![Stmt::Do(format!("mark{}", 2 * i + 1))];
        if 2 * i + 2 < 7 {
            then_branch.push(node(2 * i + 1, conds));
            else_branch.push(node(2 * i + 2, conds));
        }
        Stmt::If {
            cond: conds[i].bool_expr(),
            then_branch,
            else_branch,
        }
    }

    b.control(
        ControlBuilder::new("ingress")
            .stmt(node(0, conds))
            .invoke("expose")
            .build(),
    )
    .entry("ingress")
    .build()
    .expect("decision tree validates")
}

/// Arms reported infeasible by DJV202 — only for conditions whose
/// rendering is unique in the tree (a duplicated condition string cannot
/// be attributed to one node).
fn flagged_arms(program: &Program, conds: &[Cond; 7]) -> Vec<u8> {
    let report = check(program);
    let mut flagged = Vec::new();
    for (i, c) in conds.iter().enumerate() {
        if conds.iter().filter(|o| o.desc() == c.desc()).count() != 1 {
            continue;
        }
        let then_dead = format!("branch condition `{}` is always false", c.desc());
        let else_dead = format!(
            "else-branch of always-true condition `{}` never runs",
            c.desc()
        );
        for f in &report.findings {
            if f.code != AnalysisCode::InfeasiblePath {
                continue;
            }
            if f.message == then_dead {
                flagged.push(2 * i as u8);
            } else if f.message == else_dead {
                flagged.push(2 * i as u8 + 1);
            }
        }
    }
    flagged
}

/// Guards the proptest against vacuity: a planted contradiction must
/// produce a flagged arm for the harness to check against live traffic.
#[test]
fn harness_detects_planted_contradiction() {
    let mut conds = [
        Cond {
            field: 0,
            op: CmpOp::Lt,
            k: 2,
        }, // node 0: ttl < 2
        Cond {
            field: 0,
            op: CmpOp::Ge,
            k: 2,
        }, // node 1 (then-child): ttl >= 2
        Cond {
            field: 1,
            op: CmpOp::Eq,
            k: 0,
        },
        Cond {
            field: 2,
            op: CmpOp::Lt,
            k: 1,
        },
        Cond {
            field: 2,
            op: CmpOp::Gt,
            k: 1,
        },
        Cond {
            field: 1,
            op: CmpOp::Ne,
            k: 3,
        },
        Cond {
            field: 0,
            op: CmpOp::Le,
            k: 5,
        },
    ];
    let program = tree_program(&conds);
    // Node 1 sits under "ttl < 2", so its own "ttl >= 2" is always false:
    // its then-arm (bit 2) is dead.
    assert!(
        flagged_arms(&program, &conds).contains(&2),
        "planted contradiction must be flagged"
    );

    // And a duplicated condition string is never attributed to any node:
    // node 1 repeating node 0's condition makes node 1's else-arm (bit 3)
    // dead, but the shared rendering is ambiguous, so it stays unflagged.
    conds[1] = conds[0];
    let program = tree_program(&conds);
    let flagged = flagged_arms(&program, &conds);
    assert!(!flagged.contains(&2) && !flagged.contains(&3));
}

fn packet(ttl: u8, protocol: u8, dscp: u8) -> Vec<u8> {
    let mut p = dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0001)
        .dst_ip(0x0a00_0002)
        .src_port(1000)
        .dst_port(53)
        .ttl(ttl)
        .build();
    p[15] = dscp << 2; // ToS byte: DSCP in the top six bits
    p[23] = protocol;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn no_live_arm_reported_infeasible(
        conds_vec in proptest::collection::vec(arb_cond(), 7),
        packets in proptest::collection::vec((0u8..8, 0u8..8, 0u8..8), 1..24),
    ) {
        let conds: [Cond; 7] = conds_vec.try_into().unwrap();
        let program = tree_program(&conds);
        let flagged = flagged_arms(&program, &conds);

        for mode in [ExecMode::Reference, ExecMode::Compiled] {
            let mut sw = Switch::new(TofinoProfile::wedge_100b_32x());
            sw.set_exec_mode(mode);
            sw.load_program(PipeletId::ingress(0), program.clone()).unwrap();
            for &(ttl, protocol, dscp) in &packets {
                let t = sw.inject(InjectedPacket::new(packet(ttl, protocol, dscp), 0)).unwrap();
                // The arm bitmap the data plane recorded, read back from
                // the rewritten source address.
                let b = &t.final_bytes[26..30];
                let executed = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
                for &arm in &flagged {
                    prop_assert!(
                        executed & (1 << arm) == 0,
                        "{mode:?}: arm {arm} executed (bitmap {executed:#x}) for packet \
                         (ttl={ttl}, proto={protocol}, dscp={dscp}) despite being \
                         reported infeasible; conds: {conds:?}",
                    );
                }
            }
        }
    }
}
