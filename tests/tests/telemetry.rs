//! Telemetry invariants across the replay and export layers.
//!
//! The heart of the sharded-collection design is an algebra: per-worker
//! [`MetricsSnapshot`] deltas merged together must equal what one thread
//! would have recorded, for *any* workload split. These tests drive that
//! property with generated workloads, and pin down determinism and the
//! exporter round trip at the integration level.

use proptest::prelude::*;

use dejavu_core::prelude::*;
use dejavu_p4ir::builder::*;
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::{fref, well_known, Expr, FieldRef, Value};
use dejavu_traffic::flows::FlowGen;
use dejavu_traffic::replay::replay_flows;

/// Forward-by-ipv4-dst program: 10.0.0.0/8 to port 2, rest drops.
fn router() -> dejavu_p4ir::Program {
    ProgramBuilder::new("router")
        .header(well_known::ethernet())
        .header(well_known::ipv4())
        .parser(
            ParserBuilder::new()
                .node("eth", "ethernet", 0)
                .node("ip", "ipv4", 14)
                .select("eth", "ether_type", 16, vec![(0x0800, "ip")])
                .accept("ip")
                .start("eth"),
        )
        .action(
            ActionBuilder::new("fwd")
                .param("port", 16)
                .set(FieldRef::meta("egress_spec"), Expr::Param("port".into()))
                .build(),
        )
        .action(ActionBuilder::new("deny").drop_packet().build())
        .table(
            TableBuilder::new("route")
                .key_lpm(fref("ipv4", "dst_addr"))
                .action("fwd")
                .default_action("deny")
                .build(),
        )
        .control(ControlBuilder::new("ingress").apply("route").build())
        .entry("ingress")
        .build()
        .unwrap()
}

fn testbed(telemetry: bool) -> Switch {
    let mut sw = Switch::with_options(
        TofinoProfile::wedge_100b_32x(),
        SwitchOptions::new()
            .trace_level(TraceLevel::Off)
            .telemetry(telemetry),
    );
    sw.load_program(PipeletId::ingress(0), router()).unwrap();
    // Half the 10.x space forwards, so generated flows both hit and miss.
    sw.install_entry(
        PipeletId::ingress(0),
        "route",
        TableEntry {
            matches: vec![KeyMatch::Lpm(Value::new(0x0a01_0000, 32), 16)],
            action: "fwd".into(),
            action_args: vec![Value::new(2, 16)],
            priority: 0,
        },
    )
    .unwrap();
    sw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lossless sharding: for any flow count, packets-per-flow, payload
    /// size, and worker count, the merged per-shard snapshots equal a
    /// single-threaded run of the same workload — counter for counter,
    /// histogram bucket for histogram bucket.
    #[test]
    fn sharded_snapshot_merge_equals_single_thread(
        seed in 0u64..1000,
        n_flows in 1usize..24,
        per_flow in 1usize..6,
        payload in 0usize..64,
        workers in 2usize..8,
    ) {
        let sw = testbed(true);
        // Flows split between the forwarding 10.1/16 and the denied 10.2/16.
        let flows = FlowGen::new(seed, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(n_flows);
        let single = replay_flows(&sw, &flows, 0, per_flow, payload, 1);
        let sharded = replay_flows(&sw, &flows, 0, per_flow, payload, workers);

        let injected = (n_flows * per_flow) as u64;
        prop_assert_eq!(single.metrics.counter("packets_injected"), injected);
        prop_assert_eq!(
            single.metrics.counter("packets_emitted") + single.metrics.counter("packets_dropped"),
            injected
        );
        prop_assert_eq!(&single.metrics, &sharded.metrics);
        // The batch stats agree with the telemetry view of the same run.
        prop_assert_eq!(sharded.stats.injected as u64, sharded.metrics.counter("packets_injected"));
        prop_assert_eq!(sharded.stats.emitted as u64, sharded.metrics.counter("packets_emitted"));
    }

    /// Replay is deterministic: the same workload replayed twice produces
    /// identical snapshots (atomics introduce no drift).
    #[test]
    fn replay_telemetry_is_deterministic(
        seed in 0u64..1000,
        n_flows in 1usize..12,
        workers in 1usize..5,
    ) {
        let sw = testbed(true);
        let flows = FlowGen::new(seed, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(n_flows);
        let a = replay_flows(&sw, &flows, 0, 2, 8, workers);
        let b = replay_flows(&sw, &flows, 0, 2, 8, workers);
        prop_assert_eq!(a.metrics, b.metrics);
    }
}

/// The exporters agree with each other: a snapshot serialized to JSON and
/// parsed back is the same snapshot, and every series named in the
/// Prometheus text dump exists in the snapshot.
#[test]
fn export_round_trip_and_prometheus_cover_the_same_series() {
    let sw = testbed(true);
    let flows = FlowGen::new(3, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(8);
    let report = replay_flows(&sw, &flows, 0, 4, 16, 2);
    let snap = &report.metrics;
    assert!(!snap.is_zero());

    let json = to_json_string(snap);
    let round = snapshot_from_json(&parse_json(&json).expect("exported JSON parses"))
        .expect("exported JSON decodes");
    assert_eq!(&round, snap);

    let prom = to_prometheus(snap);
    assert!(prom.contains("packets_injected 32"));
    assert!(prom.contains("packet_latency_ns_count"));
    for key in ["packets_emitted", "packets_dropped", "pipelet_packets"] {
        assert!(prom.contains(key), "prometheus dump misses {key}");
    }
}

/// `run_suite_with_metrics` wires PTF cases to the same registry the
/// replay layer uses, on an otherwise untouched switch.
#[test]
fn ptf_metrics_assertions_see_suite_traffic() {
    let mut sw = testbed(false);
    let mut pkt = dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0001)
        .dst_ip(0x0a01_0007)
        .build();
    pkt[..6].copy_from_slice(&[0, 0, 0, 0, 0, 1]);
    let report = dejavu_ptf::run_suite_with_metrics(
        &mut sw,
        vec![dejavu_ptf::TestCase::expect_port("routed", 0, pkt, 2)],
        dejavu_ptf::MetricsExpectations::new()
            .counter("packets_injected", 1)
            .counter("packets_emitted", 1)
            .counter_at_least("pipelet_packets{pipelet=\"ingress0\"}", 1)
            .family_total("packet_recirc_depth", 1),
    );
    report.assert_all_passed();
    assert!(!sw.telemetry_enabled());
}

/// The classification-index telemetry (`table_index_kind` /
/// `table_index_probes` / `table_index_rebuilds`) flows through
/// `MetricsSnapshot` and the PTF expectation helpers: forcing a policy is
/// visible as the kind gauge, suite traffic moves the probe counter, and
/// the rebuild counter stays flat over the suite (the forced reindex
/// happened before the baseline snapshot, and counters are deltas).
#[test]
fn ptf_index_expectations_see_forced_policy_and_probes() {
    let mut sw = testbed(false);
    sw.set_table_index(
        PipeletId::ingress(0),
        "route",
        dejavu_asic::IndexPolicy::Force(dejavu_asic::IndexKind::TupleSpace),
    )
    .unwrap();
    let mut pkt = dejavu_traffic::PacketBuilder::udp()
        .src_ip(0x0a00_0001)
        .dst_ip(0x0a01_0007)
        .build();
    pkt[..6].copy_from_slice(&[0, 0, 0, 0, 0, 1]);
    let report = dejavu_ptf::run_suite_with_metrics(
        &mut sw,
        vec![dejavu_ptf::TestCase::expect_port("routed", 0, pkt, 2)],
        dejavu_ptf::MetricsExpectations::new()
            .index_kind("ingress0", "route", dejavu_asic::IndexKind::TupleSpace)
            .index_probes_at_least("ingress0", "route", 1)
            .index_rebuilds("ingress0", "route", 0),
    );
    report.assert_all_passed();
}

/// The run-to-completion executor's own telemetry (`rtc_worker_packets`,
/// `rtc_ring_depth`, `pool_in_use`, `pool_exhausted`) flows through the
/// merged snapshot and the PTF expectation helpers, alongside the core
/// pipeline series the workers' switch clones recorded.
#[test]
fn ptf_rtc_expectations_see_worker_and_pool_series() {
    let sw = testbed(true);
    let flows = FlowGen::new(9, (0x0a01_0000, 16), (0x0a02_0000, 16)).flows(16);
    let cfg = dejavu_asic::RtcConfig {
        workers: 4,
        ..dejavu_asic::RtcConfig::default()
    };
    let report = dejavu_traffic::replay::replay_flows_rtc(&sw, &flows, 0, 4, 16, &cfg);
    assert_eq!(report.injected, 64);
    assert_eq!(report.errors, 0);

    let rows = dejavu_ptf::MetricsExpectations::new()
        .rtc_packets(64)
        .rtc_ring_samples(64)
        .pool_exhausted(0)
        .pool_in_use_at_least(1)
        .counter("packets_injected", 64)
        .evaluate(&report.metrics);
    for r in &rows {
        assert!(r.failure.is_none(), "{}: {:?}", r.name, r.failure);
    }

    // The per-core split covers every packet, and each touched core's
    // series passes the per-worker expectation helper.
    let mut covered = 0;
    for (core, &n) in report.worker_packets.iter().enumerate() {
        covered += n;
        if n > 0 {
            let per = dejavu_ptf::MetricsExpectations::new()
                .rtc_worker_at_least(core, n)
                .evaluate(&report.metrics);
            assert!(
                per[0].failure.is_none(),
                "{}: {:?}",
                per[0].name,
                per[0].failure
            );
        }
    }
    assert_eq!(covered, 64);
}
