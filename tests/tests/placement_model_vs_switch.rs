//! Consistency sweep: the placement cost model (which the optimizers
//! minimize) must agree with the simulated hardware on recirculation and
//! resubmission counts, for every placement of a 3-NF chain across all
//! pipelets — including the paper's Fig. 6 shapes.
//!
//! This is the load-bearing property of the whole system: if the model and
//! the synthesized routing ever disagreed, the optimizer would be
//! optimizing fiction.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, PipeletId};
use dejavu_core::placement::{traverse, Placement};
use dejavu_core::{ChainPolicy, ChainSet};
use dejavu_integration::*;

/// All ways to assign 3 NFs to the 4 pipelets of a 2-pipeline switch.
fn all_assignments() -> Vec<Placement> {
    let pipelets = [
        PipeletId::ingress(0),
        PipeletId::egress(0),
        PipeletId::ingress(1),
        PipeletId::egress(1),
    ];
    let names = ["n0", "n1", "n2"];
    let mut out = Vec::new();
    for a in 0..4 {
        for b in 0..4 {
            for c in 0..4 {
                let mut p = Placement::default();
                for (nf, &pi) in names.iter().zip([a, b, c].iter()) {
                    p.pipelets
                        .entry(pipelets[pi])
                        .or_default()
                        .push(nf.to_string());
                }
                out.push(p);
            }
        }
    }
    out
}

#[test]
fn model_matches_switch_for_all_3nf_placements() {
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "seq",
        vec!["n0", "n1", "n2"],
        1.0,
    )])
    .unwrap();
    let mut checked = 0;
    for placement in all_assignments() {
        let (mut switch, _dep) = deploy_markers(&chains, &placement)
            .unwrap_or_else(|e| panic!("deploy failed for {placement}: {e}"));
        let predicted = traverse(&chains.chains[0], &placement, 0, 0, false).unwrap();
        let t = switch
            .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
            .unwrap();
        assert_eq!(
            t.disposition,
            Disposition::Emitted { port: EXIT_PORT },
            "placement {placement} did not complete"
        );
        assert_eq!(
            t.recirculations as u32, predicted.recirculations,
            "recirculations diverge for placement {placement}"
        );
        assert_eq!(
            t.resubmissions as u32, predicted.resubmissions,
            "resubmissions diverge for placement {placement}"
        );
        // Every NF ran exactly once (marker tables applied once each).
        for nf in ["n0", "n1", "n2"] {
            let table = format!("{nf}__work");
            let applied = t
                .tables_applied()
                .iter()
                .filter(|t| **t == table.as_str())
                .count();
            assert_eq!(applied, 1, "{table} applied {applied}× for {placement}");
        }
        checked += 1;
    }
    assert_eq!(checked, 64);
}

#[test]
fn fig6_shapes_on_real_switch() {
    // The Fig. 6 chain A-B-C-D-E-F on the actual simulated switch: the
    // naive shape takes 3 recirculations, the optimized shape 1 — measured,
    // not just modelled.
    let chains = ChainSet::new(vec![ChainPolicy::new(
        1,
        "abcdef",
        vec!["A", "B", "C", "D", "E", "F"],
        1.0,
    )])
    .unwrap();
    let naive = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["A", "B"]),
        (PipeletId::egress(0), vec!["C"]),
        (PipeletId::ingress(1), vec!["D"]),
        (PipeletId::egress(1), vec!["E", "F"]),
    ]);
    let optimized = Placement::sequential(vec![
        (PipeletId::ingress(0), vec!["A", "B"]),
        (PipeletId::egress(1), vec!["C"]),
        (PipeletId::ingress(1), vec!["D"]),
        (PipeletId::egress(0), vec!["E", "F"]),
    ]);
    for (placement, expected_recircs) in [(naive, 3usize), (optimized, 1usize)] {
        let (mut switch, _dep) = deploy_markers(&chains, &placement).unwrap();
        let t = switch
            .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
            .unwrap();
        assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
        assert_eq!(t.recirculations, expected_recircs, "placement {placement}");
    }
}

#[test]
fn multiple_chains_share_one_deployment() {
    // Two chains with different orders over the same NFs, on one switch.
    let chains = ChainSet::new(vec![
        ChainPolicy::new(1, "fwd", vec!["n0", "n1"], 0.6),
        ChainPolicy::new(2, "rev", vec!["n1", "n0"], 0.4),
    ])
    .unwrap();
    let placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["n0", "n1"])]);
    let (mut switch, _dep) = deploy_markers(&chains, &placement).unwrap();
    // Chain 1 runs both in one pass.
    let t = switch
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(t.resubmissions, 0);
    // Chain 2 needs one resubmission (n1 before n0 in slot order).
    let t = switch
        .inject(InjectedPacket::new(encapsulated_packet(2, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(t.resubmissions, 1);
}

#[test]
fn unroutable_path_punts_to_cpu() {
    // A packet with a path ID nobody configured: the branching default is
    // to-CPU (failure handling §7).
    let chains = ChainSet::new(vec![ChainPolicy::new(1, "x", vec!["n0"], 1.0)]).unwrap();
    let placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["n0"])]);
    let (mut switch, _dep) = deploy_markers(&chains, &placement).unwrap();
    let t = switch
        .inject(InjectedPacket::new(encapsulated_packet(99, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::ToCpu);
}

#[test]
fn parallel_composition_on_real_switch() {
    // Fig. 5's parallel operator deployed for real: two NFs side-by-side on
    // one ingress pipelet. One pass runs at most one branch, so the
    // two-NF chain needs exactly one resubmission — on the model AND on
    // the simulated hardware.
    use dejavu_core::compose::CompositionMode;
    let chains = ChainSet::new(vec![ChainPolicy::new(1, "ab", vec!["n0", "n1"], 1.0)]).unwrap();
    let mut placement = Placement::sequential(vec![(PipeletId::ingress(0), vec!["n0", "n1"])]);
    placement
        .modes
        .insert(PipeletId::ingress(0), CompositionMode::Parallel);
    let predicted = traverse(&chains.chains[0], &placement, 0, 0, false).unwrap();
    assert_eq!(predicted.resubmissions, 1);

    let (mut switch, _dep) = deploy_markers_with(&chains, &placement, Default::default()).unwrap();
    let t = switch
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(t.resubmissions, 1, "{}", t.describe());
    assert_eq!(t.recirculations, 0);
    // Both NFs ran exactly once despite the single-branch-per-pass rule.
    for nf in ["n0", "n1"] {
        let table = format!("{nf}__work");
        assert_eq!(
            t.tables_applied()
                .iter()
                .filter(|x| **x == table.as_str())
                .count(),
            1
        );
    }
}

#[test]
fn parallel_egress_branch_transition_recirculates() {
    // The egress counterpart of Fig. 5's trade-off: crossing branches on an
    // egress pipelet costs a recirculation.
    use dejavu_core::compose::CompositionMode;
    let chains = ChainSet::new(vec![ChainPolicy::new(1, "ab", vec!["n0", "n1"], 1.0)]).unwrap();
    let mut placement = Placement::sequential(vec![(PipeletId::egress(1), vec!["n0", "n1"])]);
    placement
        .modes
        .insert(PipeletId::egress(1), CompositionMode::Parallel);
    let predicted = traverse(&chains.chains[0], &placement, 0, 0, false).unwrap();

    let (mut switch, _dep) = deploy_markers_with(&chains, &placement, Default::default()).unwrap();
    let t = switch
        .inject(InjectedPacket::new(encapsulated_packet(1, 0), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert_eq!(
        t.recirculations as u32,
        predicted.recirculations,
        "{}",
        t.describe()
    );
    assert!(
        t.recirculations >= 2,
        "branch transition + exit positioning"
    );
}
