//! §7 "failure handling": link failures on loopback and exit ports, and the
//! control plane's rerouting response.

use dejavu_asic::switch::Disposition;
use dejavu_asic::{InjectedPacket, TraceEvent};
use dejavu_integration::*;
use dejavu_nf::load_balancer::{five_tuple_of, session_entry_for, SESSION_TABLE};

const VIP: u32 = 0xc633_6450;
const BACKEND: u32 = 0x0a63_0001;
const REPLACEMENT_EXIT: u16 = 3;

#[test]
fn loopback_port_failure_blackholes_until_rerouted() {
    let (mut switch, mut dep) = fig9_testbed();
    // Healthy: path 3 flows via pipeline 1's loopback port.
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Emitted { port: EXIT_PORT });
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Recirculate { port } if *port == LOOPBACK_PORT_P1)));

    // The loopback port's link fails: traffic pointed at it blackholes.
    switch.set_port_down(LOOPBACK_PORT_P1, true);
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Dropped);
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::LinkDown { .. })));

    // Control plane reroutes: recirculation falls back to the dedicated
    // recirculation port, chains flow again.
    dep.handle_port_failure(&mut switch, LOOPBACK_PORT_P1, None)
        .unwrap();
    let t = switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .unwrap();
    assert_eq!(
        t.disposition,
        Disposition::Emitted { port: EXIT_PORT },
        "{}",
        t.describe()
    );
    let recirc_port = dejavu_asic::switch::RECIRC_PORT_BASE + 1;
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::Recirculate { port } if *port == recirc_port)));
}

#[test]
fn exit_port_failure_moves_chains_to_replacement() {
    let (mut switch, mut dep) = fig9_testbed();
    let pkt = chain_packet(1, VIP, 80);
    let tuple = five_tuple_of(&pkt).unwrap();
    dep.install(
        &mut switch,
        "lb",
        SESSION_TABLE,
        session_entry_for(&tuple, BACKEND),
    )
    .unwrap();

    // Exit port dies; without rerouting, completed chains blackhole.
    switch.set_port_down(EXIT_PORT, true);
    let t = switch
        .inject(InjectedPacket::new(pkt.clone(), IN_PORT))
        .unwrap();
    assert_eq!(t.disposition, Disposition::Dropped);

    // Reroute every chain to the replacement uplink (decap entries are
    // re-synthesized for the new port too).
    dep.handle_port_failure(&mut switch, EXIT_PORT, Some(REPLACEMENT_EXIT))
        .unwrap();
    let t = switch.inject(InjectedPacket::new(pkt, IN_PORT)).unwrap();
    assert_eq!(
        t.disposition,
        Disposition::Emitted {
            port: REPLACEMENT_EXIT
        },
        "{}",
        t.describe()
    );
    // Still decapsulated on the new exit.
    let out = &t.final_bytes;
    assert_eq!(u16::from_be_bytes([out[12], out[13]]), 0x0800);
}

#[test]
fn exit_failure_without_replacement_is_refused() {
    let (mut switch, mut dep) = fig9_testbed();
    let err = dep
        .handle_port_failure(&mut switch, EXIT_PORT, None)
        .unwrap_err();
    assert!(matches!(err, dejavu_core::deploy::DeployError::Routing(_)));
}

#[test]
fn injecting_on_a_down_port_fails() {
    let (mut switch, _dep) = fig9_testbed();
    switch.set_port_down(IN_PORT, true);
    assert!(switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .is_err());
    switch.set_port_down(IN_PORT, false);
    assert!(switch
        .inject(InjectedPacket::new(chain_packet(3, VIP, 80), IN_PORT))
        .is_ok());
}
