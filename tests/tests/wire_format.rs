//! Property tests for the cluster wire format: every generated message
//! survives an encode → decode round trip bit-exactly, and every corrupted
//! frame — truncated at any byte, over-length, wrong magic/version/class/tag
//! — decodes to a typed [`WireError`], never a panic.

use dejavu_asic::switch::Disposition;
use dejavu_asic::tables::{DigestRecord, Eviction};
use dejavu_asic::{Gress, PipeletId};
use dejavu_core::transport::wire::{
    decode, encode, payload_len, ControlMsg, DataMsg, HopSummary, Message, TelemetryMsg, WireError,
    HEADER_LEN, MAX_PAYLOAD, WIRE_MAGIC, WIRE_VERSION,
};
use dejavu_p4ir::table::{KeyMatch, TableEntry};
use dejavu_p4ir::Value;
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn value_strat() -> BoxedStrategy<Value> {
    (any::<u128>(), 1u16..=128)
        .prop_map(|(raw, bits)| Value::new(raw, bits))
        .boxed()
}

/// Short identifier-ish strings; occasionally empty or multi-byte UTF-8 to
/// exercise the length-prefixed string codec beyond plain ASCII.
fn string_strat() -> BoxedStrategy<String> {
    vec(any::<u8>(), 0..12)
        .prop_map(|bytes| {
            bytes
                .into_iter()
                .map(|b| match b % 30 {
                    0..=25 => (b'a' + b % 26) as char,
                    26 => '_',
                    27 => 'λ',
                    28 => '→',
                    _ => '0',
                })
                .collect()
        })
        .boxed()
}

fn key_match_strat() -> BoxedStrategy<KeyMatch> {
    prop_oneof![
        value_strat().prop_map(KeyMatch::Exact),
        (value_strat(), value_strat()).prop_map(|(v, m)| KeyMatch::Ternary(v, m)),
        (value_strat(), any::<u16>()).prop_map(|(v, l)| KeyMatch::Lpm(v, l)),
        (value_strat(), value_strat()).prop_map(|(lo, hi)| KeyMatch::Range(lo, hi)),
        Just(KeyMatch::Any),
    ]
    .boxed()
}

fn entry_strat() -> BoxedStrategy<TableEntry> {
    (
        vec(key_match_strat(), 0..4),
        string_strat(),
        vec(value_strat(), 0..4),
        any::<i32>(),
    )
        .prop_map(|(matches, action, action_args, priority)| TableEntry {
            matches,
            action,
            action_args,
            priority,
        })
        .boxed()
}

fn pipelet_strat() -> BoxedStrategy<PipeletId> {
    (any::<bool>(), 0u32..8)
        .prop_map(|(egress, pipeline)| PipeletId {
            pipeline: pipeline as usize,
            gress: if egress {
                Gress::Egress
            } else {
                Gress::Ingress
            },
        })
        .boxed()
}

fn disposition_strat() -> BoxedStrategy<Disposition> {
    prop_oneof![
        any::<u16>().prop_map(|port| Disposition::Emitted { port }),
        Just(Disposition::Dropped),
        Just(Disposition::ToCpu),
    ]
    .boxed()
}

/// Finite latencies only: the wire format round-trips any f64 bit pattern,
/// but `Message: PartialEq` can't witness a NaN round trip.
fn latency_strat() -> BoxedStrategy<f64> {
    (any::<u32>(), 1u32..1000)
        .prop_map(|(n, d)| f64::from(n) / f64::from(d))
        .boxed()
}

fn hop_strat() -> BoxedStrategy<HopSummary> {
    (
        0u32..16,
        latency_strat(),
        any::<u32>(),
        any::<u32>(),
        vec(string_strat(), 0..4),
        vec(string_strat(), 0..4),
    )
        .prop_map(
            |(switch, latency_ns, recirculations, resubmissions, tables_applied, tables_hit)| {
                HopSummary {
                    switch,
                    latency_ns,
                    recirculations,
                    resubmissions,
                    tables_applied,
                    tables_hit,
                }
            },
        )
        .boxed()
}

fn data_strat() -> BoxedStrategy<DataMsg> {
    (
        any::<u64>(),
        any::<u16>(),
        latency_strat(),
        any::<u32>(),
        vec(hop_strat(), 0..4),
        vec(any::<u8>(), 0..128),
    )
        .prop_map(
            |(trace, port, latency_ns, inter_switch_hops, hops, bytes)| DataMsg {
                trace,
                port,
                latency_ns,
                inter_switch_hops,
                hops,
                bytes,
            },
        )
        .boxed()
}

fn control_strat() -> BoxedStrategy<ControlMsg> {
    prop_oneof![
        (any::<u64>(), string_strat(), string_strat(), entry_strat()).prop_map(
            |(seq, nf, table, entry)| ControlMsg::Install {
                seq,
                nf,
                table,
                entry,
            }
        ),
        (any::<u64>(), string_strat(), string_strat(), entry_strat()).prop_map(
            |(seq, nf, table, entry)| ControlMsg::Remove {
                seq,
                nf,
                table,
                entry,
            }
        ),
        (
            any::<u64>(),
            string_strat(),
            string_strat(),
            prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        )
            .prop_map(|(seq, nf, table, ticks)| ControlMsg::SetIdleTimeout {
                seq,
                nf,
                table,
                ticks,
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, ticks)| ControlMsg::AdvanceTime { seq, ticks }),
        any::<u64>().prop_map(|seq| ControlMsg::DrainDigests { seq }),
        any::<u64>().prop_map(|seq| ControlMsg::ScrapeMetrics { seq }),
        any::<u64>().prop_map(|seq| ControlMsg::SnapshotState { seq }),
        (any::<u64>(), pipelet_strat(), string_strat())
            .prop_map(|(seq, pipelet, json)| { ControlMsg::RestoreState { seq, pipelet, json } }),
        any::<u64>().prop_map(|seq| ControlMsg::SwapMember { seq }),
        any::<u64>().prop_map(|seq| ControlMsg::Shutdown { seq }),
    ]
    .boxed()
}

fn digest_strat() -> BoxedStrategy<DigestRecord> {
    (string_strat(), vec(value_strat(), 0..4))
        .prop_map(|(name, values)| DigestRecord { name, values })
        .boxed()
}

fn telemetry_strat() -> BoxedStrategy<TelemetryMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(seq, info)| TelemetryMsg::Ack { seq, info }),
        (any::<u64>(), string_strat()).prop_map(|(seq, error)| TelemetryMsg::Nack { seq, error }),
        (0u32..8, vec((0u32..4, digest_strat()), 0..4))
            .prop_map(|(switch, records)| TelemetryMsg::Digests { switch, records }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, digests)| TelemetryMsg::DrainDone { seq, digests }),
        (any::<u64>(), string_strat()).prop_map(|(seq, json)| TelemetryMsg::Metrics { seq, json }),
        (any::<u64>(), vec((pipelet_strat(), string_strat()), 0..3))
            .prop_map(|(seq, items)| TelemetryMsg::Snapshot { seq, items }),
        (
            any::<u64>(),
            vec(
                (pipelet_strat(), string_strat(), entry_strat())
                    .prop_map(|(p, table, entry)| (p, Eviction { table, entry })),
                0..3,
            ),
        )
            .prop_map(|(seq, evictions)| TelemetryMsg::Evictions { seq, evictions }),
        (disposition_strat(), data_strat())
            .prop_map(|(disposition, data)| TelemetryMsg::Delivered { disposition, data }),
    ]
    .boxed()
}

fn message_strat() -> BoxedStrategy<Message> {
    prop_oneof![
        data_strat().prop_map(Message::Data),
        control_strat().prop_map(Message::Control),
        telemetry_strat().prop_map(Message::Telemetry),
    ]
    .boxed()
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_message_round_trips(msg in message_strat()) {
        let frame = encode(&msg);
        prop_assert!(frame.len() >= HEADER_LEN);
        prop_assert_eq!(
            payload_len(&frame).unwrap(),
            frame.len() - HEADER_LEN,
            "header length prefix must match the payload"
        );
        let back = decode(&frame);
        prop_assert_eq!(back, Ok(msg));
    }

    #[test]
    fn every_truncation_is_a_typed_error(msg in message_strat()) {
        let frame = encode(&msg);
        // Every proper prefix must fail with a WireError — never a panic,
        // never a bogus success.
        for cut in 0..frame.len() {
            let r = decode(&frame[..cut]);
            prop_assert!(r.is_err(), "prefix of {cut} bytes decoded: {r:?}");
        }
        // Short prefixes specifically report Truncated with honest counts.
        for cut in 0..HEADER_LEN.min(frame.len()) {
            prop_assert_eq!(
                decode(&frame[..cut]),
                Err(WireError::Truncated { needed: HEADER_LEN, have: cut })
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected(msg in message_strat(), extra in 1usize..16) {
        let mut frame = encode(&msg);
        frame.resize(frame.len() + extra, 0xa5);
        prop_assert_eq!(decode(&frame), Err(WireError::TrailingBytes { extra }));
    }

    #[test]
    fn corrupt_headers_are_typed_errors(msg in message_strat(), byte in any::<u8>()) {
        let frame = encode(&msg);

        // Wrong magic.
        let mut bad = frame.clone();
        bad[0] ^= 0x40;
        let magic = u16::from_be_bytes([bad[0], bad[1]]);
        prop_assert_eq!(decode(&bad), Err(WireError::BadMagic(magic)));

        // Wrong version.
        if byte != WIRE_VERSION {
            let mut bad = frame.clone();
            bad[2] = byte;
            prop_assert_eq!(decode(&bad), Err(WireError::UnsupportedVersion(byte)));
        }

        // Unknown class.
        if byte > 2 {
            let mut bad = frame.clone();
            bad[3] = byte;
            prop_assert_eq!(decode(&bad), Err(WireError::UnknownClass(byte)));
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        // Totality: arbitrary byte soup decodes to Ok or a typed error,
        // and a valid header prefix never causes an oversized allocation.
        let _ = decode(&bytes);
        let _ = payload_len(&bytes);
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------

/// A length prefix past [`MAX_PAYLOAD`] is rejected before any allocation.
#[test]
fn overlength_frames_are_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
    frame.push(WIRE_VERSION);
    frame.push(0); // Data class.
    frame.extend_from_slice(&(u32::MAX).to_be_bytes());
    assert_eq!(
        decode(&frame),
        Err(WireError::Overlength {
            len: u32::MAX as usize,
            max: MAX_PAYLOAD,
        })
    );
    assert_eq!(
        payload_len(&frame),
        Err(WireError::Overlength {
            len: u32::MAX as usize,
            max: MAX_PAYLOAD,
        })
    );
}

/// Unknown control/telemetry tags inside a well-formed frame are typed.
#[test]
fn unknown_tags_are_typed_errors() {
    for (class, tag) in [(1u8, 10u8), (2, 8)] {
        let mut frame = Vec::new();
        frame.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
        frame.push(WIRE_VERSION);
        frame.push(class);
        frame.extend_from_slice(&1u32.to_be_bytes());
        frame.push(tag);
        assert_eq!(decode(&frame), Err(WireError::UnknownTag { class, tag }));
    }
}

/// A string field holding invalid UTF-8 is `BadUtf8`, not a panic.
#[test]
fn invalid_utf8_in_strings_is_typed() {
    let msg = Message::Telemetry(TelemetryMsg::Nack {
        seq: 2,
        error: "xx".into(),
    });
    let mut frame = encode(&msg);
    // The error string's bytes are the last two; stomp them with a lone
    // continuation byte.
    let n = frame.len();
    frame[n - 2] = 0xff;
    frame[n - 1] = 0xfe;
    assert_eq!(decode(&frame), Err(WireError::BadUtf8));
}

/// A nested length prefix larger than the remaining payload reports
/// `Truncated` instead of allocating on behalf of the corrupt field.
#[test]
fn corrupt_inner_length_prefix_is_truncated() {
    let msg = Message::Telemetry(TelemetryMsg::Metrics {
        seq: 4,
        json: "abcd".into(),
    });
    let mut frame = encode(&msg);
    // The JSON string's length prefix sits 8 bytes before the end
    // (u32 len + 4 bytes of payload). Inflate it.
    let n = frame.len();
    frame[n - 8..n - 4].copy_from_slice(&1_000_000u32.to_be_bytes());
    assert!(
        matches!(decode(&frame), Err(WireError::Truncated { .. })),
        "inflated inner length must be a truncation error"
    );
}
